#!/usr/bin/env bash
# Tier-1 verification, hermetically: build and test with no network and
# no crates.io registry. Any attempt to resolve an external dependency
# makes cargo fail under --offline, so dependency rot can never silently
# return. Run from anywhere; operates on the repo this script lives in.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

# Belt and braces: even if a future cargo invocation drops the flag,
# CARGO_NET_OFFLINE keeps the network forbidden for the whole run.
export CARGO_NET_OFFLINE=true

# No manifest may reference the external dev dependencies the in-repo
# devharness crate replaces (PRNG, property-testing and benchmark
# frameworks) — their return would reintroduce registry access.
banned='rand|proptest|criterion'
manifests="$(git ls-files '*Cargo.toml')"
if matches="$(grep -nE "$banned" $manifests)"; then
    echo "error: banned external dependency reference in a manifest:" >&2
    echo "$matches" >&2
    exit 1
fi

# The pre-0.3 constructors are gone; call sites must use
# rules::load()/load_shared()/load_uncached() and GenEngine::builder().
# No source file may mention the old names, not even their one-time
# defining modules.
old_apis='jca_rules\(|try_jca_rules\(|shared_jca_rules\(|GenEngine::new\(|GenEngine::with_options\('
sources="$(git ls-files '*.rs')"
if matches="$(grep -nE "$old_apis" $sources)"; then
    echo "error: deprecated constructor call outside its defining module:" >&2
    echo "$matches" >&2
    exit 1
fi

# The PackSource redesign is complete: the deprecated loader shims are
# deleted, so nothing is exempt any more — no source file may call the
# old qualified entry points, and no crate may define the shim names
# again (their return would resurrect the pre-PackSource API).
old_loaders='rules::load\(|rules::load_shared\(|rules::load_uncached\(|rules::rule_set_from_sources\(|serve::load_rule_pack\(|fn load_shared\(|fn load_uncached\(|fn rule_set_from_sources\(|fn load_rule_pack\('
if matches="$(grep -nE "$old_loaders" $sources)"; then
    echo "error: pre-PackSource loader call site:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> cargo build --release --offline --locked"
cargo build --release --offline --locked

echo "==> cargo test -q --offline --locked"
cargo test -q --offline --locked

# The CLI's cached batch path must emit exactly what the single-shot
# generate path emits for every use case — a divergence means the
# engine's compiled-ORDER cache changed observable output.
echo "==> cli batch vs single-shot generate"
cli="target/release/cognicryptgen"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
mkdir -p "$workdir/batch" "$workdir/single"
"$cli" batch "$workdir/batch" 8 >/dev/null
# The id universe comes from the batch output itself, so this loop can
# never silently lag behind a growing catalogue.
ids="$(find "$workdir/batch" -name 'uc*.java' -printf '%f\n' | sed -E 's/^uc0*([0-9]+)\.java$/\1/' | sort -n)"
test -n "$ids"
for id in $ids; do
    "$cli" generate "$id" > "$workdir/single/$(printf 'uc%02d.java' "$id")"
done
diff -r "$workdir/batch" "$workdir/single"

# The Table-1 telemetry report must cover every catalogued use case with
# all five phase timings and non-empty metrics; report-check validates
# the schema of the file report just wrote.
echo "==> cli report -> REPORT_table1.json"
"$cli" report "$workdir/report" >/dev/null
report="$workdir/report/REPORT_table1.json"
test -s "$report"
"$cli" report-check "$report"

# Scenario-count gate: the freshly generated report must carry at least
# as many use-case rows as the committed REPORT_table1.json. A smaller
# report means the catalogue (or the report pipeline) silently lost
# scenarios — exactly the regression a scale-out PR must not allow.
committed_rows="$(grep -o '"id":' REPORT_table1.json | wc -l)"
generated_rows="$(grep -o '"id":' "$report" | wc -l)"
if [ "$generated_rows" -lt "$committed_rows" ]; then
    echo "error: report emits $generated_rows use-case rows; the committed REPORT_table1.json has $committed_rows" >&2
    exit 1
fi
echo "==> report covers $generated_rows use cases (committed baseline: $committed_rows)"

# Trace export: a traced generate and a traced batch must both produce
# structurally valid Chrome traces (paired B/E spans, monotonic per-tid
# timestamps — trace-check enforces the schema), and tracing must be
# purely observational: traced output diffs clean against untraced.
echo "==> cli --trace -> chrome trace + trace-check"
mkdir -p "$workdir/traced-batch"
"$cli" generate 1 --trace "$workdir/trace-gen.json" > "$workdir/traced-uc01.java"
"$cli" trace-check "$workdir/trace-gen.json"
diff "$workdir/traced-uc01.java" "$workdir/single/uc01.java"
"$cli" batch "$workdir/traced-batch" 8 --trace "$workdir/trace-batch.json" >/dev/null
"$cli" trace-check "$workdir/trace-batch.json"
diff -r "$workdir/traced-batch" "$workdir/single"

# Daemon obs-smoke: boot `serve` on an ephemeral port, wait for the
# parseable announce line, then let `serve-check` probe it end to end —
# healthz, metrics, a generation diffed byte-for-byte against a local
# engine, a hot-reload, the observability surfaces (mixed hostile and
# well-formed traffic with both outcome classes visible in /tracez,
# /statz quantiles, a /profilez capture window), shutdown. The daemon
# must exit 0 afterwards, and the fetched capture must pass the same
# trace-check gate as the CLI's own --trace exports.
serve_smoke() {
    local log="$1"; local profile="$2"; shift 2
    "$cli" serve --listen 127.0.0.1:0 --threads 2 "$@" > "$log" &
    local pid=$!
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening http=//p' "$log" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "error: serve daemon died before announcing its endpoint" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "error: serve daemon never announced its endpoint" >&2
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    "$cli" serve-check "$addr" --profile-out "$profile"
    wait "$pid"
    "$cli" trace-check "$profile"
}
echo "==> cli serve + serve-check round trip (obs probes + profilez capture)"
serve_smoke "$workdir/serve.out" "$workdir/serve-profile.json"

# Precompiled rule packs: `compile-rules` must produce a pack whose
# boot is observably identical to a source boot. The pack-booted batch
# diffs clean against the source-booted outputs for every use case,
# and a pack-booted daemon survives the same end-to-end serve-check
# (including a hot reload, now of the `.crpack` file).
echo "==> compile-rules -> pack-booted batch diff + serve-check"
"$cli" compile-rules --embedded "$workdir/jca.crpack" >/dev/null
mkdir -p "$workdir/pack-batch"
"$cli" batch "$workdir/pack-batch" 8 --rules "$workdir/jca.crpack" >/dev/null
diff -r "$workdir/pack-batch" "$workdir/single"
serve_smoke "$workdir/serve-pack.out" "$workdir/serve-pack-profile.json" --rules "$workdir/jca.crpack"

# Corpus replay: every committed fuzz reproducer must pass the oracles
# it once crashed. A budget of 0 replays the corpus and runs nothing
# else, so the gate is deterministic and fast; any crash or undecodable
# corpus file makes the CLI exit non-zero.
echo "==> cli fuzz --corpus corpus/ --budget 0"
"$cli" fuzz --corpus corpus/ --budget 0

# Load-harness replay gate: two identically-seeded runs of the mixed
# hostile/well-formed workload must both pass cleanly (any panic,
# perturbed response or p99-isolation breach exits 6) and must agree
# byte for byte on the deterministic workload section of their reports
# — the schedule is a pure function of the seed, so a digest diff here
# means determinism rotted somewhere in the harness.
echo "==> cli load (seeded, x2) + replay digest diff"
"$cli" load --seed 1 --budget 300 --clients 2 --corpus corpus/ \
    --out "$workdir/load-a.json" >/dev/null
"$cli" load --seed 1 --budget 300 --clients 2 --corpus corpus/ \
    --out "$workdir/load-b.json" >/dev/null
"$cli" load-check "$workdir/load-a.json"
"$cli" load-check "$workdir/load-a.json" --digest > "$workdir/load-a.digest"
"$cli" load-check "$workdir/load-b.json" --digest > "$workdir/load-b.digest"
diff "$workdir/load-a.digest" "$workdir/load-b.digest"

echo "==> hermetic verify OK"
