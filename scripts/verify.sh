#!/usr/bin/env bash
# Tier-1 verification, hermetically: build and test with no network and
# no crates.io registry. Any attempt to resolve an external dependency
# makes cargo fail under --offline, so dependency rot can never silently
# return. Run from anywhere; operates on the repo this script lives in.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

# Belt and braces: even if a future cargo invocation drops the flag,
# CARGO_NET_OFFLINE keeps the network forbidden for the whole run.
export CARGO_NET_OFFLINE=true

# No manifest may reference the external dev dependencies the in-repo
# devharness crate replaces (PRNG, property-testing and benchmark
# frameworks) — their return would reintroduce registry access.
banned='rand|proptest|criterion'
manifests="$(git ls-files '*Cargo.toml')"
if matches="$(grep -nE "$banned" $manifests)"; then
    echo "error: banned external dependency reference in a manifest:" >&2
    echo "$matches" >&2
    exit 1
fi

echo "==> cargo build --release --offline --locked"
cargo build --release --offline --locked

echo "==> cargo test -q --offline --locked"
cargo test -q --offline --locked

# The CLI's cached batch path must emit exactly what the single-shot
# generate path emits for every use case — a divergence means the
# engine's compiled-ORDER cache changed observable output.
echo "==> cli batch vs single-shot generate"
cli="target/release/cognicryptgen"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
mkdir -p "$workdir/batch" "$workdir/single"
"$cli" batch "$workdir/batch" 8 >/dev/null
for id in $(seq 1 11); do
    "$cli" generate "$id" > "$workdir/single/$(printf 'uc%02d.java' "$id")"
done
diff -r "$workdir/batch" "$workdir/single"

echo "==> hermetic verify OK"
