//! Pack-versioning suite: the same use-case template generated under
//! two versions of the `jca` catalog pack must follow each version's
//! CONSTRAINTS (divergent key-size constants), unknown versions must
//! fail with a typed CrySL pack error, and version-pinned `.crpack`
//! artefacts must coexist on disk and swap cleanly through one daemon
//! hot-reload cycle.

use std::fs;
use std::path::PathBuf;

use cognicryptgen::core::GenEngine;
use cognicryptgen::crysl::CryslError;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{self, PackError, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::serve::{http, ServeConfig, Server};
use cognicryptgen::usecases::all_use_cases;

fn catalog(name: &str, version: u32) -> PackSource {
    PackSource::Catalog {
        name: name.to_owned(),
        version: Some(version),
    }
}

fn engine_for(source: PackSource) -> GenEngine {
    GenEngine::builder()
        .rules(rules::open(source).expect("catalog pack opens").rules)
        .type_table(jca_type_table())
        .build()
        .expect("engine builds")
}

/// A scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cognicrypt-packver-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn same_selector_diverges_in_key_size_across_rule_versions() {
    // Use case 8 (asymmetric string encryption) leaves the key size to
    // the rules: v1's minimum is 1024, v2 raised it to 2048.
    let uc = all_use_cases().into_iter().find(|u| u.id == 8).unwrap();
    let v1 = engine_for(catalog("jca", 1))
        .generate(&uc.template)
        .expect("generates under jca@v1");
    let v2 = engine_for(catalog("jca", 2))
        .generate(&uc.template)
        .expect("generates under jca@v2");
    assert!(
        v1.java_source.contains("keyPairGenerator.initialize(1024)"),
        "{}",
        v1.java_source
    );
    assert!(
        v2.java_source.contains("keyPairGenerator.initialize(2048)"),
        "{}",
        v2.java_source
    );
    // Each output is clean under the rules that produced it: the
    // divergence is constraint-following, not a misuse.
    let table = jca_type_table();
    for (source, generated) in [(catalog("jca", 1), &v1), (catalog("jca", 2), &v2)] {
        let rules = rules::open(source).unwrap().rules;
        let misuses = analyze_unit(&generated.unit, &rules, &table, AnalyzerOptions::default());
        assert!(misuses.is_empty(), "{misuses:?}");
    }
}

#[test]
fn unknown_pack_version_is_a_typed_crysl_error() {
    let err = rules::open(catalog("jca", 9)).unwrap_err();
    assert!(
        matches!(err, PackError::Crysl(CryslError::Pack { .. })),
        "{err:?}"
    );
    let message = err.to_string();
    assert!(message.contains("jca@v9"), "{message}");
    // The error names what this build actually ships.
    assert!(message.contains("jca@v2"), "{message}");
    assert!(message.contains("aead@v1"), "{message}");
}

#[test]
fn version_pinned_crpacks_coexist_through_one_daemon_reload_cycle() {
    let dir = scratch("reload");
    // Both version-pinned artefacts exist side by side; the daemon's
    // `--rules` path swaps between them via a symlink-free copy.
    let v1_bytes = rules::open(catalog("jca", 1)).unwrap().to_bytes().unwrap();
    let v2_bytes = rules::open(catalog("jca", 2)).unwrap().to_bytes().unwrap();
    fs::write(dir.join("jca_v1.crpack"), &v1_bytes).unwrap();
    fs::write(dir.join("jca_v2.crpack"), &v2_bytes).unwrap();
    let live = dir.join("live.crpack");
    fs::write(&live, &v1_bytes).unwrap();

    let config = ServeConfig {
        rules_path: Some(live.clone()),
        ..ServeConfig::http("127.0.0.1:0")
    };
    let handle = Server::start(&config).expect("daemon boots on jca@v1");
    let addr = handle.http_addr().expect("http bound").to_string();

    let (code, body) = http::request(&addr, "GET", "/generate/8", "").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("keyPairGenerator.initialize(1024)"), "{body}");

    // Swap the live pack to the pinned v2 artefact and hot-reload.
    fs::write(&live, &v2_bytes).unwrap();
    let (code, reload) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 200, "{reload}");

    let (code, body) = http::request(&addr, "GET", "/generate/8", "").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("keyPairGenerator.initialize(2048)"), "{body}");

    // The pinned artefacts are still both on disk, undisturbed.
    assert_eq!(fs::read(dir.join("jca_v1.crpack")).unwrap(), v1_bytes);
    assert_eq!(fs::read(dir.join("jca_v2.crpack")).unwrap(), v2_bytes);

    let (code, _) = http::request(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(code, 200);
    handle.join();
    let _ = fs::remove_dir_all(&dir);
}
