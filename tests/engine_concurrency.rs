//! Concurrency suite: `GenEngine::generate_batch` must be deterministic
//! in thread count and scheduling, and must contain worker failures to
//! their own result slot.
//!
//! The determinism tests run the full Table-1 batch at 1, 2 and 8
//! threads and under seeded random input shuffles (devharness PRNG —
//! reproducible, no external deps), asserting that every run produces
//! the same use-case → Java-source map. The poison tests inject a
//! panicking job and a failing template and assert the engine reports
//! the error in the poisoned slot without deadlocking or dropping
//! sibling results.

use std::collections::BTreeMap;

use cognicryptgen::core::engine::scatter;
use cognicryptgen::core::{EngineError, GenEngine, GenError, Template};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::usecases::all_use_cases;
use devharness::rng::{RandomSource, Xoshiro256};

fn engine() -> GenEngine {
    GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied")
}

/// Fisher–Yates shuffle driven by the in-repo PRNG.
fn shuffled_indices(n: usize, rng: &mut Xoshiro256) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Runs a batch over `order`-permuted templates and maps each result
/// back to its use-case id.
fn batch_outputs(
    engine: &GenEngine,
    ids: &[u8],
    templates: &[Template],
    order: &[usize],
    threads: usize,
) -> BTreeMap<u8, String> {
    let permuted: Vec<Template> = order.iter().map(|&i| templates[i].clone()).collect();
    let results = engine.generate_batch(&permuted, threads);
    assert_eq!(results.len(), permuted.len());
    order
        .iter()
        .zip(results)
        .map(|(&i, r)| {
            let generated = r.unwrap_or_else(|e| panic!("use case {} failed: {e}", ids[i]));
            (ids[i], generated.java_source)
        })
        .collect()
}

#[test]
fn batch_results_are_independent_of_thread_count_and_input_order() {
    let engine = engine();
    let cases = all_use_cases();
    let ids: Vec<u8> = cases.iter().map(|uc| uc.id).collect();
    let templates: Vec<Template> = cases.into_iter().map(|uc| uc.template).collect();

    let identity: Vec<usize> = (0..templates.len()).collect();
    let reference = batch_outputs(&engine, &ids, &templates, &identity, 1);
    assert_eq!(reference.len(), ids.len());

    let mut rng = Xoshiro256::seed_from_u64(0xC061_7C47);
    for threads in [1usize, 2, 8] {
        for _shuffle in 0..3 {
            let order = shuffled_indices(templates.len(), &mut rng);
            let outputs = batch_outputs(&engine, &ids, &templates, &order, threads);
            assert_eq!(
                outputs, reference,
                "batch diverged at {threads} threads with order {order:?}"
            );
        }
    }
}

#[test]
fn batch_slots_follow_input_positions_not_completion_order() {
    let engine = engine();
    let cases = all_use_cases();
    // Same template at positions 0 and 5, distinct ones elsewhere: the
    // result at each index must match the template at that index.
    let templates = vec![
        cases[10].template.clone(),
        cases[3].template.clone(),
        cases[10].template.clone(),
    ];
    let results = engine.generate_batch(&templates, 8);
    let sources: Vec<String> = results
        .into_iter()
        .map(|r| r.expect("generates").java_source)
        .collect();
    assert_eq!(sources[0], sources[2]);
    assert_ne!(sources[0], sources[1]);
    assert!(
        sources[1].contains("SecureSymmetricEncryptor"),
        "slot 1 holds uc4"
    );
    assert!(sources[0].contains("SecureHasher"), "slots 0/2 hold uc11");
}

#[test]
fn poisoned_worker_is_contained_without_losing_siblings() {
    // A job that panics mid-batch (e.g. template construction blowing up
    // inside the worker) must surface as Err in its own slot; all other
    // slots complete, and the call returns rather than deadlocking.
    let items: Vec<usize> = (0..11).collect();
    let results = scatter(&items, 8, |_, &v| {
        assert!(v != 5, "poisoned template at position 5");
        v * 10
    });
    assert_eq!(results.len(), 11);
    for (i, r) in results.iter().enumerate() {
        if i == 5 {
            let p = r.as_ref().unwrap_err();
            assert_eq!(p.index, 5);
            assert!(p.message.contains("poisoned template"), "{}", p.message);
        } else {
            assert_eq!(*r.as_ref().unwrap(), i * 10, "sibling {i} lost");
        }
    }
}

#[test]
fn failing_template_surfaces_a_gen_error_in_its_own_slot() {
    let engine = engine();
    let cases = all_use_cases();
    let bad = Template::new("p", "Broken").method(
        cognicryptgen::core::TemplateMethod::new(
            "go",
            cognicryptgen::javamodel::ast::JavaType::Void,
        )
        .chain(
            cognicryptgen::core::CrySlCodeGenerator::get_instance()
                .consider_crysl_rule("no.such.Rule")
                .build(),
        ),
    );
    let templates = vec![
        cases[0].template.clone(),
        bad,
        cases[1].template.clone(),
        cases[2].template.clone(),
    ];
    let results = engine.generate_batch(&templates, 8);
    assert!(results[0].is_ok(), "sibling before the failure lost");
    assert!(
        matches!(results[1], Err(EngineError::Gen(GenError::UnknownRule(_)))),
        "slot 1 must carry the generation error"
    );
    assert!(results[2].is_ok(), "sibling after the failure lost");
    assert!(results[3].is_ok(), "sibling after the failure lost");
    // The engine stays usable after a failed batch item.
    assert!(engine.generate(&cases[0].template).is_ok());
}

#[test]
fn engine_survives_a_panicking_sibling_touching_the_shared_cache() {
    // Workers share the engine's OrderCache; a panic inside one job must
    // not poison it for the surviving workers or later calls.
    let engine = engine();
    let cases = all_use_cases();
    let templates: Vec<Template> = cases.iter().map(|uc| uc.template.clone()).collect();
    let results = scatter(&templates, 4, |i, t| {
        let generated = engine.generate(t).expect("generates");
        assert!(i != 7, "worker poisoned after touching the cache");
        generated.java_source
    });
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            assert!(r.is_err());
        } else {
            assert!(r.is_ok(), "sibling {i} lost");
        }
    }
    // Later single-shot and batch calls still work and still hit cache.
    assert!(engine.generate(&cases[7].template).is_ok());
    assert!(engine.cache_stats().hits > 0);
}
