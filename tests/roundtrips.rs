//! End-to-end execution of every generated use case on the simulated JCA
//! provider — the paper validates generated code by running it; we do the
//! same through the interpreter.

use cognicryptgen::core::generate;
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::ast::{ClassDecl, CompilationUnit, Expr, JavaType, MethodDecl, Stmt};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::usecases;

fn generated_unit(template: &cognicryptgen::core::Template) -> CompilationUnit {
    generate(
        template,
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .expect("generation succeeds")
    .unit
}

fn key_pair_accessor(recv: Value, name: &str) -> Value {
    let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
        .param(JavaType::class("java.security.KeyPair"), "kp")
        .statement(Stmt::Return(Some(Expr::call(
            Expr::var("kp"),
            name,
            vec![],
        ))));
    let unit = CompilationUnit::new("helper").class(ClassDecl::new("Acc").method(m));
    Interpreter::new(&unit)
        .call_static_style("Acc", "acc", vec![recv])
        .expect("accessor runs")
}

#[test]
fn pbe_string_roundtrip() {
    let unit = generated_unit(&usecases::pbe::pbe_strings());
    let mut i = Interpreter::new(&unit);
    let key = i
        .call_static_style(
            "SecureStringEncryptor",
            "getKey",
            vec![Value::chars("pw".chars().collect())],
        )
        .unwrap();
    let ct = i
        .call_static_style(
            "SecureStringEncryptor",
            "encrypt",
            vec![Value::Str("integration secret".into()), key.clone()],
        )
        .unwrap();
    let pt = i
        .call_static_style("SecureStringEncryptor", "decrypt", vec![ct, key])
        .unwrap();
    assert_eq!(pt.as_str().unwrap(), "integration secret");
}

#[test]
fn pbe_file_roundtrip_with_many_sizes() {
    let unit = generated_unit(&usecases::pbe::pbe_files());
    let mut i = Interpreter::new(&unit);
    let key = i
        .call_static_style(
            "SecureFileEncryptor",
            "getKey",
            vec![Value::chars("pw".chars().collect())],
        )
        .unwrap();
    for size in [0usize, 1, 15, 16, 17, 255, 4096] {
        let contents: Vec<u8> = (0..size).map(|b| (b % 251) as u8).collect();
        i.put_file("in.bin", contents.clone());
        i.call_static_style(
            "SecureFileEncryptor",
            "encryptFile",
            vec![
                Value::Str("in.bin".into()),
                Value::Str("ct.bin".into()),
                key.clone(),
            ],
        )
        .unwrap();
        i.call_static_style(
            "SecureFileEncryptor",
            "decryptFile",
            vec![
                Value::Str("ct.bin".into()),
                Value::Str("out.bin".into()),
                key.clone(),
            ],
        )
        .unwrap();
        assert_eq!(i.file("out.bin").unwrap(), contents, "size {size}");
    }
}

#[test]
fn symmetric_roundtrip() {
    let unit = generated_unit(&usecases::symmetric::symmetric_encryption());
    let mut i = Interpreter::new(&unit);
    let key = i
        .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
        .unwrap();
    let ct = i
        .call_static_style(
            "SecureSymmetricEncryptor",
            "encrypt",
            vec![Value::bytes(b"symmetric".to_vec()), key.clone()],
        )
        .unwrap();
    let pt = i
        .call_static_style("SecureSymmetricEncryptor", "decrypt", vec![ct, key])
        .unwrap();
    assert_eq!(pt.as_bytes().unwrap(), b"symmetric");
}

#[test]
fn hybrid_string_full_protocol() {
    let unit = generated_unit(&usecases::hybrid::hybrid_strings());
    let mut i = Interpreter::new(&unit);
    let cls = "HybridStringEncryptor";
    let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
    let public = key_pair_accessor(kp.clone(), "getPublic");
    let private = key_pair_accessor(kp, "getPrivate");
    let session = i
        .call_static_style(cls, "generateSessionKey", vec![])
        .unwrap();
    let ct = i
        .call_static_style(
            cls,
            "encryptData",
            vec![Value::Str("hybrid message".into()), session.clone()],
        )
        .unwrap();
    let wrapped = i
        .call_static_style(cls, "wrapSessionKey", vec![session, public])
        .unwrap();
    let recovered = i
        .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
        .unwrap();
    let pt = i
        .call_static_style(cls, "decryptData", vec![ct, recovered])
        .unwrap();
    assert_eq!(pt.as_str().unwrap(), "hybrid message");
}

#[test]
fn hybrid_file_full_protocol() {
    let unit = generated_unit(&usecases::hybrid::hybrid_files());
    let mut i = Interpreter::new(&unit);
    let cls = "HybridFileEncryptor";
    i.put_file("report.txt", b"quarterly numbers".to_vec());
    let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
    let public = key_pair_accessor(kp.clone(), "getPublic");
    let private = key_pair_accessor(kp, "getPrivate");
    let session = i
        .call_static_style(cls, "generateSessionKey", vec![])
        .unwrap();
    i.call_static_style(
        cls,
        "encryptFile",
        vec![
            Value::Str("report.txt".into()),
            Value::Str("report.enc".into()),
            session.clone(),
        ],
    )
    .unwrap();
    let wrapped = i
        .call_static_style(cls, "wrapSessionKey", vec![session, public])
        .unwrap();
    let recovered = i
        .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
        .unwrap();
    i.call_static_style(
        cls,
        "decryptFile",
        vec![
            Value::Str("report.enc".into()),
            Value::Str("report.out".into()),
            recovered,
        ],
    )
    .unwrap();
    assert_eq!(i.file("report.out").unwrap(), b"quarterly numbers");
}

#[test]
fn asymmetric_roundtrip() {
    let unit = generated_unit(&usecases::asymmetric::asymmetric_strings());
    let mut i = Interpreter::new(&unit);
    let cls = "SecureAsymmetricEncryptor";
    let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
    let public = key_pair_accessor(kp.clone(), "getPublic");
    let private = key_pair_accessor(kp, "getPrivate");
    let ct = i
        .call_static_style(cls, "encrypt", vec![Value::Str("to bob".into()), public])
        .unwrap();
    let pt = i
        .call_static_style(cls, "decrypt", vec![ct, private])
        .unwrap();
    assert_eq!(pt.as_str().unwrap(), "to bob");
}

#[test]
fn password_storage_accepts_and_rejects() {
    let unit = generated_unit(&usecases::password::password_storage());
    let mut i = Interpreter::new(&unit);
    let cls = "SecurePasswordStore";
    let salt = i.call_static_style(cls, "createSalt", vec![]).unwrap();
    let hash = i
        .call_static_style(
            cls,
            "hashPassword",
            vec![Value::chars("pass".chars().collect()), salt.clone()],
        )
        .unwrap();
    assert!(i
        .call_static_style(
            cls,
            "verifyPassword",
            vec![
                Value::chars("pass".chars().collect()),
                salt.clone(),
                hash.clone()
            ],
        )
        .unwrap()
        .as_bool()
        .unwrap());
    assert!(!i
        .call_static_style(
            cls,
            "verifyPassword",
            vec![Value::chars("wrong".chars().collect()), salt, hash],
        )
        .unwrap()
        .as_bool()
        .unwrap());
}

#[test]
fn signing_roundtrip_and_tamper_detection() {
    let unit = generated_unit(&usecases::signing::signing_strings());
    let mut i = Interpreter::new(&unit);
    let cls = "SecureSigner";
    let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
    let public = key_pair_accessor(kp.clone(), "getPublic");
    let private = key_pair_accessor(kp, "getPrivate");
    let sig = i
        .call_static_style(cls, "sign", vec![Value::Str("contract".into()), private])
        .unwrap();
    assert!(i
        .call_static_style(
            cls,
            "verify",
            vec![Value::Str("contract".into()), sig.clone(), public.clone()],
        )
        .unwrap()
        .as_bool()
        .unwrap());
    assert!(!i
        .call_static_style(
            cls,
            "verify",
            vec![Value::Str("contract v2".into()), sig, public],
        )
        .unwrap()
        .as_bool()
        .unwrap());
}

#[test]
fn hashing_is_deterministic_and_collision_sensitive() {
    let unit = generated_unit(&usecases::hashing::hashing_strings());
    let mut i = Interpreter::new(&unit);
    let h1 = i
        .call_static_style("SecureHasher", "hash", vec![Value::Str("x".into())])
        .unwrap();
    let h2 = i
        .call_static_style("SecureHasher", "hash", vec![Value::Str("x".into())])
        .unwrap();
    let h3 = i
        .call_static_style("SecureHasher", "hash", vec![Value::Str("y".into())])
        .unwrap();
    assert_eq!(h1.as_bytes().unwrap(), h2.as_bytes().unwrap());
    assert_ne!(h1.as_bytes().unwrap(), h3.as_bytes().unwrap());
    assert_eq!(h1.as_bytes().unwrap().len(), 32);
}
