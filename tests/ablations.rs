//! Ablations of the generator's design choices (DESIGN.md §6): what
//! breaks when the paper's path filters and tie-breaks are turned off.
//! These tests document *why* each mechanism exists.

use cognicryptgen::core::pathsel::SelectionOptions;
use cognicryptgen::core::{GenError, Generator, GeneratorOptions};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases;

fn generator_with(selection: SelectionOptions) -> Generator {
    Generator::with_options(GeneratorOptions {
        selection,
        // The ablated configurations may produce ill-typed or insecure
        // code; keep the type check off so we can inspect the output.
        skip_type_check: true,
        skip_usage_class: false,
    })
}

#[test]
fn without_predicate_filters_the_iv_less_init_slips_through() {
    // Paper §3.3: "for the class that requires the predicate,
    // CogniCryptGEN picks method sequences that make use of the
    // predicate." Turning that filter off lets Cipher choose the shorter
    // IV-less init for a CBC encryption: the generated code then fails
    // the moment it runs, because CBC needs an IV.
    use cognicryptgen::core::template::{CrySlCodeGenerator, Template, TemplateMethod};
    use cognicryptgen::interp::{Interpreter, Value};
    use cognicryptgen::javamodel::ast::{Expr, JavaType, Stmt};

    let encrypt_only = Template::new("p", "Enc").method(
        TemplateMethod::new("encrypt", JavaType::byte_array())
            .param(JavaType::byte_array(), "plainText")
            .param(JavaType::class("javax.crypto.SecretKey"), "key")
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "ivBytes",
                Expr::new_array(JavaType::Byte, Expr::int(16)),
            ))
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "cipherText",
                Expr::null(),
            ))
            .chain(
                CrySlCodeGenerator::get_instance()
                    .consider_crysl_rule("java.security.SecureRandom")
                    .add_parameter("ivBytes", "out")
                    .consider_crysl_rule("javax.crypto.spec.IvParameterSpec")
                    .add_parameter("ivBytes", "iv")
                    .consider_crysl_rule("javax.crypto.Cipher")
                    .add_parameter("key", "key")
                    .add_parameter("plainText", "plainText")
                    .add_return_object("cipherText")
                    .build(),
            )
            .post(Stmt::Return(Some(Expr::var("cipherText")))),
    );

    let off = SelectionOptions {
        filter_predicates: false,
        ..SelectionOptions::default()
    };
    let broken = generator_with(off)
        .generate(
            &encrypt_only,
            &open(PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .expect("generation still succeeds mechanically");
    assert!(
        broken.java_source.contains(".init(1, key);"),
        "expected the IV-less init without the filter:\n{}",
        broken.java_source
    );
    // Running the ablated output fails: CBC without an IV.
    let mut interp = Interpreter::new(&broken.unit);
    let key_unit = Generator::new()
        .generate(
            &usecases::symmetric::symmetric_encryption(),
            &open(PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .expect("generates");
    let key = Interpreter::new(&key_unit.unit)
        .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
        .expect("key generation runs");
    let err = interp
        .call_static_style("Enc", "encrypt", vec![Value::bytes(b"x".to_vec()), key])
        .unwrap_err();
    assert!(err.message.contains("IV"), "{err}");

    // With the paper's defaults the same template consumes the IV spec
    // and runs.
    let clean = Generator::new()
        .generate(
            &encrypt_only,
            &open(PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .expect("generates");
    assert!(
        clean
            .java_source
            .contains(".init(1, key, ivParameterSpec);"),
        "{}",
        clean.java_source
    );
}

#[test]
fn without_binding_filter_the_templates_algorithm_choice_is_ignored() {
    // A rule offering two alternative factory events, both resolvable
    // from constraints: only the binding filter makes the generator honor
    // which one the template bound. Without it, the lexicographically
    // first path wins and the template's choice is silently dropped.
    use cognicryptgen::core::template::{CrySlCodeGenerator, Template, TemplateMethod};
    use cognicryptgen::crysl::RuleSet;
    use cognicryptgen::javamodel::ast::{Expr, JavaType, Stmt};

    let mut rules = RuleSet::new();
    rules
        .add_source(
            "SPEC java.security.MessageDigest\n\
             OBJECTS java.lang.String alg; java.lang.String altAlg; byte[] input; byte[] output;\n\
             EVENTS gA: getInstance(alg); gB: getInstance(altAlg); d1: output = digest(input);\n\
             ORDER (gA | gB), d1\n\
             CONSTRAINTS alg in {\"SHA-256\"}; altAlg in {\"SHA-512\"};",
        )
        .unwrap();
    let template = Template::new("p", "H").method(
        TemplateMethod::new("hash", JavaType::byte_array())
            .param(JavaType::byte_array(), "data")
            .param(JavaType::string(), "algChoice")
            .pre(Stmt::decl_init(JavaType::byte_array(), "out", Expr::null()))
            .chain(
                CrySlCodeGenerator::get_instance()
                    .consider_crysl_rule("java.security.MessageDigest")
                    .add_parameter("algChoice", "altAlg") // pick the gB variant
                    .add_parameter("data", "input")
                    .add_return_object("out")
                    .build(),
            )
            .post(Stmt::Return(Some(Expr::var("out")))),
    );

    // Defaults honor the binding: the bound template variable is used.
    let honored = Generator::new()
        .generate(&template, &rules, &jca_type_table())
        .expect("generates");
    assert!(
        honored.java_source.contains("getInstance(algChoice)"),
        "{}",
        honored.java_source
    );

    // Filter off: the constraint literal of the *other* event wins.
    let off = SelectionOptions {
        filter_template_bindings: false,
        ..SelectionOptions::default()
    };
    let ignored = generator_with(off)
        .generate(&template, &rules, &jca_type_table())
        .expect("generates");
    assert!(
        ignored.java_source.contains("getInstance(\"SHA-256\")"),
        "template choice silently ignored without the filter:\n{}",
        ignored.java_source
    );
}

#[test]
fn longest_path_tie_break_emits_more_calls() {
    // Shortest-path selection is a code-size choice, not a correctness
    // one: with the longest-path tie-break the optional events are
    // included, generated code grows, and it still passes the analyzer.
    let longest = SelectionOptions {
        prefer_shortest: false,
        ..SelectionOptions::default()
    };
    let short = Generator::new()
        .generate(
            &usecases::pbe::pbe_strings(),
            &open(PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .expect("generates");
    let long = Generator::with_options(GeneratorOptions {
        selection: longest,
        ..GeneratorOptions::default()
    })
    .generate(
        &usecases::pbe::pbe_strings(),
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .expect("generates");
    assert!(
        long.java_source.lines().count() >= short.java_source.lines().count(),
        "longest-path output must not be shorter"
    );
    // Both remain misuse-free — the tie-break trades size, not security.
    for g in [&short, &long] {
        assert!(analyze_unit(
            &g.unit,
            &open(PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
            AnalyzerOptions::default()
        )
        .is_empty());
    }
}

#[test]
fn disabling_fallback_makes_unresolved_parameters_hard_errors() {
    use cognicryptgen::core::template::{CrySlCodeGenerator, Template, TemplateMethod};
    use cognicryptgen::javamodel::ast::JavaType;

    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("java.security.MessageDigest")
        .build();
    let t = Template::new("p", "C").method(TemplateMethod::new("go", JavaType::Void).chain(chain));
    let no_fallback = SelectionOptions {
        fallback_hoisting: false,
        ..SelectionOptions::default()
    };
    let err = generator_with(no_fallback)
        .generate(
            &t,
            &open(PackSource::Embedded).unwrap().rules,
            &jca_type_table(),
        )
        .unwrap_err();
    assert!(matches!(err, GenError::UnresolvedParameter { .. }), "{err}");
}
