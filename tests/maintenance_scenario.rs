//! The maintenance argument behind RQ4, demonstrated executably.
//!
//! The paper argues that the old generator's XSL templates are
//! "disconnected from any CrySL specifications, which frequently lead to
//! inconsistencies", while CogniCryptGEN derives all security-sensitive
//! code from the rules. We play out the scenario: a domain expert
//! tightens a security parameter in *one* CrySL rule. Every CogniCryptGEN
//! use case picks the change up on the next generation run, untouched;
//! the old generator's hard-coded templates keep emitting the stale value
//! until each is edited by hand.

use std::collections::BTreeMap;

use cognicryptgen::core::generate;
use cognicryptgen::crysl::RuleSet;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::oldgen;
use cognicryptgen::rules::RULE_SOURCES;
use cognicryptgen::usecases::all_use_cases;

/// The shipped rule set with the PBEKeySpec iteration floor raised from
/// 10,000 to 310,000 (the 2023 OWASP recommendation) — a one-line edit in
/// one artefact.
fn tightened_rules() -> RuleSet {
    let mut set = RuleSet::new();
    for (name, src) in RULE_SOURCES {
        let src = if *name == "PBEKeySpec" {
            src.replace("iterationCount >= 10000;", "iterationCount >= 310000;")
        } else {
            (*src).to_owned()
        };
        set.add_source(&src).expect("edited rule parses");
    }
    set
}

#[test]
fn one_rule_edit_updates_every_new_gen_use_case() {
    let table = jca_type_table();
    let rules = tightened_rules();
    let pbe_users = [1u8, 2, 3, 9]; // the use cases that derive keys from passwords
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table)
            .unwrap_or_else(|e| panic!("use case {}: {e}", uc.id));
        if pbe_users.contains(&uc.id) {
            assert!(
                generated.java_source.contains("310000"),
                "use case {} did not pick up the tightened rule:\n{}",
                uc.id,
                generated.java_source
            );
            assert!(!generated.java_source.contains(" 10000,"));
        }
    }
}

#[test]
fn old_gen_templates_keep_the_stale_value() {
    // The same security decision lives hard-coded inside each XSL
    // artefact; the rule edit cannot reach it.
    for uc in oldgen::old_gen_use_cases() {
        if ![1, 2, 3, 9].contains(&uc.id) {
            continue;
        }
        let out = oldgen::generate_use_case(&uc, &BTreeMap::new()).expect("old gen runs");
        assert!(
            out.contains("10000"),
            "use case {} unexpectedly already updated",
            uc.id
        );
        assert!(!out.contains("310000"));
        // The fix requires touching *this* artefact: the iteration count
        // is a Clafer domain value, and stronger floors need a model edit
        // per family plus re-validation of every dependent template.
    }
}

#[test]
fn rule_edit_is_one_artefact_template_edits_are_many() {
    // Quantify the paper's maintenance claim on our actual artefacts:
    // the new pipeline needs 1 changed file; the old one needs every
    // Clafer model (and potentially every XSL template) that mentions
    // key derivation.
    let new_gen_files_to_edit = 1; // PBEKeySpec.crysl
    let old_gen_files_to_edit = oldgen::old_gen_use_cases()
        .iter()
        .map(|u| u.clafer_source)
        .collect::<std::collections::BTreeSet<_>>()
        .iter()
        .filter(|m| m.contains("iterations"))
        .count();
    assert!(old_gen_files_to_edit >= 2, "pbe + password models at least");
    assert!(new_gen_files_to_edit < old_gen_files_to_edit);
}
