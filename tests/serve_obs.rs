//! Integration tests of the daemon's request-observability surfaces:
//! the `/tracez` access-record ring, `/statz` latency distributions,
//! and the `/profilez` capture window — over live transports, not the
//! unit-level ring in `serve::obs`'s own tests.

use std::collections::HashSet;

use cognicrypt_core::telemetry::validate_trace;
use cognicryptgen::serve::{http, obs, ServeConfig, Server, ServerHandle};
use devharness::histogram::Histogram;
use devharness::json::Json;

fn http_daemon(obs_capacity: usize) -> (ServerHandle, String) {
    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        threads: 4,
        obs_capacity,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");
    let addr = handle.http_addr().expect("http bound").to_string();
    (handle, addr)
}

fn get_json(addr: &str, path: &str) -> Json {
    let (code, body) = http::request(addr, "GET", path, "").unwrap();
    assert_eq!(code, 200, "GET {path} failed: {body}");
    Json::parse(&body).unwrap_or_else(|e| panic!("GET {path} body not JSON ({e}): {body}"))
}

#[test]
fn tracez_ring_keeps_only_the_newest_records() {
    let (handle, addr) = http_daemon(3);
    for _ in 0..5 {
        let (code, _) = http::request(&addr, "GET", "/generate/1", "").unwrap();
        assert_eq!(code, 200);
    }
    let doc = get_json(&addr, "/tracez");
    assert_eq!(doc.get("capacity").and_then(Json::as_u64), Some(3));
    assert_eq!(doc.get("count").and_then(Json::as_u64), Some(3));
    let records = doc.get("records").and_then(Json::as_arr).unwrap();
    let ids: Vec<u64> = records
        .iter()
        .map(|r| r.get("request_id").and_then(Json::as_u64).unwrap())
        .collect();
    // Newest first, oldest two of the five evicted.
    assert_eq!(ids, [5, 4, 3]);
    handle.shutdown();
}

#[test]
fn tracez_records_carry_the_full_schema_and_errors_filter() {
    let (handle, addr) = http_daemon(64);
    let (code, _) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    let (code, _) = http::request(&addr, "GET", "/generate/no-such-case", "").unwrap();
    assert_eq!(code, 400);
    // Unroutable traffic still lands in the ring, as `rejected`.
    let (code, _) = http::request(&addr, "GET", "/no-such-route", "").unwrap();
    assert_eq!(code, 404);

    let doc = get_json(&addr, "/tracez");
    let records = doc.get("records").and_then(Json::as_arr).unwrap();
    assert_eq!(records.len(), 3);
    for record in records {
        for field in ["request_id", "code", "wall_ns", "alloc_bytes", "cache_hits"] {
            assert!(
                record.get(field).and_then(Json::as_u64).is_some(),
                "record lacks numeric `{field}`: {record:?}"
            );
        }
        assert_eq!(record.get("transport").and_then(Json::as_str), Some("http"));
        let trace = record.get("trace_id").and_then(Json::as_str).unwrap();
        assert_eq!(trace.len(), 16);
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));
    }
    // Newest-first: the 404 leads and is attributed to no endpoint.
    assert_eq!(
        records[0].get("endpoint").and_then(Json::as_str),
        Some("rejected")
    );
    assert_eq!(records[2].get("selector").and_then(Json::as_str), Some("1"));

    let errors = get_json(&addr, "/tracez?errors=1");
    let records = errors.get("records").and_then(Json::as_arr).unwrap();
    assert_eq!(records.len(), 2, "only the two failures survive the filter");
    assert!(records
        .iter()
        .all(|r| r.get("class").and_then(Json::as_str) != Some("ok")));
    handle.shutdown();
}

#[test]
fn trace_ids_stay_unique_across_an_eight_thread_soak() {
    let (handle, addr) = http_daemon(obs::DEFAULT_RING_CAPACITY);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..25 {
                    let (code, _) = http::request(&addr, "GET", "/generate/1", "").unwrap();
                    assert_eq!(code, 200);
                }
            });
        }
    });
    let doc = get_json(&addr, "/tracez");
    let records = doc.get("records").and_then(Json::as_arr).unwrap();
    assert_eq!(records.len(), 200);
    let traces: HashSet<&str> = records
        .iter()
        .map(|r| r.get("trace_id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(traces.len(), 200, "trace ids collided under concurrency");
    let ids: HashSet<u64> = records
        .iter()
        .map(|r| r.get("request_id").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(ids.len(), 200, "request ids collided under concurrency");
    handle.shutdown();
}

#[test]
fn statz_distributions_agree_with_the_traffic_that_was_sent() {
    let (handle, addr) = http_daemon(obs::DEFAULT_RING_CAPACITY);
    for _ in 0..20 {
        let (code, _) = http::request(&addr, "GET", "/generate/1", "").unwrap();
        assert_eq!(code, 200);
    }
    let (code, text) = http::request(&addr, "GET", "/statz", "").unwrap();
    assert_eq!(code, 200);
    assert!(text.contains("http.generate.ok"), "statz table: {text}");

    let doc = get_json(&addr, "/statz?json=1");
    let hist = Histogram::from_json(doc.get("http.generate.ok").expect("generate key"))
        .expect("statz histogram parses");
    assert_eq!(hist.count(), 20);
    assert!(hist.max() > 0);
    assert!(hist.quantile(0.50) <= hist.quantile(0.99));
    assert!(hist.quantile(0.99) <= hist.max());

    // The same distribution surfaces as gauges in /metrics.
    let (code, metrics) = http::request(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(code, 200);
    assert!(metrics.contains("serve.latency.http.generate.ok.count gauge 20"));
    assert!(metrics.contains("serve.latency.http.generate.ok.p99_ns gauge"));
    handle.shutdown();
}

#[test]
fn profilez_capture_round_trips_through_trace_check() {
    let (handle, addr) = http_daemon(obs::DEFAULT_RING_CAPACITY);

    // Nothing armed yet.
    let (code, body) = http::request(&addr, "GET", "/profilez", "").unwrap();
    assert_eq!(code, 404);
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("not_found")
    );

    // Arm a two-request window; a second arm is refused with 409.
    let (code, body) = http::request(&addr, "POST", "/profilez", "2").unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("armed")
            .and_then(Json::as_u64),
        Some(2)
    );
    let (code, body) = http::request(&addr, "POST", "/profilez", "5").unwrap();
    assert_eq!(code, 409, "double-arm must conflict: {body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("conflict"));
    assert_eq!(doc.get("remaining").and_then(Json::as_u64), Some(2));

    // While the window is open the capture is not yet fetchable.
    let (code, _) = http::request(&addr, "GET", "/profilez", "").unwrap();
    assert_eq!(code, 404);

    for _ in 0..2 {
        let (code, _) = http::request(&addr, "GET", "/generate/1", "").unwrap();
        assert_eq!(code, 200);
    }
    let trace = get_json(&addr, "/profilez");
    validate_trace(&trace).expect("captured trace passes trace-check");
    let events = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(!events.is_empty(), "two generations must emit spans");

    // The capture stays fetchable until the next arm.
    let again = get_json(&addr, "/profilez");
    assert_eq!(
        again
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[_]>::len),
        Some(events.len())
    );

    // Out-of-range windows are typed usage errors.
    for bad in ["0", "999999999"] {
        let (code, body) = http::request(&addr, "POST", "/profilez", bad).unwrap();
        assert_eq!(code, 400, "window `{bad}` must be refused: {body}");
    }
    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn uds_transport_serves_the_same_observability_verbs() {
    use cognicryptgen::serve::uds;

    let socket = std::env::temp_dir().join(format!("cognicrypt-obs-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let config = ServeConfig {
        http_addr: None,
        uds_path: Some(socket.clone()),
        threads: 2,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");

    let responses = uds::request_lines(
        &socket,
        &[
            "profilez 1",
            "generate 1",
            "tracez",
            "tracez errors",
            "statz",
            "statz json",
            "profilez",
        ],
    )
    .unwrap();
    assert_eq!(responses.len(), 7);
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(
            response.get("class").and_then(Json::as_str),
            Some("ok"),
            "line {i}: {response:?}"
        );
    }

    let tracez = Json::parse(responses[2].get("body").and_then(Json::as_str).unwrap()).unwrap();
    let records = tracez.get("records").and_then(Json::as_arr).unwrap();
    assert!(records
        .iter()
        .all(|r| r.get("transport").and_then(Json::as_str) == Some("uds")));

    let statz = Json::parse(responses[5].get("body").and_then(Json::as_str).unwrap()).unwrap();
    let hist = Histogram::from_json(statz.get("uds.generate.ok").expect("generate key")).unwrap();
    assert_eq!(hist.count(), 1);

    let trace = Json::parse(responses[6].get("body").and_then(Json::as_str).unwrap()).unwrap();
    validate_trace(&trace).expect("uds-fetched capture passes trace-check");
    handle.shutdown();
}
