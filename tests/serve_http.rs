//! Protocol-level tests of the serve daemon: routes, typed error
//! classes, both transports, and the hot-reload cache-invalidation
//! semantics — all against in-process servers on ephemeral ports.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use cognicryptgen::serve::{http, ServeConfig, Server};
use cognicryptgen::usecases::all_use_cases;
use devharness::json::Json;

/// Daemons in this binary share the process-wide compiled-ORDER cache,
/// so tests asserting exact cache accounting must not overlap: each
/// daemon test holds this lock for its daemon's whole lifetime.
fn exclusive_daemon() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cognicryptgen-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Writes the shipped rule sources into `dir` as a `*.crysl` pack,
/// skipping any class named in `skip`.
fn write_pack(dir: &PathBuf, skip: &[&str]) -> usize {
    for entry in fs::read_dir(dir).expect("readable pack dir").flatten() {
        let _ = fs::remove_file(entry.path());
    }
    let mut written = 0;
    for (name, source) in rules::RULE_SOURCES {
        if skip.contains(name) {
            continue;
        }
        fs::write(dir.join(format!("{name}.crysl")), source).expect("write rule");
        written += 1;
    }
    written
}

fn expected_source(selector: &str) -> String {
    let uc = cognicryptgen::find_use_case(selector).expect("known use case");
    cognicryptgen::jca_engine()
        .expect("shipped rules parse")
        .generate(&uc.template)
        .expect("generates")
        .java_source
}

#[test]
fn http_routes_answer_with_typed_classes() {
    let _guard = exclusive_daemon();
    let handle = Server::start(&ServeConfig::http("127.0.0.1:0")).expect("daemon boots");
    let addr = handle.http_addr().expect("http bound").to_string();

    let (code, body) = http::request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    // The daemon's own output must be byte-identical to the one-shot
    // engine — same rules, same cache machinery, no drift.
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, expected_source("1"));

    // POST variant takes the selector as the body.
    let (code, body) = http::request(&addr, "POST", "/generate", "1").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, expected_source("1"));

    // A bad selector is a typed usage error carrying the CLI exit code.
    let (code, body) = http::request(&addr, "GET", "/generate/no-such-case", "").unwrap();
    assert_eq!(code, 400);
    let doc = Json::parse(&body).expect("error body is JSON");
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("usage"));
    assert_eq!(doc.get("exit_code").and_then(Json::as_u64), Some(2));

    // Zero batch threads is the same usage error as `batch <dir> 0`.
    let (code, body) = http::request(&addr, "GET", "/batch/0", "").unwrap();
    assert_eq!(code, 400);
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("usage")
    );

    // A real batch returns one member per shipped use case.
    let (code, body) = http::request(&addr, "GET", "/batch/2", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("batch body is JSON");
    let Json::Obj(members) = &doc else {
        panic!("batch response is an object")
    };
    assert_eq!(members.len(), all_use_cases().len());
    assert_eq!(
        doc.get("uc01").and_then(Json::as_str),
        Some(expected_source("1").as_str())
    );

    let (code, body) = http::request(&addr, "GET", "/report", "").unwrap();
    assert_eq!(code, 200);
    let report = Json::parse(&body).expect("report body is JSON");
    cognicryptgen::report::validate(&report).expect("daemon report validates");

    let (code, _) = http::request(&addr, "GET", "/no-such-route", "").unwrap();
    assert_eq!(code, 404);
    let (code, _) = http::request(&addr, "DELETE", "/healthz", "").unwrap();
    assert_eq!(code, 405);

    let (code, body) = http::request(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("serve.requests counter"));
    assert!(body.contains("serve.errors.usage counter"));
    assert!(body.contains("mem.daemon.peak_live_bytes gauge"));

    handle.shutdown();
}

#[test]
fn hot_reload_prunes_exactly_the_removed_fingerprints() {
    let _guard = exclusive_daemon();
    let pack = scratch("serve-pack");
    let full = write_pack(&pack, &[]);

    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        uds_path: None,
        threads: 2,
        rules_path: Some(pack.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots from the pack dir");
    let addr = handle.http_addr().expect("http bound").to_string();

    // Boot warms every rule, so the cache already holds the full pack.
    let before = expected_source("1");
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, before);

    // Shrink the pack by one rule: reload must drop exactly the removed
    // rule's cache entry and keep every other warm artefact.
    let smaller = write_pack(&pack, &["Mac"]);
    assert_eq!(smaller, full - 1);
    let (code, body) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("reload body is JSON");
    assert_eq!(
        doc.get("rules").and_then(Json::as_u64),
        Some(smaller as u64)
    );
    assert_eq!(
        doc.get("cache_entries_dropped").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        doc.get("cache_entries_kept").and_then(Json::as_u64),
        Some(smaller as u64)
    );

    // Restore the full pack: the removed rule recompiles, nothing else.
    write_pack(&pack, &[]);
    let (code, body) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("rules").and_then(Json::as_u64), Some(full as u64));
    assert_eq!(
        doc.get("cache_entries_dropped").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        doc.get("cache_entries_kept").and_then(Json::as_u64),
        Some(full as u64)
    );

    // Output across the reload cycle is still byte-identical.
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, before);

    // A pack that fails to parse leaves the running engine untouched.
    fs::write(pack.join("Broken.crysl"), "SPEC not a rule {{{").unwrap();
    let (code, body) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 500);
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("rules")
    );
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, before);

    handle.shutdown();
    let _ = fs::remove_dir_all(&pack);
}

#[test]
fn daemon_boots_from_a_compiled_pack_and_survives_a_corrupt_reload() {
    let _guard = exclusive_daemon();
    let dir = scratch("serve-crpack");
    let pack_bytes = rules::open(rules::PackSource::Embedded)
        .expect("shipped rules")
        .to_bytes()
        .expect("shipped rules pack");
    let pack_file = dir.join("jca.crpack");
    fs::write(&pack_file, &pack_bytes).unwrap();

    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        uds_path: None,
        threads: 2,
        rules_path: Some(pack_file.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots from the .crpack");
    let addr = handle.http_addr().expect("http bound").to_string();

    // Pack-booted output is byte-identical to the embedded engine.
    let before = expected_source("1");
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, before);

    // /loadz reports the compiled pack identity.
    let (code, body) = http::request(&addr, "GET", "/loadz", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("loadz body is JSON");
    let pack_info = doc.get("pack").expect("loadz carries pack identity");
    assert_eq!(
        pack_info.get("kind").and_then(Json::as_str),
        Some("compiled")
    );
    assert_eq!(pack_info.get("precompiled").and_then(Json::as_u64), Some(1));
    let fingerprint = pack_info
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("pack fingerprint")
        .to_owned();

    // Reloading the intact file succeeds and seeds every artefact.
    let (code, body) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("reload body is JSON");
    assert_eq!(
        doc.get("pack")
            .and_then(|p| p.get("kind"))
            .and_then(Json::as_str),
        Some("compiled")
    );

    // Corrupt the pack on disk: reload must fail with the typed `rules`
    // class and leave the running engine (and its pack identity) alone.
    let mut corrupt = pack_bytes.clone();
    corrupt[pack_bytes.len() / 2] ^= 0x40;
    fs::write(&pack_file, &corrupt).unwrap();
    let (code, body) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 500);
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str),
        Some("rules")
    );
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, before);
    let (_, body) = http::request(&addr, "GET", "/loadz", "").unwrap();
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("pack")
            .and_then(|p| p.get("fingerprint"))
            .and_then(Json::as_str),
        Some(fingerprint.as_str())
    );

    // Truncation is rejected the same way.
    fs::write(&pack_file, &pack_bytes[..pack_bytes.len() / 4]).unwrap();
    let (code, _) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 500);
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, before);

    // Restoring the file restores reloadability.
    fs::write(&pack_file, &pack_bytes).unwrap();
    let (code, _) = http::request(&addr, "POST", "/reload", "").unwrap();
    assert_eq!(code, 200);

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn serve_config_rejects_zero_threads_and_no_transport() {
    let Err(err) = Server::start(&ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        threads: 0,
        ..ServeConfig::default()
    }) else {
        panic!("zero threads must be rejected");
    };
    assert!(matches!(err, cognicryptgen::Error::Usage(_)));
    assert_eq!(err.exit_code(), 2);

    let Err(err) = Server::start(&ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    }) else {
        panic!("no transport must be rejected");
    };
    assert!(matches!(err, cognicryptgen::Error::Usage(_)));
}

#[cfg(unix)]
#[test]
fn uds_line_protocol_frames_one_json_response_per_request() {
    use cognicryptgen::serve::uds;

    let _guard = exclusive_daemon();
    let dir = scratch("serve-uds");
    let socket = dir.join("daemon.sock");
    let config = ServeConfig {
        http_addr: None,
        uds_path: Some(socket.clone()),
        threads: 2,
        rules_path: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots on the socket");

    let responses = uds::request_lines(
        &socket,
        &["healthz", "generate 1", "bogus-verb", "batch 0", "generate"],
    )
    .expect("socket round trip");
    assert_eq!(responses.len(), 5);

    let class = |i: usize| responses[i].get("class").and_then(Json::as_str).unwrap();
    assert_eq!(class(0), "ok");
    assert_eq!(class(1), "ok");
    assert_eq!(
        responses[1].get("body").and_then(Json::as_str),
        Some(expected_source("1").as_str())
    );
    // Hostile lines get typed errors on their own lines; the stream
    // stays synchronised — well-formed neighbours are unaffected.
    assert_eq!(class(2), "protocol");
    assert_eq!(class(3), "usage");
    assert_eq!(class(4), "protocol");

    // `shutdown` over the socket stops the daemon; join() returns.
    let responses = uds::request_lines(&socket, &["shutdown"]).expect("shutdown accepted");
    assert_eq!(responses[0].get("class").and_then(Json::as_str), Some("ok"));
    handle.join();
    let _ = fs::remove_dir_all(&dir);
}
