//! Property tests for the compiled-ORDER cache key: the fingerprint must
//! track *exactly* the rule content compilation reads (EVENTS + ORDER),
//! so a stale cache hit is impossible by construction.
//!
//! Random rule sketches are rendered to CrySL source, parsed, mutated,
//! and compared:
//!
//! * any mutation of the events or the ORDER expression changes the
//!   fingerprint; any change confined to sections compilation never
//!   reads (SPEC name, OBJECTS, CONSTRAINTS) does not;
//! * fingerprint-equal rules compile to structurally equal artefacts and
//!   share one cache entry, and a cached artefact always equals a fresh
//!   recompilation of the rule that hits it — the no-staleness property.
//!
//! Runs on the in-repo `devharness` property harness (hermetic, no
//! registry access).

use std::sync::Arc;

use devharness::prop::{check, Config, Gen, Tape};

use cognicryptgen::crysl::ast::Rule;
use cognicryptgen::crysl::parse_rule;
use cognicryptgen::crysl::printer::print_order;
use cognicryptgen::statemachine::{order_fingerprint, CompiledOrder, OrderCache};

const LABELS: [&str; 5] = ["a", "b", "c", "d", "e"];
const METHODS: [&str; 4] = ["init", "update", "doFinal", "reset"];
const SUFFIXES: [&str; 3] = ["", "?", "+"];

/// A randomly drawn rule shape: per-event method/arity, per-position
/// ORDER suffix, and an optional alternative group.
#[derive(Debug, Clone, PartialEq)]
struct Sketch {
    /// Per event: index into [`METHODS`].
    methods: Vec<usize>,
    /// Per event: parameter count, rendered as `_` wildcards.
    params: Vec<usize>,
    /// Per ORDER position: index into [`SUFFIXES`].
    suffixes: Vec<usize>,
    /// Positions `alt_at`/`alt_at + 1` render as `(x | y)` when both
    /// exist.
    alt_at: usize,
}

impl Sketch {
    fn len(&self) -> usize {
        self.methods.len()
    }

    /// Renders the sketch to parseable CrySL source. `spec` names the
    /// rule; `noise` adds an OBJECTS declaration and a CONSTRAINTS
    /// section — content compilation never reads.
    fn render(&self, spec: &str, noise: Option<i64>) -> String {
        let mut src = format!("SPEC {spec}\n");
        if noise.is_some() {
            src.push_str("OBJECTS int budget;\n");
        }
        src.push_str("EVENTS ");
        for i in 0..self.len() {
            let params = vec!["_"; self.params[i]].join(", ");
            src.push_str(&format!(
                "{}: {}({}); ",
                LABELS[i], METHODS[self.methods[i]], params
            ));
        }
        src.push_str("\nORDER ");
        let mut pos = 0;
        let mut terms = Vec::new();
        while pos < self.len() {
            let term = format!("{}{}", LABELS[pos], SUFFIXES[self.suffixes[pos]]);
            if pos == self.alt_at && pos + 1 < self.len() {
                let right = format!("{}{}", LABELS[pos + 1], SUFFIXES[self.suffixes[pos + 1]]);
                terms.push(format!("({term} | {right})"));
                pos += 2;
            } else {
                terms.push(term);
                pos += 1;
            }
        }
        src.push_str(&terms.join(", "));
        if let Some(k) = noise {
            src.push_str(&format!("\nCONSTRAINTS budget >= {k};"));
        }
        src
    }

    fn parse(&self, spec: &str, noise: Option<i64>) -> Rule {
        let src = self.render(spec, noise);
        parse_rule(&src).unwrap_or_else(|e| panic!("sketch must parse: {e}\n---\n{src}"))
    }
}

fn sketch_from_tape(t: &mut Tape) -> Sketch {
    let n = 2 + t.draw_below(3) as usize; // 2..=4 events
    Sketch {
        methods: (0..n)
            .map(|_| t.draw_below(METHODS.len() as u64) as usize)
            .collect(),
        params: (0..n).map(|_| t.draw_below(3) as usize).collect(),
        suffixes: (0..n)
            .map(|_| t.draw_below(SUFFIXES.len() as u64) as usize)
            .collect(),
        alt_at: t.draw_below(n as u64 + 1) as usize, // == n → no alternative
    }
}

/// Applies one always-content-changing mutation to the EVENTS/ORDER
/// input of `s`.
fn mutate(s: &Sketch, t: &mut Tape) -> Sketch {
    let mut m = s.clone();
    let pos = t.draw_below(s.len() as u64) as usize;
    match t.draw_below(5) {
        0 => m.suffixes[pos] = (m.suffixes[pos] + 1) % SUFFIXES.len(),
        1 => {
            let step = 1 + t.draw_below(METHODS.len() as u64 - 1) as usize;
            m.methods[pos] = (m.methods[pos] + step) % METHODS.len();
        }
        2 => m.params[pos] = (m.params[pos] + 1) % 3,
        3 if s.len() < LABELS.len() => {
            m.methods.push(t.draw_below(METHODS.len() as u64) as usize);
            m.params.push(t.draw_below(3) as usize);
            m.suffixes
                .push(t.draw_below(SUFFIXES.len() as u64) as usize);
        }
        _ if s.len() > 2 => {
            m.methods.pop();
            m.params.pop();
            m.suffixes.pop();
            m.alt_at = m.alt_at.min(m.len());
        }
        // Fallback when the chosen structural mutation is unavailable at
        // this size: toggling a suffix always changes the ORDER text.
        _ => m.suffixes[pos] = (m.suffixes[pos] + 1) % SUFFIXES.len(),
    }
    m
}

/// The exact serialization relation the fingerprint is specified over.
fn compilation_inputs_equal(a: &Rule, b: &Rule) -> bool {
    a.events == b.events && print_order(&a.order) == print_order(&b.order)
}

fn cfg() -> Config {
    Config::default()
}

#[test]
fn fingerprint_tracks_events_and_order_exactly() {
    let g = Gen::new(|t| {
        let base = sketch_from_tape(t);
        let mutated = mutate(&base, t);
        (base, mutated)
    });
    check(
        "fingerprint_tracks_events_and_order_exactly",
        &cfg(),
        &g,
        |(base, mutated)| {
            let a = base.parse("pkg.Api", None);
            let b = mutated.parse("pkg.Api", None);
            if compilation_inputs_equal(&a, &b) {
                assert_eq!(
                    order_fingerprint(&a),
                    order_fingerprint(&b),
                    "equal inputs must agree:\n{}\n{}",
                    base.render("pkg.Api", None),
                    mutated.render("pkg.Api", None)
                );
            } else {
                assert_ne!(
                    order_fingerprint(&a),
                    order_fingerprint(&b),
                    "mutated input must change the key:\n{}\n{}",
                    base.render("pkg.Api", None),
                    mutated.render("pkg.Api", None)
                );
            }
        },
    );
}

#[test]
fn fingerprint_ignores_sections_compilation_never_reads() {
    let g = Gen::new(|t| {
        let sketch = sketch_from_tape(t);
        let noise = t.draw_below(10_000) as i64;
        (sketch, noise)
    });
    check(
        "fingerprint_ignores_sections_compilation_never_reads",
        &cfg(),
        &g,
        |(sketch, noise)| {
            let plain = sketch.parse("pkg.Api", None);
            let noisy = sketch.parse("other.Name", Some(*noise));
            assert_eq!(order_fingerprint(&plain), order_fingerprint(&noisy));

            // Hash-equal rules produce structurally equal artefacts …
            let ca = CompiledOrder::compile(&plain).expect("compiles");
            let cb = CompiledOrder::compile(&noisy).expect("compiles");
            assert_eq!(ca.dfa, cb.dfa);
            assert_eq!(ca.paths, cb.paths);

            // … and share a single cache entry.
            let cache = OrderCache::new();
            let first = cache.get_or_compile(&plain).expect("compiles");
            let second = cache.get_or_compile(&noisy).expect("compiles");
            assert!(Arc::ptr_eq(&first, &second));
            assert_eq!(cache.len(), 1);
        },
    );
}

#[test]
fn cache_hits_are_never_stale() {
    let g = Gen::new(sketch_from_tape);
    check("cache_hits_are_never_stale", &cfg(), &g, |sketch| {
        let rule = sketch.parse("pkg.Api", None);
        let cache = OrderCache::new();
        let cached = cache.get_or_compile(&rule).expect("compiles");
        let hit = cache.get_or_compile(&rule).expect("compiles");
        assert!(Arc::ptr_eq(&cached, &hit), "second lookup must hit");

        // No staleness: what the cache serves is exactly what a fresh
        // compilation of the looked-up rule would produce, and its
        // stored fingerprint matches the lookup key.
        let fresh = CompiledOrder::compile(&rule).expect("compiles");
        assert_eq!(*cached, fresh);
        assert_eq!(cached.fingerprint, order_fingerprint(&rule));

        // The artefact is internally consistent: the DFA accepts every
        // enumerated path.
        for p in &cached.paths {
            assert!(cached.dfa.accepts(p.iter().map(String::as_str)));
        }
    });
}
