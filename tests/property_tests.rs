//! Property-based tests across the workspace: core invariants of the
//! state machines, the crypto substrate, and the generator pipeline.

use proptest::prelude::*;

use cognicryptgen::crysl::parse_rule;
use cognicryptgen::interp::base64;
use cognicryptgen::jcasim::aes::Aes128;
use cognicryptgen::jcasim::modes;
use cognicryptgen::jcasim::pbkdf2::pbkdf2_hmac_sha256;
use cognicryptgen::jcasim::rng::SecureRandom;
use cognicryptgen::jcasim::rsa;
use cognicryptgen::jcasim::sha256;
use cognicryptgen::statemachine::paths::{enumerate, PathLimit};
use cognicryptgen::statemachine::{Dfa, Nfa};

proptest! {
    #[test]
    fn sha256_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), sha256::digest(&data));
    }

    #[test]
    fn cbc_roundtrip(key in proptest::array::uniform16(any::<u8>()),
                     iv in proptest::array::uniform16(any::<u8>()),
                     pt in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aes = Aes128::new(&key);
        let ct = modes::cbc_encrypt(&aes, &iv, &pt).unwrap();
        prop_assert_eq!(modes::cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn gcm_roundtrip_and_tamper_detection(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
        flip in 0usize..256,
    ) {
        let aes = Aes128::new(&key);
        let ct = modes::gcm_encrypt(&aes, &nonce, &[], &pt).unwrap();
        prop_assert_eq!(modes::gcm_decrypt(&aes, &nonce, &[], &ct).unwrap(), pt);
        let mut tampered = ct.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 1;
        prop_assert!(modes::gcm_decrypt(&aes, &nonce, &[], &tampered).is_err());
    }

    #[test]
    fn pkcs7_roundtrip(pt in proptest::collection::vec(any::<u8>(), 0..200)) {
        let padded = modes::pkcs7_pad(&pt, 16);
        prop_assert_eq!(padded.len() % 16, 0);
        prop_assert_eq!(modes::pkcs7_unpad(&padded, 16).unwrap(), pt);
    }

    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    #[test]
    fn pbkdf2_length_and_salt_sensitivity(
        pwd in proptest::collection::vec(any::<u8>(), 1..32),
        salt in proptest::collection::vec(any::<u8>(), 1..32),
        len in 1usize..64,
    ) {
        let dk = pbkdf2_hmac_sha256(&pwd, &salt, 2, len);
        prop_assert_eq!(dk.len(), len);
        let mut salt2 = salt.clone();
        salt2[0] ^= 0xff;
        prop_assert_ne!(dk, pbkdf2_hmac_sha256(&pwd, &salt2, 2, len));
    }

    #[test]
    fn rsa_roundtrip(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let kp = rsa::generate_key_pair(&mut SecureRandom::from_seed(seed), 40).unwrap();
        let ct = rsa::encrypt(&kp.public, &data);
        prop_assert_eq!(rsa::decrypt(&kp.private, &ct).unwrap(), data);
    }

    #[test]
    fn rsa_sign_verify(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let kp = rsa::generate_key_pair(&mut SecureRandom::from_seed(seed), 40).unwrap();
        let sig = rsa::sign(&kp.private, &data);
        prop_assert!(rsa::verify(&kp.public, &data, &sig));
        let mut other = data.clone();
        other.push(1);
        prop_assert!(!rsa::verify(&kp.public, &other, &sig));
    }
}

/// Strategy: random ORDER expressions over a fixed event alphabet,
/// rendered as rule source text.
fn order_expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just("d".to_owned()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x}, {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} | {y})")),
            inner.clone().prop_map(|x| format!("({x})?")),
            inner.clone().prop_map(|x| format!("({x})*")),
            inner.prop_map(|x| format!("({x})+")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of path enumeration: every path the generator would use
    /// is accepted by the rule's own automaton.
    #[test]
    fn enumerated_paths_are_accepted_by_the_dfa(order in order_expr_strategy()) {
        let src = format!(
            "SPEC X\nEVENTS a: fa(); b: fb(); c: fc(); d: fd();\nORDER {order}"
        );
        let rule = parse_rule(&src).unwrap();
        let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
        if let Ok(paths) = enumerate(&rule, PathLimit(512)) {
            prop_assert!(!paths.is_empty());
            for p in paths {
                let word: Vec<&str> = p.iter().map(String::as_str).collect();
                prop_assert!(dfa.accepts(word.iter().copied()), "rejected {p:?} for {order}");
            }
        }
    }

    /// Minimization preserves the language on sampled words.
    #[test]
    fn minimized_dfa_is_equivalent(order in order_expr_strategy(),
                                   word in proptest::collection::vec(0usize..4, 0..10)) {
        let src = format!(
            "SPEC X\nEVENTS a: fa(); b: fb(); c: fc(); d: fd();\nORDER {order}"
        );
        let rule = parse_rule(&src).unwrap();
        let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
        let min = dfa.minimize();
        prop_assert!(min.state_count() <= dfa.state_count());
        let labels = ["a", "b", "c", "d"];
        let w: Vec<&str> = word.iter().map(|&i| labels[i]).collect();
        prop_assert_eq!(dfa.accepts(w.iter().copied()), min.accepts(w.iter().copied()));
    }

    /// The DFA and a direct NFA simulation agree on membership.
    #[test]
    fn dfa_agrees_with_nfa_simulation(order in order_expr_strategy(),
                                      word in proptest::collection::vec(0usize..4, 0..8)) {
        let src = format!(
            "SPEC X\nEVENTS a: fa(); b: fb(); c: fc(); d: fd();\nORDER {order}"
        );
        let rule = parse_rule(&src).unwrap();
        let nfa = Nfa::from_rule(&rule).unwrap();
        let dfa = Dfa::from_nfa(&nfa);
        let labels = ["a", "b", "c", "d"];
        let w: Vec<&str> = word.iter().map(|&i| labels[i]).collect();
        // NFA simulation.
        let mut states = nfa.epsilon_closure(&std::collections::BTreeSet::from([nfa.start()]));
        let mut alive = true;
        for l in &w {
            states = nfa.epsilon_closure(&nfa.move_on(&states, l));
            if states.is_empty() {
                alive = false;
                break;
            }
        }
        let nfa_accepts = alive && states.contains(&nfa.accept());
        prop_assert_eq!(dfa.accepts(w.iter().copied()), nfa_accepts);
    }
}
