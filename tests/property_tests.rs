//! Property-based tests across the workspace: core invariants of the
//! state machines, the crypto substrate, and the generator pipeline.
//! Runs on the in-repo `devharness` property harness (hermetic, no
//! registry access).

use devharness::prop::{check, gens, Config, Gen};

use cognicryptgen::crysl::parse_rule;
use cognicryptgen::interp::base64;
use cognicryptgen::jcasim::aes::Aes128;
use cognicryptgen::jcasim::modes;
use cognicryptgen::jcasim::pbkdf2::pbkdf2_hmac_sha256;
use cognicryptgen::jcasim::rng::SecureRandom;
use cognicryptgen::jcasim::rsa;
use cognicryptgen::jcasim::sha256;
use cognicryptgen::statemachine::paths::{enumerate, PathLimit};
use cognicryptgen::statemachine::{Dfa, Nfa};

fn cfg() -> Config {
    Config::default()
}

#[test]
fn sha256_incremental_matches_oneshot() {
    let g = gens::tuple2(gens::bytes(0, 2048), gens::usize_range(0, 2048));
    check(
        "sha256_incremental_matches_oneshot",
        &cfg(),
        &g,
        |(data, split)| {
            let split = (*split).min(data.len());
            let mut h = sha256::Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), sha256::digest(data));
        },
    );
}

#[test]
fn cbc_roundtrip() {
    let g = gens::tuple3(
        gens::byte_array::<16>(),
        gens::byte_array::<16>(),
        gens::bytes(0, 512),
    );
    check("cbc_roundtrip", &cfg(), &g, |(key, iv, pt)| {
        let aes = Aes128::new(key);
        let ct = modes::cbc_encrypt(&aes, iv, pt).unwrap();
        assert_eq!(modes::cbc_decrypt(&aes, iv, &ct).unwrap(), pt.clone());
    });
}

#[test]
fn gcm_roundtrip_and_tamper_detection() {
    let g = gens::tuple4(
        gens::byte_array::<16>(),
        gens::byte_array::<12>(),
        gens::bytes(0, 256),
        gens::usize_range(0, 256),
    );
    check(
        "gcm_roundtrip_and_tamper_detection",
        &cfg(),
        &g,
        |(key, nonce, pt, flip)| {
            let aes = Aes128::new(key);
            let ct = modes::gcm_encrypt(&aes, nonce, &[], pt).unwrap();
            assert_eq!(
                modes::gcm_decrypt(&aes, nonce, &[], &ct).unwrap(),
                pt.clone()
            );
            let mut tampered = ct.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 1;
            assert!(modes::gcm_decrypt(&aes, nonce, &[], &tampered).is_err());
        },
    );
}

#[test]
fn pkcs7_roundtrip() {
    let g = gens::bytes(0, 200);
    check("pkcs7_roundtrip", &cfg(), &g, |pt| {
        let padded = modes::pkcs7_pad(pt, 16);
        assert_eq!(padded.len() % 16, 0);
        assert_eq!(modes::pkcs7_unpad(&padded, 16).unwrap(), pt.clone());
    });
}

#[test]
fn base64_roundtrip() {
    let g = gens::bytes(0, 300);
    check("base64_roundtrip", &cfg(), &g, |data| {
        assert_eq!(base64::decode(&base64::encode(data)).unwrap(), data.clone());
    });
}

#[test]
fn pbkdf2_length_and_salt_sensitivity() {
    let g = gens::tuple3(
        gens::bytes(1, 32),
        gens::bytes(1, 32),
        gens::usize_range(1, 64),
    );
    check(
        "pbkdf2_length_and_salt_sensitivity",
        &cfg(),
        &g,
        |(pwd, salt, len)| {
            let dk = pbkdf2_hmac_sha256(pwd, salt, 2, *len);
            assert_eq!(dk.len(), *len);
            let mut salt2 = salt.clone();
            salt2[0] ^= 0xff;
            assert_ne!(dk, pbkdf2_hmac_sha256(pwd, &salt2, 2, *len));
        },
    );
}

#[test]
fn rsa_roundtrip() {
    let g = gens::tuple2(gens::u64_any(), gens::bytes(0, 64));
    check("rsa_roundtrip", &cfg(), &g, |(seed, data)| {
        let kp = rsa::generate_key_pair(&mut SecureRandom::from_seed(*seed), 40).unwrap();
        let ct = rsa::encrypt(&kp.public, data);
        assert_eq!(rsa::decrypt(&kp.private, &ct).unwrap(), data.clone());
    });
}

#[test]
fn rsa_sign_verify() {
    let g = gens::tuple2(gens::u64_any(), gens::bytes(0, 64));
    check("rsa_sign_verify", &cfg(), &g, |(seed, data)| {
        let kp = rsa::generate_key_pair(&mut SecureRandom::from_seed(*seed), 40).unwrap();
        let sig = rsa::sign(&kp.private, data);
        assert!(rsa::verify(&kp.public, data, &sig));
        let mut other = data.clone();
        other.push(1);
        assert!(!rsa::verify(&kp.public, &other, &sig));
    });
}

/// Generator: random ORDER expressions over a fixed event alphabet,
/// rendered as rule source text. Depth-bounded recursion mirrors the
/// original `prop_recursive(3, ..)` strategy.
fn order_expr(depth: u32) -> Gen<String> {
    let leaf = gens::one_of(vec![
        "a".to_owned(),
        "b".to_owned(),
        "c".to_owned(),
        "d".to_owned(),
    ]);
    if depth == 0 {
        return leaf;
    }
    let inner = order_expr(depth - 1);
    let seq = gens::tuple2(inner.clone(), inner.clone()).map(|(x, y)| format!("({x}, {y})"));
    let alt = gens::tuple2(inner.clone(), inner.clone()).map(|(x, y)| format!("({x} | {y})"));
    let opt = inner.clone().map(|x| format!("({x})?"));
    let star = inner.clone().map(|x| format!("({x})*"));
    let plus = inner.map(|x| format!("({x})+"));
    gens::pick(vec![leaf, seq, alt, opt, star, plus])
}

fn word_gen(max_len: usize) -> Gen<Vec<usize>> {
    gens::vec(gens::usize_range(0, 4), 0, max_len)
}

/// Soundness of path enumeration: every path the generator would use
/// is accepted by the rule's own automaton.
#[test]
fn enumerated_paths_are_accepted_by_the_dfa() {
    check(
        "enumerated_paths_are_accepted_by_the_dfa",
        &Config::with_cases(64),
        &order_expr(3),
        |order| {
            let src = format!("SPEC X\nEVENTS a: fa(); b: fb(); c: fc(); d: fd();\nORDER {order}");
            let rule = parse_rule(&src).unwrap();
            let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
            if let Ok(paths) = enumerate(&rule, PathLimit(512)) {
                assert!(!paths.is_empty());
                for p in paths {
                    let word: Vec<&str> = p.iter().map(String::as_str).collect();
                    assert!(
                        dfa.accepts(word.iter().copied()),
                        "rejected {p:?} for {order}"
                    );
                }
            }
        },
    );
}

/// Minimization preserves the language on sampled words.
#[test]
fn minimized_dfa_is_equivalent() {
    let g = gens::tuple2(order_expr(3), word_gen(10));
    check(
        "minimized_dfa_is_equivalent",
        &Config::with_cases(64),
        &g,
        |(order, word)| {
            let src = format!("SPEC X\nEVENTS a: fa(); b: fb(); c: fc(); d: fd();\nORDER {order}");
            let rule = parse_rule(&src).unwrap();
            let dfa = Dfa::from_nfa(&Nfa::from_rule(&rule).unwrap());
            let min = dfa.minimize();
            assert!(min.state_count() <= dfa.state_count());
            let labels = ["a", "b", "c", "d"];
            let w: Vec<&str> = word.iter().map(|&i| labels[i]).collect();
            assert_eq!(
                dfa.accepts(w.iter().copied()),
                min.accepts(w.iter().copied())
            );
        },
    );
}

/// The DFA and a direct NFA simulation agree on membership.
#[test]
fn dfa_agrees_with_nfa_simulation() {
    let g = gens::tuple2(order_expr(3), word_gen(8));
    check(
        "dfa_agrees_with_nfa_simulation",
        &Config::with_cases(64),
        &g,
        |(order, word)| {
            let src = format!("SPEC X\nEVENTS a: fa(); b: fb(); c: fc(); d: fd();\nORDER {order}");
            let rule = parse_rule(&src).unwrap();
            let nfa = Nfa::from_rule(&rule).unwrap();
            let dfa = Dfa::from_nfa(&nfa);
            let labels = ["a", "b", "c", "d"];
            let w: Vec<&str> = word.iter().map(|&i| labels[i]).collect();
            // NFA simulation.
            let mut states = nfa.epsilon_closure(&std::collections::BTreeSet::from([nfa.start()]));
            let mut alive = true;
            for l in &w {
                states = nfa.epsilon_closure(&nfa.move_on(&states, l));
                if states.is_empty() {
                    alive = false;
                    break;
                }
            }
            let nfa_accepts = alive && states.contains(&nfa.accept());
            assert_eq!(dfa.accepts(w.iter().copied()), nfa_accepts);
        },
    );
}
