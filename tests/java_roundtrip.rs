//! Textual round trips: the Java source the generator emits parses back
//! into an equivalent AST (print → parse → print is a fixpoint), and the
//! misuse analyzer accepts Java *text* as input via the parser — the
//! workflow a user with `.java` files on disk would follow.

use cognicryptgen::core::generate;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::javamodel::parser::parse_java;
use cognicryptgen::javamodel::printer::print_unit;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases::all_use_cases;

#[test]
fn every_generated_use_case_roundtrips_through_text() {
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table).expect("generation succeeds");
        let reparsed = parse_java(&generated.java_source, &table)
            .unwrap_or_else(|e| panic!("use case {}: {e}\n---\n{}", uc.id, generated.java_source));
        let reprinted = print_unit(&reparsed);
        assert_eq!(
            reprinted, generated.java_source,
            "use case {} is not a print/parse fixpoint",
            uc.id
        );
    }
}

#[test]
fn sast_accepts_java_text() {
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    // Generated (secure) text analyzes clean.
    let generated = generate(&all_use_cases()[0].template, &rules, &table).expect("generates");
    let from_text = parse_java(&generated.java_source, &table).expect("parses");
    assert!(analyze_unit(&from_text, &rules, &table, AnalyzerOptions::default()).is_empty());

    // Hand-written insecure text is flagged.
    let insecure = r#"
public class App {
    public byte[] weakHash(byte[] data) {
        MessageDigest md = MessageDigest.getInstance("SHA-1");
        return md.digest(data);
    }
}
"#;
    let unit = parse_java(insecure, &table).expect("parses");
    let misuses = analyze_unit(&unit, &rules, &table, AnalyzerOptions::default());
    assert_eq!(misuses.len(), 1, "{misuses:?}");
    assert_eq!(
        misuses[0].kind,
        cognicryptgen::sast::MisuseKind::ConstraintError
    );
}

#[test]
fn reparsed_units_still_type_check() {
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table).expect("generates");
        let reparsed = parse_java(&generated.java_source, &table).expect("parses");
        let mut check_table = table.clone();
        check_table.add(
            cognicryptgen::javamodel::typetable::ClassDef::new(uc.template.class_name.clone())
                .ctor(vec![]),
        );
        cognicryptgen::javamodel::typecheck::check_unit(&reparsed, &check_table)
            .unwrap_or_else(|e| panic!("use case {}: {e}", uc.id));
    }
}
