//! Interpreter edge cases beyond the crate's unit tests: branch scoping,
//! aliasing across calls, file-system errors, and the JCA object
//! lifecycle semantics the generator's output relies on.

use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::ast::*;

fn unit_with(methods: Vec<MethodDecl>) -> CompilationUnit {
    let mut class = ClassDecl::new("T");
    class.methods = methods;
    CompilationUnit::new("p").class(class)
}

#[test]
fn assignments_inside_branches_reach_the_outer_scope() {
    // x starts 0; the branch overwrites it; the return sees the new value.
    let m = MethodDecl::new("f", JavaType::Int)
        .param(JavaType::Boolean, "flag")
        .statement(Stmt::decl_init(JavaType::Int, "x", Expr::int(0)))
        .statement(Stmt::If {
            cond: Expr::var("flag"),
            then_body: vec![Stmt::assign("x", Expr::int(7))],
            else_body: vec![Stmt::assign("x", Expr::int(9))],
        })
        .statement(Stmt::Return(Some(Expr::var("x"))));
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    assert_eq!(
        i.call_static_style("T", "f", vec![Value::Bool(true)])
            .unwrap()
            .as_int()
            .unwrap(),
        7
    );
    assert_eq!(
        i.call_static_style("T", "f", vec![Value::Bool(false)])
            .unwrap()
            .as_int()
            .unwrap(),
        9
    );
}

#[test]
fn byte_arrays_alias_across_method_calls() {
    // fill(byte[]) mutates the caller's array through the reference.
    let fill = MethodDecl::new("fill", JavaType::Void)
        .param(JavaType::byte_array(), "buf")
        .statement(Stmt::decl_init(
            JavaType::class("java.security.SecureRandom"),
            "r",
            Expr::static_call(
                "java.security.SecureRandom",
                "getInstance",
                vec![Expr::str("SHA1PRNG")],
            ),
        ))
        .statement(Stmt::Expr(Expr::call(
            Expr::var("r"),
            "nextBytes",
            vec![Expr::var("buf")],
        )));
    let caller = MethodDecl::new("go", JavaType::byte_array())
        .statement(Stmt::decl_init(
            JavaType::byte_array(),
            "buf",
            Expr::new_array(JavaType::Byte, Expr::int(8)),
        ))
        .statement(Stmt::decl_init(
            JavaType::class("T"),
            "self",
            Expr::new_object("T", vec![]),
        ))
        .statement(Stmt::Expr(Expr::call(
            Expr::var("self"),
            "fill",
            vec![Expr::var("buf")],
        )))
        .statement(Stmt::Return(Some(Expr::var("buf"))));
    let unit = unit_with(vec![fill, caller]);
    let mut i = Interpreter::new(&unit);
    let out = i.call_static_style("T", "go", vec![]).unwrap();
    assert_ne!(out.as_bytes().unwrap(), vec![0u8; 8]);
}

#[test]
fn reading_a_missing_file_is_an_error() {
    let m = MethodDecl::new("f", JavaType::byte_array()).statement(Stmt::Return(Some(
        Expr::static_call(
            "java.nio.file.Files",
            "readAllBytes",
            vec![Expr::str("ghost")],
        ),
    )));
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    let err = i.call_static_style("T", "f", vec![]).unwrap_err();
    assert!(err.message.contains("no such file"), "{err}");
}

#[test]
fn negative_array_size_is_an_error() {
    let m = MethodDecl::new("f", JavaType::Void).statement(Stmt::decl_init(
        JavaType::byte_array(),
        "b",
        Expr::new_array(JavaType::Byte, Expr::int(-1)),
    ));
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    assert!(i.call_static_style("T", "f", vec![]).is_err());
}

#[test]
fn slice_bounds_are_checked() {
    let m = MethodDecl::new("f", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .statement(Stmt::Return(Some(Expr::static_call(
            "de.cognicrypt.util.ByteArrays",
            "slice",
            vec![Expr::var("data"), Expr::int(0), Expr::int(999)],
        ))));
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    let err = i
        .call_static_style("T", "f", vec![Value::bytes(vec![1, 2, 3])])
        .unwrap_err();
    assert!(err.message.contains("bounds"), "{err}");
}

#[test]
fn string_equals_and_concat_cooperate() {
    let m = MethodDecl::new("f", JavaType::Boolean)
        .param(JavaType::string(), "a")
        .statement(Stmt::decl_init(
            JavaType::string(),
            "joined",
            Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::var("a")),
                rhs: Box::new(Expr::str("!")),
            },
        ))
        .statement(Stmt::Return(Some(Expr::call(
            Expr::var("joined"),
            "equals",
            vec![Expr::str("hi!")],
        ))));
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    assert!(i
        .call_static_style("T", "f", vec![Value::Str("hi".into())])
        .unwrap()
        .as_bool()
        .unwrap());
    assert!(!i
        .call_static_style("T", "f", vec![Value::Str("bye".into())])
        .unwrap()
        .as_bool()
        .unwrap());
}

#[test]
fn wrong_argument_count_to_local_method_is_an_error() {
    let m = MethodDecl::new("f", JavaType::Void).param(JavaType::Int, "x");
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    let err = i.call_static_style("T", "f", vec![]).unwrap_err();
    assert!(err.message.contains("expects 1 arguments"), "{err}");
}

#[test]
fn cipher_requires_initialization_before_dofinal() {
    let m = MethodDecl::new("f", JavaType::byte_array())
        .param(JavaType::byte_array(), "data")
        .statement(Stmt::decl_init(
            JavaType::class("javax.crypto.Cipher"),
            "c",
            Expr::static_call(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Expr::str("AES/CBC/PKCS5Padding")],
            ),
        ))
        .statement(Stmt::Return(Some(Expr::call(
            Expr::var("c"),
            "doFinal",
            vec![Expr::var("data")],
        ))));
    let unit = unit_with(vec![m]);
    let mut i = Interpreter::new(&unit);
    let err = i
        .call_static_style("T", "f", vec![Value::bytes(vec![0; 16])])
        .unwrap_err();
    assert!(err.message.contains("not initialized"), "{err}");
}
