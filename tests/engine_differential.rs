//! Differential suite: the warm `GenEngine` path must be observably
//! identical to the legacy cold path for every Table-1 use case.
//!
//! "Cold" is the pre-engine behaviour — rules re-parsed from source,
//! every ORDER pattern recompiled, no cache anywhere. "Warm" is a
//! `GenEngine` whose compiled-ORDER cache was fully populated before the
//! measured generation, so every artefact lookup is a cache hit. For
//! every catalogued use case the suite asserts the two paths agree on
//!
//! * the emitted Java source, byte for byte,
//! * the static analyzer's verdicts on the emitted unit, and
//! * the observable behaviour when the generated code is *executed* on
//!   the simulated JCA provider (full interpreter round trip; the
//!   simulated `SecureRandom` is deterministic, so transcripts are
//!   byte-reproducible across interpreter instances).

use cognicryptgen::core::{GenEngine, Generated, Generator};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, open_uncached, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases::all_use_cases;

mod common;
use common::transcript;

/// The legacy cold path: freshly parsed rules, no compiled-artefact
/// reuse of any kind.
fn cold(template: &cognicryptgen::core::Template) -> Generated {
    let rules = open_uncached(PackSource::Embedded)
        .expect("shipped rules parse")
        .rules;
    Generator::new()
        .generate_uncached(template, &rules, &jca_type_table())
        .expect("cold generation succeeds")
}

/// The warm engine path: a fresh engine, cache fully populated via
/// `warm()`, so the measured generation serves every artefact from the
/// cache (asserted through the hit counter).
fn warm(template: &cognicryptgen::core::Template) -> Generated {
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied");
    engine.warm().expect("warm succeeds");
    let generated = engine.generate(template).expect("warm generation succeeds");
    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "warm generation must be served from the cache: {stats:?}"
    );
    assert_eq!(
        stats.misses as usize, stats.entries,
        "only warm() itself may compile: {stats:?}"
    );
    generated
}

#[test]
fn warm_engine_emits_byte_identical_java_for_all_use_cases() {
    for uc in all_use_cases() {
        let c = cold(&uc.template);
        let w = warm(&uc.template);
        assert_eq!(
            c.java_source, w.java_source,
            "use case {} ({}) diverged between cold and warm paths",
            uc.id, uc.name
        );
        assert_eq!(c.hoisted, w.hoisted, "use case {} hoisting differs", uc.id);
    }
}

#[test]
fn observed_engine_emits_byte_identical_java_to_unobserved() {
    // Telemetry must be purely observational: an engine carrying a live
    // observer (per-phase timings and the metrics registry running)
    // emits exactly the bytes a no-op-observer engine emits.
    use cognicryptgen::core::telemetry::PhaseTimings;
    use std::sync::Arc;

    let timings = Arc::new(PhaseTimings::new());
    let observed = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(timings.clone())
        .build()
        .expect("rules supplied");
    let unobserved = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied");
    for uc in all_use_cases() {
        let on = observed.generate(&uc.template).expect("generates");
        let off = unobserved.generate(&uc.template).expect("generates");
        assert_eq!(
            on.java_source, off.java_source,
            "use case {} ({}) diverged under telemetry",
            uc.id, uc.name
        );
        assert_eq!(
            on.hoisted, off.hoisted,
            "use case {} hoisting differs",
            uc.id
        );
    }
    // The observer really ran: every use case has timing rows.
    assert_eq!(timings.snapshot().len(), all_use_cases().len());
    assert!(!observed.metrics().is_empty());
}

#[test]
fn warm_engine_preserves_sast_verdicts_for_all_use_cases() {
    let table = jca_type_table();
    let rules = open_uncached(PackSource::Embedded).expect("parses").rules;
    for uc in all_use_cases() {
        let c = analyze_unit(
            &cold(&uc.template).unit,
            &rules,
            &table,
            AnalyzerOptions::default(),
        );
        let w = analyze_unit(
            &warm(&uc.template).unit,
            &rules,
            &table,
            AnalyzerOptions::default(),
        );
        let render =
            |ms: &[_]| -> Vec<String> { ms.iter().map(|m| format!("{m}")).collect::<Vec<_>>() };
        assert_eq!(
            render(&c),
            render(&w),
            "use case {} ({}) SAST verdicts diverged",
            uc.id,
            uc.name
        );
        assert!(
            c.is_empty(),
            "use case {} generated code has misuses",
            uc.id
        );
    }
}

#[test]
fn warm_engine_preserves_runtime_behaviour_for_all_use_cases() {
    for uc in all_use_cases() {
        let c = transcript(uc.id, &cold(&uc.template).unit);
        let w = transcript(uc.id, &warm(&uc.template).unit);
        assert!(!c.is_empty(), "use case {} has no driver", uc.id);
        assert_eq!(
            c, w,
            "use case {} ({}) runtime transcripts diverged",
            uc.id, uc.name
        );
    }
}
