//! Differential suite: the warm `GenEngine` path must be observably
//! identical to the legacy cold path for every Table-1 use case.
//!
//! "Cold" is the pre-engine behaviour — rules re-parsed from source,
//! every ORDER pattern recompiled, no cache anywhere. "Warm" is a
//! `GenEngine` whose compiled-ORDER cache was fully populated before the
//! measured generation, so every artefact lookup is a cache hit. For
//! each of the eleven use cases the suite asserts the two paths agree on
//!
//! * the emitted Java source, byte for byte,
//! * the static analyzer's verdicts on the emitted unit, and
//! * the observable behaviour when the generated code is *executed* on
//!   the simulated JCA provider (full interpreter round trip; the
//!   simulated `SecureRandom` is deterministic, so transcripts are
//!   byte-reproducible across interpreter instances).

use cognicryptgen::core::{GenEngine, Generated, Generator};
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::ast::{ClassDecl, CompilationUnit, Expr, JavaType, MethodDecl, Stmt};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, open_uncached, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases::all_use_cases;

/// The legacy cold path: freshly parsed rules, no compiled-artefact
/// reuse of any kind.
fn cold(template: &cognicryptgen::core::Template) -> Generated {
    let rules = open_uncached(PackSource::Embedded)
        .expect("shipped rules parse")
        .rules;
    Generator::new()
        .generate_uncached(template, &rules, &jca_type_table())
        .expect("cold generation succeeds")
}

/// The warm engine path: a fresh engine, cache fully populated via
/// `warm()`, so the measured generation serves every artefact from the
/// cache (asserted through the hit counter).
fn warm(template: &cognicryptgen::core::Template) -> Generated {
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied");
    engine.warm().expect("warm succeeds");
    let generated = engine.generate(template).expect("warm generation succeeds");
    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "warm generation must be served from the cache: {stats:?}"
    );
    assert_eq!(
        stats.misses as usize, stats.entries,
        "only warm() itself may compile: {stats:?}"
    );
    generated
}

#[test]
fn warm_engine_emits_byte_identical_java_for_all_use_cases() {
    for uc in all_use_cases() {
        let c = cold(&uc.template);
        let w = warm(&uc.template);
        assert_eq!(
            c.java_source, w.java_source,
            "use case {} ({}) diverged between cold and warm paths",
            uc.id, uc.name
        );
        assert_eq!(c.hoisted, w.hoisted, "use case {} hoisting differs", uc.id);
    }
}

#[test]
fn observed_engine_emits_byte_identical_java_to_unobserved() {
    // Telemetry must be purely observational: an engine carrying a live
    // observer (per-phase timings and the metrics registry running)
    // emits exactly the bytes a no-op-observer engine emits.
    use cognicryptgen::core::telemetry::PhaseTimings;
    use std::sync::Arc;

    let timings = Arc::new(PhaseTimings::new());
    let observed = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(timings.clone())
        .build()
        .expect("rules supplied");
    let unobserved = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied");
    for uc in all_use_cases() {
        let on = observed.generate(&uc.template).expect("generates");
        let off = unobserved.generate(&uc.template).expect("generates");
        assert_eq!(
            on.java_source, off.java_source,
            "use case {} ({}) diverged under telemetry",
            uc.id, uc.name
        );
        assert_eq!(
            on.hoisted, off.hoisted,
            "use case {} hoisting differs",
            uc.id
        );
    }
    // The observer really ran: every use case has timing rows.
    assert_eq!(timings.snapshot().len(), 11);
    assert!(!observed.metrics().is_empty());
}

#[test]
fn warm_engine_preserves_sast_verdicts_for_all_use_cases() {
    let table = jca_type_table();
    let rules = open_uncached(PackSource::Embedded).expect("parses").rules;
    for uc in all_use_cases() {
        let c = analyze_unit(
            &cold(&uc.template).unit,
            &rules,
            &table,
            AnalyzerOptions::default(),
        );
        let w = analyze_unit(
            &warm(&uc.template).unit,
            &rules,
            &table,
            AnalyzerOptions::default(),
        );
        let render =
            |ms: &[_]| -> Vec<String> { ms.iter().map(|m| format!("{m}")).collect::<Vec<_>>() };
        assert_eq!(
            render(&c),
            render(&w),
            "use case {} ({}) SAST verdicts diverged",
            uc.id,
            uc.name
        );
        assert!(
            c.is_empty(),
            "use case {} generated code has misuses",
            uc.id
        );
    }
}

#[test]
fn warm_engine_preserves_runtime_behaviour_for_all_use_cases() {
    for uc in all_use_cases() {
        let c = transcript(uc.id, &cold(&uc.template).unit);
        let w = transcript(uc.id, &warm(&uc.template).unit);
        assert!(!c.is_empty(), "use case {} has no driver", uc.id);
        assert_eq!(
            c, w,
            "use case {} ({}) runtime transcripts diverged",
            uc.id, uc.name
        );
    }
}

// ---------------------------------------------------------------------
// Per-use-case interpreter drivers. Each runs the generated class's full
// protocol and renders every observable output into the transcript.
// ---------------------------------------------------------------------

fn key_pair_accessor(recv: Value, name: &str) -> Value {
    let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
        .param(JavaType::class("java.security.KeyPair"), "kp")
        .statement(Stmt::Return(Some(Expr::call(
            Expr::var("kp"),
            name,
            vec![],
        ))));
    let unit = CompilationUnit::new("helper").class(ClassDecl::new("Acc").method(m));
    Interpreter::new(&unit)
        .call_static_style("Acc", "acc", vec![recv])
        .expect("accessor runs")
}

fn record(transcript: &mut Vec<String>, label: &str, value: &Value) {
    transcript.push(format!("{label}={value:?}"));
}

fn transcript(id: u8, unit: &CompilationUnit) -> Vec<String> {
    let mut i = Interpreter::new(unit);
    let mut t = Vec::new();
    match id {
        1 => {
            let cls = "SecureFileEncryptor";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let contents: Vec<u8> = (0..300).map(|b| (b % 251) as u8).collect();
            i.put_file("in.bin", contents.clone());
            i.call_static_style(
                cls,
                "encryptFile",
                vec![
                    Value::Str("in.bin".into()),
                    Value::Str("ct.bin".into()),
                    key.clone(),
                ],
            )
            .unwrap();
            t.push(format!("ct={:?}", i.file("ct.bin").unwrap()));
            i.call_static_style(
                cls,
                "decryptFile",
                vec![
                    Value::Str("ct.bin".into()),
                    Value::Str("out.bin".into()),
                    key,
                ],
            )
            .unwrap();
            let out = i.file("out.bin").unwrap();
            assert_eq!(out, contents);
            t.push(format!("pt={out:?}"));
        }
        2 => {
            let cls = "SecureStringEncryptor";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::Str("differential secret".into()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_str().unwrap(), "differential secret");
            record(&mut t, "pt", &pt);
        }
        3 => {
            let cls = "SecureByteArrayEncryptor";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let data = b"byte array payload".to_vec();
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::bytes(data.clone()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_bytes().unwrap(), data);
            record(&mut t, "pt", &pt);
        }
        4 => {
            let cls = "SecureSymmetricEncryptor";
            let key = i.call_static_style(cls, "generateKey", vec![]).unwrap();
            record(&mut t, "key", &key);
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::bytes(b"symmetric".to_vec()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_bytes().unwrap(), b"symmetric");
            record(&mut t, "pt", &pt);
        }
        5 => {
            let cls = "HybridFileEncryptor";
            i.put_file("report.txt", b"quarterly numbers".to_vec());
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let session = i
                .call_static_style(cls, "generateSessionKey", vec![])
                .unwrap();
            record(&mut t, "session", &session);
            i.call_static_style(
                cls,
                "encryptFile",
                vec![
                    Value::Str("report.txt".into()),
                    Value::Str("report.enc".into()),
                    session.clone(),
                ],
            )
            .unwrap();
            t.push(format!("ct={:?}", i.file("report.enc").unwrap()));
            let wrapped = i
                .call_static_style(cls, "wrapSessionKey", vec![session, public])
                .unwrap();
            record(&mut t, "wrapped", &wrapped);
            let recovered = i
                .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
                .unwrap();
            i.call_static_style(
                cls,
                "decryptFile",
                vec![
                    Value::Str("report.enc".into()),
                    Value::Str("report.out".into()),
                    recovered,
                ],
            )
            .unwrap();
            let out = i.file("report.out").unwrap();
            assert_eq!(out, b"quarterly numbers");
            t.push(format!("pt={out:?}"));
        }
        6 => {
            let cls = "HybridStringEncryptor";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let session = i
                .call_static_style(cls, "generateSessionKey", vec![])
                .unwrap();
            record(&mut t, "session", &session);
            let ct = i
                .call_static_style(
                    cls,
                    "encryptData",
                    vec![Value::Str("hybrid message".into()), session.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let wrapped = i
                .call_static_style(cls, "wrapSessionKey", vec![session, public])
                .unwrap();
            record(&mut t, "wrapped", &wrapped);
            let recovered = i
                .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
                .unwrap();
            let pt = i
                .call_static_style(cls, "decryptData", vec![ct, recovered])
                .unwrap();
            assert_eq!(pt.as_str().unwrap(), "hybrid message");
            record(&mut t, "pt", &pt);
        }
        7 => {
            let cls = "HybridByteArrayEncryptor";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let session = i
                .call_static_style(cls, "generateSessionKey", vec![])
                .unwrap();
            record(&mut t, "session", &session);
            let data = b"hybrid byte payload".to_vec();
            let ct = i
                .call_static_style(
                    cls,
                    "encryptData",
                    vec![Value::bytes(data.clone()), session.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let wrapped = i
                .call_static_style(cls, "wrapSessionKey", vec![session, public])
                .unwrap();
            record(&mut t, "wrapped", &wrapped);
            let recovered = i
                .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
                .unwrap();
            let pt = i
                .call_static_style(cls, "decryptData", vec![ct, recovered])
                .unwrap();
            assert_eq!(pt.as_bytes().unwrap(), data);
            record(&mut t, "pt", &pt);
        }
        8 => {
            let cls = "SecureAsymmetricEncryptor";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let ct = i
                .call_static_style(cls, "encrypt", vec![Value::Str("to bob".into()), public])
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i
                .call_static_style(cls, "decrypt", vec![ct, private])
                .unwrap();
            assert_eq!(pt.as_str().unwrap(), "to bob");
            record(&mut t, "pt", &pt);
        }
        9 => {
            let cls = "SecurePasswordStore";
            let salt = i.call_static_style(cls, "createSalt", vec![]).unwrap();
            record(&mut t, "salt", &salt);
            let hash = i
                .call_static_style(
                    cls,
                    "hashPassword",
                    vec![Value::chars("pass".chars().collect()), salt.clone()],
                )
                .unwrap();
            record(&mut t, "hash", &hash);
            let ok = i
                .call_static_style(
                    cls,
                    "verifyPassword",
                    vec![
                        Value::chars("pass".chars().collect()),
                        salt.clone(),
                        hash.clone(),
                    ],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "accepts", &ok);
            let bad = i
                .call_static_style(
                    cls,
                    "verifyPassword",
                    vec![Value::chars("wrong".chars().collect()), salt, hash],
                )
                .unwrap();
            assert!(!bad.as_bool().unwrap());
            record(&mut t, "rejects", &bad);
        }
        10 => {
            let cls = "SecureSigner";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let sig = i
                .call_static_style(cls, "sign", vec![Value::Str("contract".into()), private])
                .unwrap();
            record(&mut t, "sig", &sig);
            let ok = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::Str("contract".into()), sig.clone(), public.clone()],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "verifies", &ok);
            let tampered = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::Str("contract v2".into()), sig, public],
                )
                .unwrap();
            assert!(!tampered.as_bool().unwrap());
            record(&mut t, "rejects_tamper", &tampered);
        }
        11 => {
            let h = i
                .call_static_style("SecureHasher", "hash", vec![Value::Str("x".into())])
                .unwrap();
            assert_eq!(h.as_bytes().unwrap().len(), 32);
            record(&mut t, "hash", &h);
        }
        other => panic!("no interpreter driver for use case {other}"),
    }
    t
}
