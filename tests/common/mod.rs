//! Shared interpreter drivers for the integration suites: one driver
//! per catalogued use case, each running the generated class's full
//! protocol on the simulated JCA provider and rendering every
//! observable output into a transcript. The simulated `SecureRandom`
//! is deterministic, so transcripts are byte-reproducible across
//! interpreter instances.

use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::ast::{ClassDecl, CompilationUnit, Expr, JavaType, MethodDecl, Stmt};

fn key_pair_accessor(recv: Value, name: &str) -> Value {
    let m = MethodDecl::new("acc", JavaType::class("java.lang.Object"))
        .param(JavaType::class("java.security.KeyPair"), "kp")
        .statement(Stmt::Return(Some(Expr::call(
            Expr::var("kp"),
            name,
            vec![],
        ))));
    let unit = CompilationUnit::new("helper").class(ClassDecl::new("Acc").method(m));
    Interpreter::new(&unit)
        .call_static_style("Acc", "acc", vec![recv])
        .expect("accessor runs")
}

fn record(transcript: &mut Vec<String>, label: &str, value: &Value) {
    transcript.push(format!("{label}={value:?}"));
}

pub fn transcript(id: u8, unit: &CompilationUnit) -> Vec<String> {
    let mut i = Interpreter::new(unit);
    let mut t = Vec::new();
    match id {
        1 => {
            let cls = "SecureFileEncryptor";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let contents: Vec<u8> = (0..300).map(|b| (b % 251) as u8).collect();
            i.put_file("in.bin", contents.clone());
            i.call_static_style(
                cls,
                "encryptFile",
                vec![
                    Value::Str("in.bin".into()),
                    Value::Str("ct.bin".into()),
                    key.clone(),
                ],
            )
            .unwrap();
            t.push(format!("ct={:?}", i.file("ct.bin").unwrap()));
            i.call_static_style(
                cls,
                "decryptFile",
                vec![
                    Value::Str("ct.bin".into()),
                    Value::Str("out.bin".into()),
                    key,
                ],
            )
            .unwrap();
            let out = i.file("out.bin").unwrap();
            assert_eq!(out, contents);
            t.push(format!("pt={out:?}"));
        }
        2 => {
            let cls = "SecureStringEncryptor";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::Str("differential secret".into()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_str().unwrap(), "differential secret");
            record(&mut t, "pt", &pt);
        }
        3 => {
            let cls = "SecureByteArrayEncryptor";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let data = b"byte array payload".to_vec();
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::bytes(data.clone()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_bytes().unwrap(), data);
            record(&mut t, "pt", &pt);
        }
        4 => {
            let cls = "SecureSymmetricEncryptor";
            let key = i.call_static_style(cls, "generateKey", vec![]).unwrap();
            record(&mut t, "key", &key);
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::bytes(b"symmetric".to_vec()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_bytes().unwrap(), b"symmetric");
            record(&mut t, "pt", &pt);
        }
        5 => {
            let cls = "HybridFileEncryptor";
            i.put_file("report.txt", b"quarterly numbers".to_vec());
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let session = i
                .call_static_style(cls, "generateSessionKey", vec![])
                .unwrap();
            record(&mut t, "session", &session);
            i.call_static_style(
                cls,
                "encryptFile",
                vec![
                    Value::Str("report.txt".into()),
                    Value::Str("report.enc".into()),
                    session.clone(),
                ],
            )
            .unwrap();
            t.push(format!("ct={:?}", i.file("report.enc").unwrap()));
            let wrapped = i
                .call_static_style(cls, "wrapSessionKey", vec![session, public])
                .unwrap();
            record(&mut t, "wrapped", &wrapped);
            let recovered = i
                .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
                .unwrap();
            i.call_static_style(
                cls,
                "decryptFile",
                vec![
                    Value::Str("report.enc".into()),
                    Value::Str("report.out".into()),
                    recovered,
                ],
            )
            .unwrap();
            let out = i.file("report.out").unwrap();
            assert_eq!(out, b"quarterly numbers");
            t.push(format!("pt={out:?}"));
        }
        6 => {
            let cls = "HybridStringEncryptor";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let session = i
                .call_static_style(cls, "generateSessionKey", vec![])
                .unwrap();
            record(&mut t, "session", &session);
            let ct = i
                .call_static_style(
                    cls,
                    "encryptData",
                    vec![Value::Str("hybrid message".into()), session.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let wrapped = i
                .call_static_style(cls, "wrapSessionKey", vec![session, public])
                .unwrap();
            record(&mut t, "wrapped", &wrapped);
            let recovered = i
                .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
                .unwrap();
            let pt = i
                .call_static_style(cls, "decryptData", vec![ct, recovered])
                .unwrap();
            assert_eq!(pt.as_str().unwrap(), "hybrid message");
            record(&mut t, "pt", &pt);
        }
        7 => {
            let cls = "HybridByteArrayEncryptor";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let session = i
                .call_static_style(cls, "generateSessionKey", vec![])
                .unwrap();
            record(&mut t, "session", &session);
            let data = b"hybrid byte payload".to_vec();
            let ct = i
                .call_static_style(
                    cls,
                    "encryptData",
                    vec![Value::bytes(data.clone()), session.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let wrapped = i
                .call_static_style(cls, "wrapSessionKey", vec![session, public])
                .unwrap();
            record(&mut t, "wrapped", &wrapped);
            let recovered = i
                .call_static_style(cls, "unwrapSessionKey", vec![wrapped, private])
                .unwrap();
            let pt = i
                .call_static_style(cls, "decryptData", vec![ct, recovered])
                .unwrap();
            assert_eq!(pt.as_bytes().unwrap(), data);
            record(&mut t, "pt", &pt);
        }
        8 => {
            let cls = "SecureAsymmetricEncryptor";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let ct = i
                .call_static_style(cls, "encrypt", vec![Value::Str("to bob".into()), public])
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i
                .call_static_style(cls, "decrypt", vec![ct, private])
                .unwrap();
            assert_eq!(pt.as_str().unwrap(), "to bob");
            record(&mut t, "pt", &pt);
        }
        9 => {
            let cls = "SecurePasswordStore";
            let salt = i.call_static_style(cls, "createSalt", vec![]).unwrap();
            record(&mut t, "salt", &salt);
            let hash = i
                .call_static_style(
                    cls,
                    "hashPassword",
                    vec![Value::chars("pass".chars().collect()), salt.clone()],
                )
                .unwrap();
            record(&mut t, "hash", &hash);
            let ok = i
                .call_static_style(
                    cls,
                    "verifyPassword",
                    vec![
                        Value::chars("pass".chars().collect()),
                        salt.clone(),
                        hash.clone(),
                    ],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "accepts", &ok);
            let bad = i
                .call_static_style(
                    cls,
                    "verifyPassword",
                    vec![Value::chars("wrong".chars().collect()), salt, hash],
                )
                .unwrap();
            assert!(!bad.as_bool().unwrap());
            record(&mut t, "rejects", &bad);
        }
        10 => {
            let cls = "SecureSigner";
            let kp = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let public = key_pair_accessor(kp.clone(), "getPublic");
            let private = key_pair_accessor(kp, "getPrivate");
            let sig = i
                .call_static_style(cls, "sign", vec![Value::Str("contract".into()), private])
                .unwrap();
            record(&mut t, "sig", &sig);
            let ok = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::Str("contract".into()), sig.clone(), public.clone()],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "verifies", &ok);
            let tampered = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::Str("contract v2".into()), sig, public],
                )
                .unwrap();
            assert!(!tampered.as_bool().unwrap());
            record(&mut t, "rejects_tamper", &tampered);
        }
        11 => {
            let h = i
                .call_static_style("SecureHasher", "hash", vec![Value::Str("x".into())])
                .unwrap();
            assert_eq!(h.as_bytes().unwrap().len(), 32);
            record(&mut t, "hash", &h);
        }
        12 | 13 | 14 | 16 => {
            // The byte-array AEAD/stream family shares one protocol:
            // generateKey, seal, open.
            let cls = match id {
                12 => "AuthenticatedEncryptor",
                13 => "DeterministicAeadEncryptor",
                14 => "ChaChaPolyEncryptor",
                _ => "CtrStreamEncryptor",
            };
            let key = i.call_static_style(cls, "generateKey", vec![]).unwrap();
            record(&mut t, "key", &key);
            let sealed = i
                .call_static_style(
                    cls,
                    "seal",
                    vec![Value::bytes(b"aead payload".to_vec()), key.clone()],
                )
                .unwrap();
            record(&mut t, "sealed", &sealed);
            let opened = i.call_static_style(cls, "open", vec![sealed, key]).unwrap();
            assert_eq!(opened.as_bytes().unwrap(), b"aead payload");
            record(&mut t, "opened", &opened);
        }
        15 => {
            let cls = "ChaChaPolyStringEncryptor";
            let key = i.call_static_style(cls, "generateKey", vec![]).unwrap();
            record(&mut t, "key", &key);
            let sealed = i
                .call_static_style(
                    cls,
                    "sealText",
                    vec![Value::Str("string payload".into()), key.clone()],
                )
                .unwrap();
            record(&mut t, "sealed", &sealed);
            let opened = i
                .call_static_style(cls, "openText", vec![sealed, key])
                .unwrap();
            assert_eq!(opened.as_str().unwrap(), "string payload");
            record(&mut t, "opened", &opened);
        }
        17 | 18 => {
            let cls = if id == 17 {
                "DhKeyAgreement"
            } else {
                "EcdhKeyAgreement"
            };
            let a = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let b = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let a_priv = key_pair_accessor(a.clone(), "getPrivate");
            let a_pub = key_pair_accessor(a, "getPublic");
            let b_priv = key_pair_accessor(b.clone(), "getPrivate");
            let b_pub = key_pair_accessor(b, "getPublic");
            let s1 = i
                .call_static_style(cls, "deriveSecret", vec![a_priv, b_pub])
                .unwrap();
            let s2 = i
                .call_static_style(cls, "deriveSecret", vec![b_priv, a_pub])
                .unwrap();
            assert_eq!(s1.as_bytes().unwrap(), s2.as_bytes().unwrap());
            record(&mut t, "secret", &s1);
        }
        19 | 20 => {
            let cls = if id == 19 {
                "DhSessionEncryptor"
            } else {
                "EcdhSessionEncryptor"
            };
            let a = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let b = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let a_priv = key_pair_accessor(a.clone(), "getPrivate");
            let a_pub = key_pair_accessor(a, "getPublic");
            let b_priv = key_pair_accessor(b.clone(), "getPrivate");
            let b_pub = key_pair_accessor(b, "getPublic");
            let salt = i.call_static_style(cls, "generateSalt", vec![]).unwrap();
            record(&mut t, "salt", &salt);
            let k1 = i
                .call_static_style(cls, "deriveSessionKey", vec![a_priv, b_pub, salt.clone()])
                .unwrap();
            let k2 = i
                .call_static_style(cls, "deriveSessionKey", vec![b_priv, a_pub, salt])
                .unwrap();
            let sealed = i
                .call_static_style(cls, "seal", vec![Value::bytes(b"session".to_vec()), k1])
                .unwrap();
            record(&mut t, "sealed", &sealed);
            let opened = i.call_static_style(cls, "open", vec![sealed, k2]).unwrap();
            assert_eq!(opened.as_bytes().unwrap(), b"session");
            record(&mut t, "opened", &opened);
        }
        21 => {
            let cls = "AgreedMacAuthenticator";
            let a = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let b = i.call_static_style(cls, "generateKeyPair", vec![]).unwrap();
            let a_priv = key_pair_accessor(a.clone(), "getPrivate");
            let a_pub = key_pair_accessor(a, "getPublic");
            let b_priv = key_pair_accessor(b.clone(), "getPrivate");
            let b_pub = key_pair_accessor(b, "getPublic");
            let salt = i.call_static_style(cls, "generateSalt", vec![]).unwrap();
            let k1 = i
                .call_static_style(cls, "deriveMacKey", vec![a_priv, b_pub, salt.clone()])
                .unwrap();
            let k2 = i
                .call_static_style(cls, "deriveMacKey", vec![b_priv, a_pub, salt])
                .unwrap();
            let t1 = i
                .call_static_style(
                    cls,
                    "authenticate",
                    vec![Value::bytes(b"channel".to_vec()), k1],
                )
                .unwrap();
            let t2 = i
                .call_static_style(
                    cls,
                    "authenticate",
                    vec![Value::bytes(b"channel".to_vec()), k2],
                )
                .unwrap();
            assert_eq!(t1.as_bytes().unwrap(), t2.as_bytes().unwrap());
            record(&mut t, "tag", &t1);
        }
        22 => {
            let cls = "HmacTokenMinter";
            let key = i.call_static_style(cls, "generateKey", vec![]).unwrap();
            record(&mut t, "key", &key);
            let tag = i
                .call_static_style(
                    cls,
                    "mint",
                    vec![Value::bytes(b"claim".to_vec()), key.clone()],
                )
                .unwrap();
            record(&mut t, "tag", &tag);
            let ok = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::bytes(b"claim".to_vec()), tag, key],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "verifies", &ok);
        }
        23 => {
            let cls = "HkdfSubkeyDeriver";
            let salt = i.call_static_style(cls, "generateSalt", vec![]).unwrap();
            record(&mut t, "salt", &salt);
            let subkey = i
                .call_static_style(cls, "expandKey", vec![salt, Value::bytes(b"ctx".to_vec())])
                .unwrap();
            assert_eq!(subkey.as_bytes().unwrap().len(), 32);
            record(&mut t, "subkey", &subkey);
        }
        24 => {
            let cls = "DerivedMacTokenMinter";
            let salt = i.call_static_style(cls, "generateSalt", vec![]).unwrap();
            record(&mut t, "salt", &salt);
            let key = i
                .call_static_style(
                    cls,
                    "deriveMacKey",
                    vec![Value::bytes(b"ikm".to_vec()), salt],
                )
                .unwrap();
            let tag = i
                .call_static_style(
                    cls,
                    "mint",
                    vec![Value::bytes(b"claim".to_vec()), key.clone()],
                )
                .unwrap();
            record(&mut t, "tag", &tag);
            let ok = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::bytes(b"claim".to_vec()), tag, key],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "verifies", &ok);
        }
        25 => {
            let cls = "PasswordMacTokenMinter";
            let key = i
                .call_static_style(cls, "getKey", vec![Value::chars("pw".chars().collect())])
                .unwrap();
            record(&mut t, "key", &key);
            let tag = i
                .call_static_style(
                    cls,
                    "mint",
                    vec![Value::Str("session:1".into()), key.clone()],
                )
                .unwrap();
            record(&mut t, "tag", &tag);
            let ok = i
                .call_static_style(
                    cls,
                    "verify",
                    vec![Value::Str("session:1".into()), tag, key],
                )
                .unwrap();
            assert!(ok.as_bool().unwrap());
            record(&mut t, "verifies", &ok);
        }
        26 => {
            let cls = "KeyTransportCodec";
            let material = i.call_static_style(cls, "exportFreshKey", vec![]).unwrap();
            record(&mut t, "material", &material);
            let key = i
                .call_static_style(cls, "importKey", vec![material])
                .unwrap();
            let ct = i
                .call_static_style(
                    cls,
                    "encrypt",
                    vec![Value::bytes(b"transported".to_vec()), key.clone()],
                )
                .unwrap();
            record(&mut t, "ct", &ct);
            let pt = i.call_static_style(cls, "decrypt", vec![ct, key]).unwrap();
            assert_eq!(pt.as_bytes().unwrap(), b"transported");
            record(&mut t, "pt", &pt);
        }
        other => panic!("no interpreter driver for use case {other}"),
    }
    t
}
