//! End-to-end CLI contract tests over the real binary: per-class exit
//! codes, the strict `--trace` flag normalization across every
//! subcommand, and the daemon boot → serve-check → shutdown round trip.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_cognicryptgen");

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("binary runs")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("no signal death")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cognicryptgen-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn zero_threads_is_a_usage_error_with_exit_code_2() {
    let dir = scratch("batch-zero");
    let out = run(&["batch", dir.to_str().unwrap(), "0"]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid thread count"));

    // The same guard covers the daemon config.
    let out = run(&["serve", "--threads", "0"]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("at least 1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_failures_all_exit_2() {
    assert_eq!(exit_code(&run(&[])), 2);
    assert_eq!(exit_code(&run(&["no-such-command"])), 2);
    assert_eq!(exit_code(&run(&["generate"])), 2);
    assert_eq!(exit_code(&run(&["generate", "no-such-use-case"])), 2);
    assert_eq!(exit_code(&run(&["serve", "--no-such-flag"])), 2);
    assert_eq!(exit_code(&run(&["serve-check"])), 2);
}

#[test]
fn trace_flag_is_rejected_uniformly_where_unsupported() {
    // Subcommands without trace support must say so — wherever the
    // flag sits in the argument list.
    for args in [
        vec!["list", "--trace", "/tmp/t.json"],
        vec!["--trace", "/tmp/t.json", "list"],
        vec!["template", "1", "--trace", "/tmp/t.json"],
        vec!["rules", "--trace", "/tmp/t.json"],
        vec!["analyze", "--trace", "/tmp/t.json"],
        vec!["oldgen", "--trace", "/tmp/t.json"],
        vec!["report-check", "--trace", "/tmp/t.json"],
        vec!["trace-check", "--trace", "/tmp/t.json"],
        vec!["fuzz", "--trace", "/tmp/t.json"],
        vec!["serve", "--trace", "/tmp/t.json"],
        vec!["serve-check", "--trace", "/tmp/t.json"],
    ] {
        let out = run(&args);
        assert_eq!(
            exit_code(&out),
            2,
            "args {args:?}, stderr: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains("--trace is not supported"),
            "args {args:?}, stderr: {}",
            stderr(&out)
        );
    }
}

#[test]
fn trace_flag_normalization_is_strict() {
    // `--trace` without a path.
    let out = run(&["generate", "1", "--trace"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr(&out).contains("--trace requires a file path"));

    // A duplicated `--trace` used to survive as a stray positional
    // argument; now it is a hard usage error.
    let out = run(&[
        "generate",
        "1",
        "--trace",
        "/tmp/a.json",
        "--trace",
        "/tmp/b.json",
    ]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr(&out).contains("--trace given more than once"));
}

#[test]
fn serve_boots_passes_serve_check_and_shuts_down_cleanly() {
    let mut daemon = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");

    // The daemon announces its bound endpoint as a parseable line.
    let stdout = daemon.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines
        .next()
        .expect("daemon prints its endpoint")
        .expect("readable stdout");
    let addr = announce
        .strip_prefix("listening http=")
        .unwrap_or_else(|| panic!("unexpected announce line {announce:?}"))
        .to_owned();

    // serve-check probes the daemon end to end and, as its last step,
    // asks it to shut down.
    let check = run(&["serve-check", &addr]);
    assert_eq!(
        exit_code(&check),
        0,
        "serve-check failed:\n{}\n{}",
        String::from_utf8_lossy(&check.stdout),
        stderr(&check)
    );

    let status = daemon.wait().expect("daemon exits after shutdown");
    assert_eq!(status.code(), Some(0), "daemon must exit cleanly");
}

#[test]
fn serve_check_against_nothing_is_a_typed_failure() {
    // Port 9 (discard) on localhost is practically never bound; the
    // probe must fail with the invalid-input code, not hang or panic.
    let out = run(&["serve-check", "127.0.0.1:9"]);
    assert_eq!(exit_code(&out), 6, "stderr: {}", stderr(&out));
}
