//! The generated `templateUsage` showcase method is not documentation —
//! it is runnable code (the paper's artifact lets users call it from
//! `main`). These tests execute it through the interpreter.

use cognicryptgen::core::generate;
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::usecases;

#[test]
fn hashing_template_usage_executes() {
    let generated = generate(
        &usecases::hashing::hashing_strings(),
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .expect("generates");
    // templateUsage hoists the wrapper's unmatched parameters; for the
    // hasher that is the input string.
    let usage = generated
        .unit
        .find_class("OutputClass")
        .and_then(|c| c.find_method("templateUsage"))
        .expect("showcase method present");
    assert_eq!(usage.params.len(), 1);
    let mut interp = Interpreter::new(&generated.unit);
    let out = interp
        .call_static_style(
            "OutputClass",
            "templateUsage",
            vec![Value::Str("abc".into())],
        )
        .expect("showcase runs");
    // templateUsage returns void; its body ran the full pipeline.
    assert!(matches!(out, Value::Null));
}

#[test]
fn password_template_usage_chains_results_by_type() {
    let generated = generate(
        &usecases::password::password_storage(),
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .expect("generates");
    let usage = generated
        .unit
        .find_class("OutputClass")
        .and_then(|c| c.find_method("templateUsage"))
        .expect("showcase method present");
    // createSalt produces the byte[] that hashPassword and verifyPassword
    // consume; only the char[] password (twice, deduplicated by name
    // allocation) and the expected hash remain as parameters.
    let mut interp = Interpreter::new(&generated.unit);
    let args: Vec<Value> = usage
        .params
        .iter()
        .map(|p| match &p.ty {
            t if *t == cognicryptgen::javamodel::ast::JavaType::char_array() => {
                Value::chars("pw".chars().collect())
            }
            t if *t == cognicryptgen::javamodel::ast::JavaType::byte_array() => {
                Value::bytes(vec![0u8; 16])
            }
            other => panic!("unexpected hoisted parameter type {other}"),
        })
        .collect();
    interp
        .call_static_style("OutputClass", "templateUsage", args)
        .expect("showcase runs");
}

#[test]
fn pbe_template_usage_reuses_the_derived_key() {
    let generated = generate(
        &usecases::pbe::pbe_byte_arrays(),
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .expect("generates");
    let usage = generated
        .unit
        .find_class("OutputClass")
        .and_then(|c| c.find_method("templateUsage"))
        .expect("showcase present");
    // getKey's SecretKey result must flow into encrypt/decrypt by type
    // matching, so no SecretKey parameter is hoisted.
    assert!(
        usage
            .params
            .iter()
            .all(|p| p.ty
                != cognicryptgen::javamodel::ast::JavaType::class("javax.crypto.SecretKey")),
        "{:?}",
        usage.params
    );
    let mut interp = Interpreter::new(&generated.unit);
    let args: Vec<Value> = usage
        .params
        .iter()
        .map(|p| match &p.ty {
            t if *t == cognicryptgen::javamodel::ast::JavaType::char_array() => {
                Value::chars("pw".chars().collect())
            }
            t if *t == cognicryptgen::javamodel::ast::JavaType::byte_array() => {
                Value::bytes(b"plaintext payload".to_vec())
            }
            other => panic!("unexpected hoisted parameter type {other}"),
        })
        .collect();
    interp
        .call_static_style("OutputClass", "templateUsage", args)
        .expect("showcase runs end to end");
}
