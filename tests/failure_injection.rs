//! Failure injection: broken rules and broken templates must produce
//! diagnostic errors, never silently insecure code.

use cognicryptgen::core::template::{CrySlCodeGenerator, Template, TemplateMethod};
use cognicryptgen::core::{generate, GenError};
use cognicryptgen::crysl::RuleSet;
use cognicryptgen::javamodel::ast::{Expr, JavaType, Stmt};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};

fn template_with(chain: cognicryptgen::core::template::GeneratorChain) -> Template {
    Template::new("p", "C").method(TemplateMethod::new("go", JavaType::Void).chain(chain))
}

#[test]
fn unknown_rule_in_chain() {
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("javax.crypto.DoesNotExist")
        .build();
    let err = generate(
        &template_with(chain),
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .unwrap_err();
    assert!(matches!(err, GenError::UnknownRule(_)), "{err}");
}

#[test]
fn binding_to_undeclared_rule_variable() {
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("java.security.MessageDigest")
        .add_parameter("data", "notAVariable")
        .build();
    let t = Template::new("p", "C").method(
        TemplateMethod::new("go", JavaType::Void)
            .param(JavaType::byte_array(), "data")
            .chain(chain),
    );
    let err = generate(
        &t,
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .unwrap_err();
    assert!(matches!(err, GenError::UnknownRuleVariable { .. }), "{err}");
}

#[test]
fn binding_to_undeclared_template_variable() {
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("java.security.MessageDigest")
        .add_parameter("ghost", "input")
        .build();
    let err = generate(
        &template_with(chain),
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .unwrap_err();
    assert_eq!(err, GenError::UnknownTemplateVariable("ghost".into()));
}

#[test]
fn rule_for_unmodelled_class() {
    let mut rules = RuleSet::new();
    rules
        .add_source("SPEC com.example.Unmodelled\nEVENTS e: doIt();\nORDER e")
        .unwrap();
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("com.example.Unmodelled")
        .build();
    let err = generate(&template_with(chain), &rules, &jca_type_table()).unwrap_err();
    assert_eq!(err, GenError::UnknownClass("com.example.Unmodelled".into()));
}

#[test]
fn instance_without_any_producer() {
    // A rule consisting only of instance methods, with no ctor, no
    // factory and no predicate link supplying `this`.
    let mut rules = RuleSet::new();
    rules
        .add_source("SPEC javax.crypto.SecretKey\nOBJECTS byte[] raw;\nEVENTS e: raw = getEncoded();\nORDER e")
        .unwrap();
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("javax.crypto.SecretKey")
        .build();
    let err = generate(&template_with(chain), &rules, &jca_type_table()).unwrap_err();
    assert!(matches!(err, GenError::UnresolvedInstance { .. }), "{err}");
}

#[test]
fn conflicting_template_bindings_filter_all_paths() {
    // Binding both the sign-only and verify-only objects of Signature
    // leaves no path that uses all bound objects.
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("java.security.Signature")
        .add_parameter("priv", "privKey")
        .add_parameter("pub", "pubKey")
        .add_parameter("data", "input")
        .build();
    let t = Template::new("p", "C").method(
        TemplateMethod::new("go", JavaType::Void)
            .param(JavaType::class("java.security.PrivateKey"), "priv")
            .param(JavaType::class("java.security.PublicKey"), "pub")
            .param(JavaType::byte_array(), "data")
            .chain(chain),
    );
    let err = generate(
        &t,
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .unwrap_err();
    assert!(matches!(err, GenError::NoViablePath { .. }), "{err}");
}

#[test]
fn synthetic_case_exercising_the_hoisting_fallback() {
    // MessageDigest without binding the input: no chain value provides
    // `input`, so the fallback hoists it into the wrapper signature —
    // the paper's compilability-over-completeness rule.
    let chain = CrySlCodeGenerator::get_instance()
        .consider_crysl_rule("java.security.MessageDigest")
        .add_return_object("digest")
        .build();
    let t = Template::new("p", "C").method(
        TemplateMethod::new("go", JavaType::byte_array())
            .pre(Stmt::decl_init(
                JavaType::byte_array(),
                "digest",
                Expr::null(),
            ))
            .chain(chain)
            .post(Stmt::Return(Some(Expr::var("digest")))),
    );
    let generated = generate(
        &t,
        &open(PackSource::Embedded).unwrap().rules,
        &jca_type_table(),
    )
    .unwrap();
    assert_eq!(generated.hoisted.len(), 1);
    assert_eq!(generated.hoisted[0].1, vec!["input".to_owned()]);
    // The hoisted parameter appears in the wrapper signature.
    assert!(
        generated.java_source.contains("go(byte[] input)"),
        "{}",
        generated.java_source
    );
}

#[test]
fn unsatisfiable_order_pattern() {
    // `a` followed by `a` again is fine; an ORDER referencing an event
    // label that only exists as an aggregate of nothing cannot be built.
    // Validation already rejects unknown labels, so test via RuleSet:
    let mut rules = RuleSet::new();
    let err = rules.add_source("SPEC a.B\nEVENTS e: f();\nORDER e, zz");
    assert!(err.is_err());
}

#[test]
fn broken_rule_sources_are_rejected() {
    let mut rules = RuleSet::new();
    // Unbalanced sections, missing SPEC, undeclared objects.
    assert!(rules.add_source("OBJECTS int x;").is_err());
    assert!(rules
        .add_source("SPEC a.B\nCONSTRAINTS ghost >= 1;")
        .is_err());
    assert!(rules
        .add_source("SPEC a.B\nEVENTS e: f(undeclared);")
        .is_err());
}

/// Failure injection against the live daemon: hostile requests
/// interleaved with well-formed ones from concurrent clients. The
/// isolation contract is that a hostile neighbour changes *nothing*
/// about a well-formed response — same status, same bytes — and every
/// hostile input gets a typed error, with zero panics over the run.
#[test]
fn hostile_traffic_is_isolated_from_concurrent_wellformed_responses() {
    use cognicryptgen::serve::{http, ServeConfig, Server};
    use devharness::json::Json;

    let engine = cognicryptgen::jca_engine().expect("shipped rules parse");
    let cases = cognicryptgen::usecases::all_use_cases();
    let expected: Vec<(u8, String)> = cases
        .iter()
        .map(|uc| {
            (
                uc.id,
                engine
                    .generate(&uc.template)
                    .expect("generates")
                    .java_source,
            )
        })
        .collect();

    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        uds_path: None,
        threads: 4,
        rules_path: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");
    let addr = handle.http_addr().expect("http bound").to_string();

    const ROUNDS: usize = 40;
    let addr_ref = addr.as_str();
    let expected_ref = expected.as_slice();
    std::thread::scope(|scope| {
        // Three hostile clients: unknown selectors, bad routes, rule
        // sources where a selector belongs. Every answer must be a
        // typed 4xx with an `error` class — never a 5xx panic.
        for seed in 0..3usize {
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    let (code, body) = match (seed + i) % 3 {
                        0 => http::request(addr_ref, "GET", "/generate/definitely-not-a-case", "")
                            .unwrap(),
                        1 => http::request(addr_ref, "GET", "/%2e%2e/%2e%2e/secret", "").unwrap(),
                        _ => http::request(
                            addr_ref,
                            "POST",
                            "/generate",
                            "SPEC a.B\nEVENTS e: f(undeclared);",
                        )
                        .unwrap(),
                    };
                    assert!(
                        (400..500).contains(&code),
                        "hostile input got status {code}: {body}"
                    );
                    let class = Json::parse(&body)
                        .ok()
                        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_owned))
                        .expect("typed error body");
                    assert_ne!(class, "panic", "hostile input panicked the daemon");
                }
            });
        }
        // Three well-formed clients riding the same daemon, checked
        // byte for byte against the one-shot engine.
        for seed in 0..3usize {
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    let (id, expected) = &expected_ref[(seed + i) % expected_ref.len()];
                    let (code, body) =
                        http::request(addr_ref, "GET", &format!("/generate/{id}"), "").unwrap();
                    assert_eq!(code, 200, "uc{id} failed beside hostile traffic");
                    assert_eq!(
                        &body, expected,
                        "uc{id} response perturbed by a hostile neighbour"
                    );
                }
            });
        }
    });

    // The daemon's own books must agree: zero panics, the hostile
    // volume all accounted as typed error classes.
    let (code, body) = http::request(&addr, "GET", "/loadz", "").unwrap();
    assert_eq!(code, 200);
    let snapshot = Json::parse(&body).expect("loadz is json");
    assert_eq!(
        snapshot.get("request_panics").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        snapshot.get("connection_panics").and_then(Json::as_u64),
        Some(0)
    );
    let errors = snapshot.get("errors").expect("error class map");
    let counted: u64 = ["usage", "not_found", "invalid", "protocol"]
        .iter()
        .filter_map(|class| errors.get(class).and_then(Json::as_u64))
        .sum();
    assert!(
        counted >= (3 * ROUNDS) as u64,
        "only {counted} typed errors for {} hostile requests",
        3 * ROUNDS
    );
    handle.shutdown();
}
