//! Telemetry suite: the `GenObserver` hook contract and the determinism
//! guarantees of the metrics registry.
//!
//! * Hook ordering — every generated template sees exactly one
//!   `span_enter`/`span_exit` pair per pipeline phase, in
//!   `Phase::ALL` order, never nested, with fine-grained events
//!   reported inside the phase that owns them.
//! * Metrics determinism — engine metrics (minus the
//!   scheduling-dependent `engine.batch.*` worker counters, the
//!   `order_cache.*` hit/miss split, which races benignly on the shared
//!   cache, and the `mem.*` allocation metrics, whose cold-engine
//!   values depend on that same race — `tests/memtrack_trace.rs` pins
//!   them down on a warmed engine) are identical across thread counts
//!   and seeded input shuffles; total cache traffic is identical
//!   everywhere.
//! * `PhaseTimings` — covers every unit of a batch with one span per
//!   phase.
//! * Builder — `GenEngine::builder()` validation.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cognicryptgen::core::engine::EngineBuildError;
use cognicryptgen::core::memtrack::AllocDelta;
use cognicryptgen::core::telemetry::{Event, GenObserver, Metric, Phase, PhaseTimings, Span};
use cognicryptgen::core::{GenEngine, Template};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::usecases::all_use_cases;
use devharness::rng::{RandomSource, Xoshiro256};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    Enter(String, Phase),
    Exit(String, Phase),
    /// Event kind name, recorded between the spans it arrived in. The
    /// payload is the batch input index for `BatchJob` events.
    Event(&'static str, Option<usize>),
}

/// Observer that records the hook sequence it sees.
#[derive(Default)]
struct Recorder {
    log: Mutex<Vec<Entry>>,
}

impl Recorder {
    fn take(&self) -> Vec<Entry> {
        std::mem::take(&mut self.log.lock().unwrap())
    }
}

impl GenObserver for Recorder {
    fn span_enter(&self, span: &Span<'_>) {
        self.log
            .lock()
            .unwrap()
            .push(Entry::Enter(span.unit.to_owned(), span.phase));
    }

    fn span_exit(&self, span: &Span<'_>, _elapsed: Duration, _alloc: AllocDelta) {
        self.log
            .lock()
            .unwrap()
            .push(Entry::Exit(span.unit.to_owned(), span.phase));
    }

    fn event(&self, event: &Event<'_>) {
        let (kind, index) = match event {
            Event::OrderCompiled { .. } => ("order_compiled", None),
            Event::PathSelected { .. } => ("path_selected", None),
            Event::ParamResolved { .. } => ("param_resolved", None),
            Event::ParamHoisted { .. } => ("param_hoisted", None),
            Event::BatchJob { index, .. } => ("batch_job", Some(*index)),
        };
        self.log.lock().unwrap().push(Entry::Event(kind, index));
    }
}

fn observed_engine() -> (GenEngine, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::default());
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(recorder.clone())
        .build()
        .expect("rules supplied");
    (engine, recorder)
}

/// Which phase an event kind must be reported from.
fn owning_phase(kind: &str) -> Phase {
    match kind {
        "order_compiled" | "path_selected" => Phase::Select,
        "param_resolved" | "param_hoisted" => Phase::Resolve,
        other => panic!("event `{other}` has no owning phase in a single generate call"),
    }
}

#[test]
fn one_span_pair_per_phase_in_pipeline_order_for_every_use_case() {
    let (engine, recorder) = observed_engine();
    for uc in all_use_cases() {
        engine.generate(&uc.template).expect("generates");
        let unit = uc.template.class_name.as_str();
        let log = recorder.take();

        let mut open: Option<Phase> = None;
        let mut pairs_seen = Vec::new();
        for entry in &log {
            match entry {
                Entry::Enter(u, p) => {
                    assert_eq!(u, unit, "uc{}: span for a foreign unit", uc.id);
                    assert_eq!(open, None, "uc{}: nested span {p} inside {open:?}", uc.id);
                    open = Some(*p);
                }
                Entry::Exit(u, p) => {
                    assert_eq!(u, unit, "uc{}: span for a foreign unit", uc.id);
                    assert_eq!(open, Some(*p), "uc{}: exit without matching enter", uc.id);
                    open = None;
                    pairs_seen.push(*p);
                }
                Entry::Event(kind, _) => {
                    let inside = open
                        .unwrap_or_else(|| panic!("uc{}: event `{kind}` outside any span", uc.id));
                    assert_eq!(
                        inside,
                        owning_phase(kind),
                        "uc{}: event `{kind}` reported from the wrong phase",
                        uc.id
                    );
                }
            }
        }
        assert_eq!(open, None, "uc{}: span left open", uc.id);
        assert_eq!(
            pairs_seen,
            Phase::ALL.to_vec(),
            "uc{}: exactly one pair per phase, in pipeline order",
            uc.id
        );

        // Selection and resolution really happened (the events exist).
        let kinds: Vec<&str> = log
            .iter()
            .filter_map(|e| match e {
                Entry::Event(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&"order_compiled"), "uc{}", uc.id);
        assert!(kinds.contains(&"path_selected"), "uc{}", uc.id);
        assert!(kinds.contains(&"param_resolved"), "uc{}", uc.id);
    }
}

#[test]
fn batch_jobs_are_reported_once_per_input_in_input_order() {
    let (engine, recorder) = observed_engine();
    let templates: Vec<Template> = all_use_cases().into_iter().map(|uc| uc.template).collect();
    let results = engine.generate_batch(&templates, 4);
    assert!(results.iter().all(Result::is_ok));
    let indices: Vec<usize> = recorder
        .take()
        .iter()
        .filter_map(|e| match e {
            Entry::Event("batch_job", Some(i)) => Some(*i),
            _ => None,
        })
        .collect();
    // The engine reports batch jobs after the join, in input order.
    assert_eq!(indices, (0..templates.len()).collect::<Vec<usize>>());
}

/// Engine metrics with the scheduling-dependent keys removed: the
/// per-worker job counters, the hit/miss split of the shared ORDER
/// cache (two workers can race a first lookup and both record a miss),
/// and the `mem.*` allocation metrics, since that same race changes how
/// much compilation work — and thus allocation — each cold run performs
/// (`tests/memtrack_trace.rs` asserts `mem.*` determinism on a warmed
/// engine, where no such race exists).
fn stable_metrics(engine: &GenEngine) -> BTreeMap<String, Metric> {
    engine
        .metrics()
        .snapshot()
        .into_iter()
        .filter(|(k, _)| {
            !k.starts_with("engine.batch.")
                && !k.starts_with("order_cache.")
                && !k.starts_with("mem.")
        })
        .collect()
}

fn cache_lookups(engine: &GenEngine) -> u64 {
    let m = engine.metrics();
    m.counter("order_cache.hits")
        + m.counter("order_cache.misses")
        + m.counter("order_cache.uncached")
}

#[test]
fn metrics_are_deterministic_across_thread_counts_and_shuffles() {
    let cases = all_use_cases();
    let templates: Vec<Template> = cases.iter().map(|uc| uc.template.clone()).collect();

    let run = |order: &[usize], threads: usize| {
        let engine = GenEngine::builder()
            .rules(open(PackSource::Embedded).expect("parses").rules)
            .type_table(jca_type_table())
            .build()
            .expect("rules supplied");
        let permuted: Vec<Template> = order.iter().map(|&i| templates[i].clone()).collect();
        let results = engine.generate_batch(&permuted, threads);
        assert!(results.iter().all(Result::is_ok));
        (stable_metrics(&engine), cache_lookups(&engine))
    };

    let identity: Vec<usize> = (0..templates.len()).collect();
    let (reference, reference_lookups) = run(&identity, 1);
    assert!(!reference.is_empty());
    assert!(reference_lookups > 0);
    // Phase span counters: one span per phase per template.
    for phase in Phase::ALL {
        assert_eq!(
            reference.get(&format!("phase.{}.spans", phase.name())),
            Some(&Metric::Counter(templates.len() as u64)),
            "phase {phase} span counter"
        );
    }

    let mut rng = Xoshiro256::seed_from_u64(0x7E1E_AE7E);
    for threads in [1usize, 2, 8] {
        for _shuffle in 0..3 {
            let mut order = identity.clone();
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let (metrics, lookups) = run(&order, threads);
            assert_eq!(
                metrics, reference,
                "metrics diverged at {threads} threads with order {order:?}"
            );
            assert_eq!(
                lookups, reference_lookups,
                "cache lookup total diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn phase_timings_cover_every_unit_of_a_batch() {
    let timings = Arc::new(PhaseTimings::new());
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(timings.clone())
        .build()
        .expect("rules supplied");
    let cases = all_use_cases();
    let templates: Vec<Template> = cases.iter().map(|uc| uc.template.clone()).collect();
    let results = engine.generate_batch(&templates, 4);
    assert!(results.iter().all(Result::is_ok));

    let snapshot = timings.snapshot();
    assert_eq!(snapshot.len(), cases.len(), "one timing row per use case");
    let mut total = Duration::ZERO;
    for uc in &cases {
        let unit = timings
            .unit(&uc.template.class_name)
            .unwrap_or_else(|| panic!("no timings for {}", uc.template.class_name));
        for phase in Phase::ALL {
            assert_eq!(
                unit.phase(phase).spans,
                1,
                "{} phase {phase} span count",
                uc.template.class_name
            );
        }
        total += unit.total();
    }
    assert!(total > Duration::ZERO, "the batch took measurable time");

    timings.reset();
    assert!(timings.snapshot().is_empty(), "reset clears the collector");
}

#[test]
fn builder_requires_rules_and_defaults_the_rest() {
    match GenEngine::builder().build() {
        Err(EngineBuildError::MissingRules) => {}
        other => panic!("expected MissingRules, got {other:?}"),
    }
    let e = EngineBuildError::MissingRules;
    assert!(e.to_string().contains("rule"), "{e}");

    // Type table, threads and observer all default: the engine works.
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .build()
        .expect("rules supplied");
    let uc = all_use_cases().remove(0);
    assert!(engine.generate(&uc.template).is_ok());
}
