//! One test per misuse class of the analyzer, exercised through Java
//! source text (parsed by the Java-subset parser) — the workflow of a
//! developer pointing the tool at a `.java` file.

use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::javamodel::parser::parse_java;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions, MisuseKind};

fn kinds_of(source: &str) -> Vec<MisuseKind> {
    let table = jca_type_table();
    let unit = parse_java(source, &table).expect("test program parses");
    analyze_unit(
        &unit,
        &open(PackSource::Embedded).unwrap().rules,
        &table,
        AnalyzerOptions::default(),
    )
    .into_iter()
    .map(|m| m.kind)
    .collect()
}

#[test]
fn typestate_error_cipher_dofinal_before_init() {
    let kinds = kinds_of(
        r#"
public class App {
    public byte[] broken(byte[] data) {
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        return cipher.doFinal(data);
    }
}
"#,
    );
    assert!(kinds.contains(&MisuseKind::TypestateError), "{kinds:?}");
}

#[test]
fn incomplete_operation_keygenerator_never_generates() {
    let kinds = kinds_of(
        r#"
public class App {
    public void broken() {
        KeyGenerator kg = KeyGenerator.getInstance("AES");
        kg.init(128);
    }
}
"#,
    );
    assert!(
        kinds.contains(&MisuseKind::IncompleteOperation),
        "{kinds:?}"
    );
}

#[test]
fn constraint_error_small_key_size() {
    let kinds = kinds_of(
        r#"
public class App {
    public SecretKey broken() {
        KeyGenerator kg = KeyGenerator.getInstance("AES");
        kg.init(64);
        return kg.generateKey();
    }
}
"#,
    );
    assert!(kinds.contains(&MisuseKind::ConstraintError), "{kinds:?}");
}

#[test]
fn required_predicate_error_unrandomized_iv() {
    let kinds = kinds_of(
        r#"
public class App {
    public byte[] broken(byte[] data, SecretKey key) {
        byte[] iv = new byte[] {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
        IvParameterSpec spec = new IvParameterSpec(iv);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(1, key, spec);
        return cipher.doFinal(data);
    }
}
"#,
    );
    assert!(
        kinds.contains(&MisuseKind::RequiredPredicateError),
        "{kinds:?}"
    );
}

#[test]
fn forbidden_method_error_single_arg_pbekeyspec() {
    // The rule forbids the constructor that takes only the password.
    // Our modelled class has the overload, and the analyzer flags it.
    let kinds = kinds_of(
        r#"
public class App {
    public void broken(char[] pwd) {
        PBEKeySpec spec = new PBEKeySpec(pwd);
        spec.clearPassword();
    }
}
"#,
    );
    assert!(
        kinds.contains(&MisuseKind::ForbiddenMethodError),
        "{kinds:?}"
    );
}

#[test]
fn secure_program_from_text_is_clean() {
    let kinds = kinds_of(
        r#"
public class App {
    public byte[] fine(byte[] data, SecretKey key) {
        byte[] iv = new byte[16];
        SecureRandom random = SecureRandom.getInstance("SHA1PRNG");
        random.nextBytes(iv);
        IvParameterSpec spec = new IvParameterSpec(iv);
        Cipher cipher = Cipher.getInstance("AES/GCM/NoPadding");
        cipher.init(1, key, spec);
        return cipher.doFinal(data);
    }
}
"#,
    );
    assert!(kinds.is_empty(), "{kinds:?}");
}

#[test]
fn negates_revokes_the_spec_between_clear_and_use() {
    // Using the spec *after* clearPassword: the speccedKey predicate was
    // negated, so generateSecret's requirement fails.
    let kinds = kinds_of(
        r#"
public class App {
    public SecretKey broken(char[] pwd, byte[] salt) {
        PBEKeySpec spec = new PBEKeySpec(pwd, salt, 10000, 128);
        spec.clearPassword();
        SecretKeyFactory skf = SecretKeyFactory.getInstance("PBKDF2WithHmacSHA256");
        return skf.generateSecret(spec);
    }
}
"#,
    );
    assert!(
        kinds.contains(&MisuseKind::RequiredPredicateError),
        "{kinds:?}"
    );
}

#[test]
fn strict_mode_distrusts_parameters() {
    // With trust_parameters off, even an IV received as a method
    // parameter must demonstrably carry `randomized` — the conservative
    // reading of REQUIRES.
    let table = jca_type_table();
    let unit = parse_java(
        r#"
public class App {
    public byte[] f(byte[] data, byte[] iv, SecretKey key) {
        IvParameterSpec spec = new IvParameterSpec(iv);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(1, key, spec);
        return cipher.doFinal(data);
    }
}
"#,
        &table,
    )
    .expect("parses");
    let lenient = analyze_unit(
        &unit,
        &open(PackSource::Embedded).unwrap().rules,
        &table,
        AnalyzerOptions::default(),
    );
    assert!(lenient.is_empty(), "{lenient:?}");
    let strict = analyze_unit(
        &unit,
        &open(PackSource::Embedded).unwrap().rules,
        &table,
        AnalyzerOptions {
            trust_parameters: false,
        },
    );
    assert!(
        strict
            .iter()
            .any(|m| m.kind == MisuseKind::RequiredPredicateError),
        "{strict:?}"
    );
}

#[test]
fn each_misuse_reported_once() {
    // The same violated constraint must not be reported repeatedly.
    let table = jca_type_table();
    let unit = parse_java(
        r#"
public class App {
    public byte[] broken(byte[] data) {
        MessageDigest md = MessageDigest.getInstance("SHA-1");
        md.update(data);
        return md.digest();
    }
}
"#,
        &table,
    )
    .expect("parses");
    let misuses = analyze_unit(
        &unit,
        &open(PackSource::Embedded).unwrap().rules,
        &table,
        AnalyzerOptions::default(),
    );
    let constraint_errors = misuses
        .iter()
        .filter(|m| m.kind == MisuseKind::ConstraintError)
        .count();
    assert_eq!(constraint_errors, 1, "{misuses:?}");
}
