//! RQ1 (paper Table 1): CogniCryptGEN implements all eleven common
//! cryptographic use cases; none of the generated snippets causes
//! compiler errors or misuses reported by the static analyzer.

use cognicryptgen::core::generate;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::javamodel::printer::count_loc;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases::all_use_cases;

#[test]
fn all_eleven_use_cases_generate() {
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table)
            .unwrap_or_else(|e| panic!("use case {} ({}) failed: {e}", uc.id, uc.name));
        assert!(
            count_loc(&generated.java_source) > 10,
            "use case {} produced implausibly little code",
            uc.id
        );
    }
}

#[test]
fn generated_code_type_checks() {
    // `generate` runs the type checker internally; run it again explicitly
    // so the RQ1 claim is checked independent of generator internals.
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table).expect("generation succeeds");
        let mut check_table = table.clone();
        check_table.add(
            cognicryptgen::javamodel::typetable::ClassDef::new(uc.template.class_name.clone())
                .ctor(vec![]),
        );
        cognicryptgen::javamodel::typecheck::check_unit(&generated.unit, &check_table)
            .unwrap_or_else(|e| panic!("use case {} fails type check: {e}", uc.id));
    }
}

#[test]
fn generated_code_is_misuse_free() {
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table).expect("generation succeeds");
        let misuses = analyze_unit(&generated.unit, &rules, &table, AnalyzerOptions::default());
        assert!(
            misuses.is_empty(),
            "use case {} ({}) has misuses: {misuses:?}",
            uc.id,
            uc.name
        );
    }
}

#[test]
fn no_use_case_needs_the_fallback() {
    // Paper §3.3: "In practice, CogniCryptGEN did not have to take this
    // final step for any of the use cases we have implemented."
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table).expect("generation succeeds");
        assert!(
            generated.hoisted.is_empty(),
            "use case {} hoisted parameters: {:?}",
            uc.id,
            generated.hoisted
        );
    }
}

#[test]
fn every_use_case_has_a_template_usage_showcase() {
    let rules = open(PackSource::Embedded).unwrap().rules;
    let table = jca_type_table();
    for uc in all_use_cases() {
        let generated = generate(&uc.template, &rules, &table).expect("generation succeeds");
        let usage = generated
            .unit
            .find_class("OutputClass")
            .unwrap_or_else(|| panic!("use case {} lacks OutputClass", uc.id));
        let m = usage
            .find_method("templateUsage")
            .unwrap_or_else(|| panic!("use case {} lacks templateUsage", uc.id));
        assert!(!m.body.is_empty());
    }
}
