//! Memory-accounting and trace-export suite — the only test binary that
//! installs [`TrackingAlloc`] as its global allocator, so it exercises
//! the full memtrack stack the CLI ships with:
//!
//! * allocator counters really move, and `AllocScope` windows balance —
//!   including on error paths that unwind through `?`;
//! * per-span allocation deltas are non-negative and internally
//!   consistent (a span's relative peak can never exceed what it
//!   allocated);
//! * on a *warmed* engine the `mem.*` metrics are deterministic across
//!   thread counts and seeded input shuffles (warming removes the
//!   ORDER-cache first-lookup race, the one source of run-to-run
//!   allocation variance);
//! * the Chrome trace a [`TraceRecorder`] emits has strictly paired
//!   B/E events with non-decreasing per-tid timestamps, and survives a
//!   serialize→parse round trip;
//! * differential: generated Java is byte-identical with tracing and
//!   memory accounting attached vs. a bare engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use cognicryptgen::core::memtrack::{self, AllocScope, TrackingAlloc};
use cognicryptgen::core::telemetry::{validate_trace, Metric, Phase, PhaseTimings, TraceRecorder};
use cognicryptgen::core::{GenEngine, Template};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{open, PackSource};
use cognicryptgen::usecases::all_use_cases;
use devharness::json::Json;
use devharness::rng::{RandomSource, Xoshiro256};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

fn engine() -> GenEngine {
    GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied")
}

#[test]
fn tracking_allocator_counts_and_scopes_balance() {
    assert!(memtrack::is_active(), "global allocator is installed");
    let before = memtrack::thread_stats();

    let scope = AllocScope::enter();
    let v: Vec<u8> = Vec::with_capacity(64 * 1024);
    let delta = {
        drop(v);
        scope.finish()
    };
    assert!(delta.allocated_bytes >= 64 * 1024, "{delta:?}");
    assert!(delta.freed_bytes >= 64 * 1024, "{delta:?}");
    assert!(delta.allocations >= 1);
    assert!(delta.peak_live_bytes >= 64 * 1024, "{delta:?}");
    // Peak is scope-relative: allocate-then-free inside the scope can
    // never push it beyond what the scope allocated.
    assert!(delta.peak_live_bytes <= delta.allocated_bytes);

    let after = memtrack::thread_stats();
    assert!(after.allocated_bytes > before.allocated_bytes);
    assert_eq!(after.scope_depth, before.scope_depth, "scopes balance");
}

#[test]
fn alloc_scope_balances_on_error_paths_and_nests() {
    fn failing(input: &str) -> Result<usize, String> {
        let _scope = AllocScope::enter();
        let grown = format!("{input}{input}");
        if grown.len() > 4 {
            // Unwinds through the open scope; Drop must restore the
            // enclosing scope's bookkeeping.
            return Err(grown);
        }
        Ok(grown.len())
    }

    let depth_before = memtrack::thread_stats().scope_depth;
    let outer = AllocScope::enter();
    assert_eq!(memtrack::thread_stats().scope_depth, depth_before + 1);

    assert!(failing("xyz").is_err());
    assert_eq!(
        memtrack::thread_stats().scope_depth,
        depth_before + 1,
        "error path closed its scope"
    );

    // A nested scope's activity folds into the enclosing peak.
    let inner = AllocScope::enter();
    let big: Vec<u8> = Vec::with_capacity(128 * 1024);
    drop(big);
    let inner_delta = inner.finish();
    let outer_delta = outer.finish();
    assert!(inner_delta.peak_live_bytes >= 128 * 1024);
    assert!(
        outer_delta.peak_live_bytes >= inner_delta.peak_live_bytes,
        "enclosing peak sees the nested growth: {outer_delta:?} vs {inner_delta:?}"
    );
    assert_eq!(memtrack::thread_stats().scope_depth, depth_before);
}

#[test]
fn every_span_has_a_nonnegative_consistent_alloc_delta() {
    let timings = Arc::new(PhaseTimings::new());
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(timings.clone())
        .build()
        .expect("rules supplied");
    for uc in all_use_cases() {
        engine.generate(&uc.template).expect("generates");
        let unit = timings.unit(&uc.template.class_name).expect("unit timed");
        for phase in Phase::ALL {
            let stat = unit.phase(phase);
            assert_eq!(stat.spans, 1, "uc{} {phase}", uc.id);
            assert!(
                stat.peak_live_bytes <= stat.alloc_bytes,
                "uc{} {phase}: relative peak {} exceeds allocated {}",
                uc.id,
                stat.peak_live_bytes,
                stat.alloc_bytes
            );
        }
        // The pipeline allocates: a memtrack-enabled binary must see it.
        assert!(
            unit.alloc_total_bytes() > 0,
            "uc{}: zero allocation across all phases",
            uc.id
        );
        assert!(unit.peak_live_bytes() > 0, "uc{}", uc.id);
        timings.reset();
    }
}

/// The engine's `mem.*` metrics, which the per-job sinks merged in
/// input order after the batch joined.
fn mem_metrics(engine: &GenEngine) -> BTreeMap<String, Metric> {
    engine
        .metrics()
        .snapshot()
        .into_iter()
        .filter(|(k, _)| k.starts_with("mem."))
        .collect()
}

#[test]
fn warm_engine_mem_metrics_deterministic_across_threads_and_shuffles() {
    let templates: Vec<Template> = all_use_cases().into_iter().map(|uc| uc.template).collect();

    let run = |order: &[usize], threads: usize| {
        let engine = engine();
        // Warming compiles every rule's ORDER once, so batch workers
        // never race a first lookup — every job does identical
        // (cache-hit) work and allocates identically.
        engine.warm().expect("warms");
        let permuted: Vec<Template> = order.iter().map(|&i| templates[i].clone()).collect();
        let results = engine.generate_batch(&permuted, threads);
        assert!(results.iter().all(Result::is_ok));
        mem_metrics(&engine)
    };

    let identity: Vec<usize> = (0..templates.len()).collect();
    let reference = run(&identity, 1);
    assert!(!reference.is_empty(), "mem metrics recorded");
    for phase in Phase::ALL {
        let key = format!("mem.phase.{}.alloc_bytes", phase.name());
        match reference.get(&key) {
            Some(Metric::Counter(n)) => {
                assert!(*n > 0, "{key} is zero under a tracking allocator")
            }
            other => panic!("{key}: expected counter, got {other:?}"),
        }
    }

    let mut rng = Xoshiro256::seed_from_u64(0x5EED_ACC7_u64);
    for threads in [1usize, 2, 8] {
        for _shuffle in 0..3 {
            let mut order = identity.clone();
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let metrics = run(&order, threads);
            assert_eq!(
                metrics, reference,
                "mem metrics diverged at {threads} threads with order {order:?}"
            );
        }
    }
}

#[test]
fn recorded_trace_is_strictly_paired_with_monotonic_timestamps() {
    let recorder = Arc::new(TraceRecorder::new());
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(recorder.clone())
        .build()
        .expect("rules supplied");
    let templates: Vec<Template> = all_use_cases().into_iter().map(|uc| uc.template).collect();
    let results = engine.generate_batch(&templates, 4);
    assert!(results.iter().all(Result::is_ok));

    let doc = recorder.to_json();
    validate_trace(&doc).expect("balanced B/E, monotonic per-tid timestamps");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    // One B + E pair per template and phase at minimum, plus instants.
    let floor = cognicryptgen::usecases::all_use_cases().len() * 5 * 2;
    assert!(events.len() >= floor, "only {} events", events.len());
    let mut b = 0usize;
    let mut e = 0usize;
    let mut exit_alloc_seen = false;
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("B") => b += 1,
            Some("E") => {
                e += 1;
                let alloc = ev
                    .get("args")
                    .and_then(|a| a.get("alloc_bytes"))
                    .and_then(Json::as_f64)
                    .expect("every span exit carries its alloc delta");
                assert!(alloc >= 0.0);
                exit_alloc_seen |= alloc > 0.0;
            }
            Some("i") => {
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    assert_eq!(b, e, "every B has an E");
    assert_eq!(b, templates.len() * Phase::ALL.len());
    assert!(
        exit_alloc_seen,
        "a memtrack-enabled binary records non-zero span allocations"
    );

    // The document survives the writer→parser round trip intact.
    let reparsed = Json::parse(&doc.to_string()).expect("parses");
    validate_trace(&reparsed).expect("reparsed trace validates");

    recorder.reset();
    assert!(recorder.is_empty());
}

#[test]
fn differential_output_is_byte_identical_with_and_without_instrumentation() {
    // Bare engine: no observer (memtrack is still counting — it always
    // is in this binary — but nothing reads it).
    let bare = engine();
    // Fully instrumented engine: trace recording plus phase timings.
    let recorder = Arc::new(TraceRecorder::new());
    let timings = Arc::new(PhaseTimings::new());
    let instrumented = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .observer(Arc::new(
            cognicryptgen::core::telemetry::Fanout::new()
                .with(recorder.clone())
                .with(timings.clone()),
        ))
        .build()
        .expect("rules supplied");

    for uc in all_use_cases() {
        let plain = bare.generate(&uc.template).expect("generates");
        let traced = instrumented.generate(&uc.template).expect("generates");
        assert_eq!(
            plain.java_source, traced.java_source,
            "uc{}: instrumentation changed the generated Java",
            uc.id
        );
    }
    assert!(!recorder.is_empty(), "the instrumented engine was observed");
    validate_trace(&recorder.to_json()).expect("trace validates");
}
