//! Regression tests for crash classes found by the fuzzing harness
//! (`cognicryptgen fuzz`), one named test per class. Each test replays
//! the committed reproducer from `corpus/` through the fuzzer's own
//! oracles — exactly what the corpus-replay gate in `scripts/verify.sh`
//! and CI does — and then pins the specific fixed behavior directly, so
//! a regression fails with a pointed message instead of a generic
//! "corpus replay found crashes".

use cognicryptgen::core::GenError;
use cognicryptgen::crysl;
use cognicryptgen::fuzz::input::FuzzInput;
use cognicryptgen::fuzz::{execute_input, FuzzEnv};
use cognicryptgen::jca_engine;

fn corpus(name: &str) -> FuzzInput {
    let path = format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    FuzzInput::decode(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn replay_clean(name: &str) -> FuzzInput {
    let input = corpus(name);
    let env = FuzzEnv::new().unwrap();
    if let Err(crash) = execute_input(&env, &input) {
        panic!(
            "{name} regressed: {} — {}",
            crash.fingerprint, crash.message
        );
    }
    input
}

/// Fuzz finding: a chain naming the same rule twice generated code that
/// called the rule's sequence twice on one object — a typestate misuse
/// the rule itself forbids. Generation must reject the chain instead.
#[test]
fn duplicate_chain_rule_is_rejected_not_misgenerated() {
    let FuzzInput::Template(spec) = replay_clean("crash-oracle-generated-misuse.txt") else {
        panic!("reproducer changed kind");
    };
    let env = FuzzEnv::new().unwrap();
    let template = spec.build(&env.cases).expect("base template resolves");
    match jca_engine()
        .expect("shipped rules parse")
        .generate(&template)
    {
        Err(GenError::DuplicateRule(rule)) => assert_eq!(rule, "javax.crypto.SecretKey"),
        other => panic!("expected DuplicateRule, got {other:?}"),
    }
}

/// Fuzz finding: the printer emitted string literals unescaped, so a
/// rule containing `"`, `\` or a newline in a string failed the
/// parse→print→parse round trip.
#[test]
fn string_literals_roundtrip_through_the_printer() {
    let FuzzInput::Rule(src) = replay_clean("seed-roundtrip-string-escapes.txt") else {
        panic!("reproducer changed kind");
    };
    let rule = crysl::parse_rule(&src).expect("escaped strings parse");
    let printed = crysl::printer::print_rule(&rule);
    assert_eq!(crysl::parse_rule(&printed).unwrap(), rule);
    assert!(printed.contains(r#""A\"B""#), "quote must stay escaped");
}

/// Fuzz finding: `print_constraint` ignored precedence, so
/// `(a => b) && c` printed as `a => b && c` and reparsed differently.
#[test]
fn constraint_precedence_survives_the_roundtrip() {
    let FuzzInput::Rule(src) = replay_clean("seed-roundtrip-constraint-precedence.txt") else {
        panic!("reproducer changed kind");
    };
    let rule = crysl::parse_rule(&src).unwrap();
    let reparsed = crysl::parse_rule(&crysl::printer::print_rule(&rule)).unwrap();
    assert_eq!(rule.constraints, reparsed.constraints);
}

/// Fuzz finding: `true`/`false` in predicate arguments lexed as plain
/// identifiers, so printed rules with boolean predicate args failed to
/// reparse (validation rejected them as undeclared variables).
#[test]
fn boolean_predicate_arguments_parse_as_literals() {
    let FuzzInput::Rule(src) = replay_clean("seed-pred-arg-bool.txt") else {
        panic!("reproducer changed kind");
    };
    let rule = crysl::parse_rule(&src).expect("boolean predicate args parse");
    assert_eq!(
        rule.ensures[0].predicate.args[1],
        crysl::ast::PredArg::Lit(crysl::ast::Literal::Bool(true))
    );
    assert_eq!(
        crysl::parse_rule(&crysl::printer::print_rule(&rule)).unwrap(),
        rule
    );
}

/// Fuzz finding: the lexer accumulated integers positively before
/// negating, so `i64::MIN` — which the printer happily emits — could
/// not be read back.
#[test]
fn i64_min_literal_roundtrips() {
    let FuzzInput::Rule(src) = replay_clean("seed-int-extremes.txt") else {
        panic!("reproducer changed kind");
    };
    let rule = crysl::parse_rule(&src).expect("i64::MIN parses");
    assert_eq!(
        crysl::parse_rule(&crysl::printer::print_rule(&rule)).unwrap(),
        rule
    );
}

/// Hardening: deep parenthesis nesting must be rejected with a parse
/// error, not ride recursive descent into a stack overflow (which
/// aborts the process and cannot be caught).
#[test]
fn deep_paren_nesting_is_rejected_cleanly() {
    let FuzzInput::Rule(src) = replay_clean("seed-deep-paren-nesting.txt") else {
        panic!("reproducer changed kind");
    };
    let err = crysl::parse_rule(&src).expect_err("over-deep nesting is rejected");
    assert!(err.to_string().contains("nesting"), "{err}");

    let hostile = format!(
        "SPEC X\nEVENTS e0: m0();\nORDER {}e0{}",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    assert!(crysl::parse_rule(&hostile).is_err());
}

/// Hardening: unbounded postfix-operator runs build arbitrarily deep
/// `Opt`/`Star`/`Plus` towers that recursive consumers must walk.
#[test]
fn postfix_operator_runs_are_capped() {
    let FuzzInput::Rule(src) = replay_clean("seed-postfix-run.txt") else {
        panic!("reproducer changed kind");
    };
    let err = crysl::parse_rule(&src).expect_err("over-long postfix run is rejected");
    assert!(err.to_string().contains("postfix"), "{err}");
    assert!(crysl::parse_rule("SPEC X\nEVENTS e0: m0();\nORDER e0????").is_ok());
}

/// Hardening: `&&`/`||` chains build left-leaning box trees whose depth
/// equals the term count, so the term count is capped.
#[test]
fn constraint_chain_length_is_capped() {
    let FuzzInput::Rule(src) = replay_clean("seed-constraint-chain-cap.txt") else {
        panic!("reproducer changed kind");
    };
    let err = crysl::parse_rule(&src).expect_err("over-long `&&` chain is rejected");
    assert!(err.to_string().contains("terms"), "{err}");
}

/// Hardening: subset construction is worst-case exponential, so the
/// fuzz oracles and the compiled-ORDER pipeline bound DFA size instead
/// of hanging or exhausting memory on hostile `ORDER` expressions.
#[test]
fn dfa_subset_construction_is_capped() {
    let FuzzInput::Rule(src) = replay_clean("seed-dfa-state-cap.txt") else {
        panic!("reproducer changed kind");
    };
    let rule = crysl::parse_rule(&src).unwrap();
    let nfa = cognicryptgen::statemachine::Nfa::from_rule(&rule).unwrap();
    assert_eq!(
        cognicryptgen::statemachine::Dfa::try_from_nfa(&nfa, 4096),
        Err(cognicryptgen::statemachine::StateMachineError::TooManyStates { limit: 4096 })
    );
}

/// Hardening: the lexer rejects oversized sources before building token
/// vectors, bounding memory for every downstream stage.
#[test]
fn oversized_sources_are_rejected_by_the_lexer() {
    let big = format!("SPEC X\n// {}\nEVENTS e0: m0();", "x".repeat(128 * 1024));
    let err = crysl::parse_rule(&big).expect_err("oversized source is rejected");
    assert!(err.to_string().contains("limit"), "{err}");
}

/// The full committed corpus replays clean through the fuzzer — the same
/// gate `scripts/verify.sh` and CI run via `fuzz --corpus corpus/
/// --budget 0`, kept here so `cargo test` alone also covers it.
#[test]
fn committed_corpus_replays_without_crashes() {
    let report = cognicryptgen::fuzz::run(&cognicryptgen::fuzz::FuzzConfig {
        budget: 0,
        seed: 0,
        corpus: Some(format!("{}/corpus", env!("CARGO_MANIFEST_DIR")).into()),
    })
    .unwrap();
    assert!(
        report.replayed >= 10,
        "corpus shrank to {}",
        report.replayed
    );
    assert!(report.is_clean(), "{}", report.log);
}
