//! Per-pack round-trip suite, one test per shipped catalog pack so a CI
//! matrix leg can select its pack by test-name filter (`jca_v1`,
//! `aead_v1`, …). For every use case a pack declares, the generated
//! code must be sast-clean under that pack's own rules and must execute
//! its full protocol on the simulated JCA provider — the same bar the
//! embedded rule set is held to, applied at every shipped version.

use cognicryptgen::core::GenEngine;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{self, catalog_pack, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::usecases::all_use_cases;

mod common;

fn round_trip(name: &str, version: u32) {
    let spec = catalog_pack(name, Some(version))
        .unwrap_or_else(|| panic!("{name}@v{version} is not in the catalog"));
    let source = PackSource::Catalog {
        name: name.to_owned(),
        version: Some(version),
    };
    let pack = rules::open_uncached(source).expect("catalog pack opens");
    let rules = pack.rules;
    let table = jca_type_table();
    let engine = GenEngine::builder()
        .rules(rules.clone())
        .type_table(table.clone())
        .build()
        .expect("engine builds from the pack");
    assert!(
        !spec.use_cases.is_empty(),
        "{name}@v{version} declares no use cases"
    );
    for uc in all_use_cases() {
        if !spec.use_cases.contains(&uc.id) {
            continue;
        }
        let generated = engine.generate(&uc.template).unwrap_or_else(|e| {
            panic!(
                "{name}@v{version} fails to generate use case {} ({}): {e}",
                uc.id, uc.name
            )
        });
        let misuses = analyze_unit(&generated.unit, &rules, &table, AnalyzerOptions::default());
        assert!(
            misuses.is_empty(),
            "{name}@v{version} use case {} ({}) is not sast-clean: {misuses:?}",
            uc.id,
            uc.name
        );
        let transcript = common::transcript(uc.id, &generated.unit);
        assert!(
            !transcript.is_empty(),
            "{name}@v{version} use case {} produced an empty transcript",
            uc.id
        );
    }
}

#[test]
fn jca_v1() {
    round_trip("jca", 1);
}

#[test]
fn jca_v2() {
    round_trip("jca", 2);
}

#[test]
fn aead_v1() {
    round_trip("aead", 1);
}

#[test]
fn agreement_v1() {
    round_trip("agreement", 1);
}

#[test]
fn token_v1() {
    round_trip("token", 1);
}
