//! Soak test for the serve daemon: thousands of concurrent requests,
//! well-formed and hostile interleaved, against one daemon instance.
//!
//! What must hold, per the daemon's contract:
//!
//! * every well-formed response is byte-identical to the one-shot
//!   engine's output for the same use case, whatever hostile traffic
//!   runs beside it;
//! * hostile traffic gets typed protocol errors — never a panic, never
//!   a hang, never a perturbed neighbour;
//! * the daemon's peak live memory stays bounded: serving N× more
//!   requests must not grow the peak, because all request state is
//!   per-request and the warm caches reach steady state.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

use cognicryptgen::core::memtrack::TrackingAlloc;
use cognicryptgen::serve::{http, ServeConfig, Server};
use cognicryptgen::usecases::all_use_cases;

/// The daemon-lifetime memory gauges are allocator-level figures, so
/// this test binary must install the tracking allocator just as the
/// CLI binary does.
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

/// Requests per client thread per storm round.
const REQUESTS_PER_CLIENT: usize = 125;
/// Concurrent client threads.
const CLIENTS: usize = 8;

/// The daemon peak gauge is process-wide, so the HTTP and UDS soaks
/// must not interleave — a concurrent sibling's allocation spike
/// between two samples would read as a leak.
static SOAK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Parses one gauge/counter value out of a `/metrics` rendering.
fn metric(metrics: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let mut parts = rest.split_whitespace();
        let kind = parts.next()?;
        if kind != "gauge" && kind != "counter" {
            return None;
        }
        parts.next()?.parse().ok()
    })
}

/// One client's storm: a deterministic mix of well-formed and hostile
/// requests, asserting every response inline. Returns the number of
/// well-formed generations it verified byte-identical.
fn storm(addr: &str, seed: usize, expected: &BTreeMap<u8, String>) -> usize {
    let ids: Vec<u8> = expected.keys().copied().collect();
    let mut verified = 0;
    for i in 0..REQUESTS_PER_CLIENT {
        match (seed + i) % 8 {
            // Most traffic: generations checked byte-for-byte.
            0..=3 => {
                let id = ids[(seed + i) % ids.len()];
                let (code, body) =
                    http::request(addr, "GET", &format!("/generate/{id}"), "").unwrap();
                assert_eq!(code, 200, "generate uc{id} failed mid-soak");
                assert_eq!(
                    &body, &expected[&id],
                    "daemon output for uc{id} diverged from the one-shot engine"
                );
                verified += 1;
            }
            4 => {
                let (code, body) = http::request(addr, "GET", "/healthz", "").unwrap();
                assert_eq!((code, body.as_str()), (200, "ok\n"));
            }
            // Hostile: unknown selector → typed usage error.
            5 => {
                let (code, _) =
                    http::request(addr, "GET", "/generate/definitely-not-a-case", "").unwrap();
                assert_eq!(code, 400);
            }
            // Hostile: nonsense route and method.
            6 => {
                let (code, _) = http::request(addr, "GET", "/../../etc/passwd", "").unwrap();
                assert_eq!(code, 404);
                let (code, _) = http::request(addr, "PATCH", "/metrics", "").unwrap();
                assert_eq!(code, 405);
            }
            // Hostile: raw protocol garbage on a fresh connection.
            _ => {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(b"\x00\xffGARBAGE noise\r\n\r\n").unwrap();
                let mut reply = String::new();
                let _ = stream.read_to_string(&mut reply);
                assert!(
                    reply.starts_with("HTTP/1.1 400"),
                    "garbage must get a typed 400, got {reply:?}"
                );
            }
        }
    }
    verified
}

#[test]
fn soak_mixed_hostile_and_well_formed_traffic() {
    let _serialized = SOAK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let expected: BTreeMap<u8, String> = {
        let engine = cognicryptgen::jca_engine().expect("shipped rules parse");
        all_use_cases()
            .iter()
            .map(|uc| {
                (
                    uc.id,
                    engine
                        .generate(&uc.template)
                        .expect("generates")
                        .java_source,
                )
            })
            .collect()
    };

    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        uds_path: None,
        threads: 4,
        rules_path: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");
    let addr = handle.http_addr().expect("http bound").to_string();

    // Header bomb: a request head over the 8KiB cap must be refused
    // without reading the rest, and the daemon must stay up.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        let bomb = format!(
            "GET /healthz HTTP/1.1\r\nX-Bomb: {}\r\n\r\n",
            "A".repeat(16 * 1024)
        );
        let _ = stream.write_all(bomb.as_bytes());
        let mut reply = String::new();
        let _ = stream.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 431"), "got {reply:?}");
    }
    // Connect-and-abandon must not wedge a worker permanently.
    drop(TcpStream::connect(&addr).unwrap());

    // Round one: the concurrent storm.
    let addr_ref = addr.as_str();
    let expected_ref = &expected;
    let verified: usize = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|seed| scope.spawn(move || storm(addr_ref, seed, expected_ref)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread survives"))
            .sum()
    });
    assert!(verified >= CLIENTS * REQUESTS_PER_CLIENT / 2);

    let (code, metrics_one) = http::request(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(code, 200);
    let requests_one = metric(&metrics_one, "serve.requests").expect("request counter present");
    assert!(requests_one as usize >= CLIENTS * REQUESTS_PER_CLIENT);
    assert_eq!(
        metric(&metrics_one, "serve.request.panics"),
        None,
        "a request panicked"
    );
    assert_eq!(
        metric(&metrics_one, "serve.connection.panics"),
        None,
        "a connection panicked"
    );
    let peak_one =
        metric(&metrics_one, "mem.daemon.peak_live_bytes").expect("daemon peak gauge present");
    assert!(peak_one > 0);

    // Round two: same volume again. The peak must be in steady state —
    // a growing peak under repeat identical load means request state
    // leaks past the request.
    let _: usize = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|seed| scope.spawn(move || storm(addr_ref, seed + 3, expected_ref)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread survives"))
            .sum()
    });
    let (_, metrics_two) = http::request(&addr, "GET", "/metrics", "").unwrap();
    let peak_two =
        metric(&metrics_two, "mem.daemon.peak_live_bytes").expect("daemon peak gauge present");
    assert!(
        peak_two <= peak_one + peak_one / 2,
        "peak grew {peak_one} -> {peak_two} across identical storms: request state is leaking"
    );
    // And an absolute ceiling: far above any honest steady state, far
    // below a leak of thousands of retained responses.
    assert!(
        peak_two < 512 * 1024 * 1024,
        "daemon peak {peak_two} bytes is unbounded"
    );

    // The daemon is still healthy and still byte-identical after the
    // full soak.
    let (code, body) = http::request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (code, body) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    assert_eq!(&body, &expected[&1]);

    // Protocol-level shutdown: workers drain and join.
    let (code, _) = http::request(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(code, 200);
    handle.join();
}

/// One client's storm over the Unix-socket line protocol: a scripted
/// mix of well-formed and hostile lines pipelined through a single
/// connection, every response frame asserted in order. Returns the
/// number of well-formed generations verified byte-identical.
#[cfg(unix)]
fn uds_storm(socket: &std::path::Path, seed: usize, expected: &BTreeMap<u8, String>) -> usize {
    use cognicryptgen::serve::uds;
    use devharness::json::Json;

    let ids: Vec<u8> = expected.keys().copied().collect();
    let mut verified = 0;
    for round in 0..REQUESTS_PER_CLIENT / 5 {
        // One pipelined script per connection: the line protocol's
        // whole point is that hostile lines cannot desynchronise the
        // frames that follow them on the same stream.
        let id = ids[(seed + round) % ids.len()];
        let generate = format!("generate {id}");
        let script = [
            generate.as_str(),
            "healthz",
            "generate definitely-not-a-case",
            "frobnicate now",
            "loadz",
        ];
        let responses = uds::request_lines(socket, &script).unwrap();
        assert_eq!(responses.len(), script.len(), "frame count diverged");
        let class = |i: usize| responses[i].get("class").and_then(Json::as_str).unwrap();
        assert_eq!(class(0), "ok", "generate uc{id} failed mid-soak");
        assert_eq!(
            responses[0].get("body").and_then(Json::as_str),
            Some(expected[&id].as_str()),
            "uds output for uc{id} diverged from the one-shot engine"
        );
        verified += 1;
        assert_eq!(class(1), "ok");
        assert_eq!(class(2), "usage", "hostile selector not typed");
        assert_eq!(class(3), "protocol", "garbage verb not typed");
        assert_eq!(class(4), "ok", "loadz unavailable under load");
        // A separate connection for the over-long line: the daemon
        // answers with a typed protocol error and drops that stream
        // (and only that stream).
        if round % 4 == seed % 4 {
            let bomb = "x".repeat(70 * 1024);
            let responses = uds::request_lines(socket, &[bomb.as_str()]).unwrap();
            assert_eq!(responses.len(), 1);
            assert_eq!(
                responses[0].get("class").and_then(Json::as_str),
                Some("protocol")
            );
        }
    }
    verified
}

/// The HTTP storm assertions, ported to the Unix-socket transport:
/// byte-identical well-formed output beside hostile lines, zero
/// panics, and a daemon peak that reaches steady state instead of
/// growing with the request count.
#[cfg(unix)]
#[test]
fn soak_uds_mixed_hostile_and_well_formed_traffic() {
    use cognicryptgen::serve::uds;
    use devharness::json::Json;

    let _serialized = SOAK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let expected: BTreeMap<u8, String> = {
        let engine = cognicryptgen::jca_engine().expect("shipped rules parse");
        all_use_cases()
            .iter()
            .map(|uc| {
                (
                    uc.id,
                    engine
                        .generate(&uc.template)
                        .expect("generates")
                        .java_source,
                )
            })
            .collect()
    };

    let socket = std::env::temp_dir().join(format!("cognicrypt-soak-{}.sock", std::process::id()));
    std::fs::remove_file(&socket).ok();
    let config = ServeConfig {
        http_addr: None,
        uds_path: Some(socket.clone()),
        threads: 4,
        rules_path: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");

    let metrics_text = |socket: &std::path::Path| -> String {
        let responses = uds::request_lines(socket, &["metrics"]).unwrap();
        responses[0]
            .get("body")
            .and_then(Json::as_str)
            .expect("metrics body")
            .to_owned()
    };

    // Round one: the concurrent storm.
    let socket_ref = socket.as_path();
    let expected_ref = &expected;
    let verified: usize = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|seed| scope.spawn(move || uds_storm(socket_ref, seed, expected_ref)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread survives"))
            .sum()
    });
    assert!(verified >= CLIENTS * (REQUESTS_PER_CLIENT / 5));

    let metrics_one = metrics_text(&socket);
    assert_eq!(
        metric(&metrics_one, "serve.request.panics"),
        None,
        "a request panicked"
    );
    assert_eq!(
        metric(&metrics_one, "serve.connection.panics"),
        None,
        "a connection panicked"
    );
    let peak_one =
        metric(&metrics_one, "mem.daemon.peak_live_bytes").expect("daemon peak gauge present");
    assert!(peak_one > 0);

    // Round two: same volume again — the peak must be steady-state.
    let _: usize = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|seed| scope.spawn(move || uds_storm(socket_ref, seed + 3, expected_ref)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread survives"))
            .sum()
    });
    let metrics_two = metrics_text(&socket);
    let peak_two =
        metric(&metrics_two, "mem.daemon.peak_live_bytes").expect("daemon peak gauge present");
    assert!(
        peak_two <= peak_one + peak_one / 2,
        "peak grew {peak_one} -> {peak_two} across identical storms: request state is leaking"
    );
    assert!(
        peak_two < 512 * 1024 * 1024,
        "daemon peak {peak_two} bytes is unbounded"
    );

    // Still healthy, still byte-identical, then a protocol shutdown.
    let responses = uds::request_lines(&socket, &["generate 1", "shutdown"]).unwrap();
    assert_eq!(responses[0].get("class").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        responses[0].get("body").and_then(Json::as_str),
        Some(expected[&1].as_str())
    );
    assert_eq!(responses[1].get("class").and_then(Json::as_str), Some("ok"));
    handle.join();
}
