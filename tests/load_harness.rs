//! End-to-end tests of the `cognicrypt-load` harness: a real run over
//! the library engine and a booted daemon must be deterministic per
//! seed, its report must parse with the stock bench tooling, a
//! misbehaving target must fail the run with the invalid-input class
//! (exit code 6), and the `/loadz` snapshot must be served on both
//! transports.

use std::collections::BTreeMap;

use cognicryptgen::load::report::{validate, LoadReport, SpecEcho};
use cognicryptgen::load::workload::{build_schedule, schedule_fingerprint, OpKind, WorkloadSpec};
use cognicryptgen::load::{run_target, Outcome, OutcomeClass, RunConfig, Target};
use cognicryptgen::loadcli::{check_report, run_load, LoadOptions};
use cognicryptgen::serve::{http, uds, ServeConfig, Server};
use cognicryptgen::Error;
use devharness::bench::BenchReport;
use devharness::json::Json;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cognicrypt-load-test-{}-{name}",
        std::process::id()
    ))
}

/// One real harness run, twice with the same seed: both runs must pass
/// with zero violations, write reports the stock bench parser accepts,
/// and agree byte for byte on the deterministic workload section.
#[test]
fn seeded_run_is_deterministic_and_clean() {
    let out_a = temp_path("a.json");
    let out_b = temp_path("b.json");
    let base = LoadOptions {
        seed: 42,
        budget: 150,
        clients: 2,
        corpus: Some("corpus".into()),
        ..LoadOptions::default()
    };
    for out in [&out_a, &out_b] {
        let opts = LoadOptions {
            out: out.clone(),
            ..base.clone()
        };
        run_load(&opts).expect("load run is clean");
    }

    let mut digests = Vec::new();
    for out in [&out_a, &out_b] {
        let text = std::fs::read_to_string(out).expect("report written");
        let doc = Json::parse(&text).expect("report is valid json");
        let summary = validate(&doc).expect("report validates");
        assert_eq!(summary.seed, 42);
        assert_eq!(summary.violation_count(), 0);
        // Three result rows per target, every row parseable by the
        // stock bench report parser (the CI gate runs bench_compare
        // directly on this file).
        let bench = BenchReport::parse(&text).expect("parses as a bench report");
        assert_eq!(bench.suite, "load");
        assert_eq!(bench.results.len(), summary.targets.len() * 3);
        digests.push(
            cognicryptgen::load::report::deterministic_digest(&doc).expect("digest extracts"),
        );
        std::fs::remove_file(out).ok();
    }
    assert_eq!(
        digests[0], digests[1],
        "same seed produced different workload sections"
    );
    // The digest must carry no wall-clock contamination.
    assert!(!digests[0].contains("wall_ns"));
}

/// A target that accepts hostile selectors and diverges on well-formed
/// output: the written report must record the violations and
/// `load-check` must refuse it with the invalid-input error class.
#[test]
fn misbehaving_target_fails_the_check_with_exit_class_6() {
    struct Evil;
    impl Target for Evil {
        fn name(&self) -> &'static str {
            "evil"
        }
        fn call(&self, op: &OpKind) -> Outcome {
            match op {
                OpKind::WellFormed { .. } => Outcome::verified(false),
                _ => Outcome::ok(),
            }
        }
    }
    let spec = WorkloadSpec::standard_catalogue(9, 200, vec![]);
    let mixed = build_schedule(&spec);
    let clean = build_schedule(&spec.clean_baseline(40));
    let config = RunConfig {
        clients: 2,
        ..RunConfig::default()
    };
    let run = run_target(&Evil, &clean, &mixed, &config);
    assert!(run.violation_count() > 0);

    let report = LoadReport {
        spec: SpecEcho {
            seed: spec.seed,
            budget: spec.budget,
            clean_budget: 40,
            hostile_per_mille: spec.hostile_per_mille,
            corpus_files: 0,
            schedule_fingerprint: schedule_fingerprint(&mixed),
        },
        config,
        targets: vec![run],
        gauges: Vec::new(),
    };
    let out = temp_path("evil.json");
    std::fs::write(&out, format!("{}\n", report.render())).expect("report written");
    let err = check_report(out.to_str().unwrap(), false).expect_err("violations must fail");
    assert!(matches!(err, Error::Invalid(_)), "{err}");
    assert_eq!(err.exit_code(), 6);
    std::fs::remove_file(&out).ok();
}

/// `/loadz` over HTTP: one JSON object with the counters and gauges the
/// harness samples, consistent before and after traffic.
#[test]
fn loadz_snapshot_is_served_over_http() {
    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        uds_path: None,
        threads: 2,
        rules_path: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");
    let addr = handle.http_addr().expect("http bound").to_string();

    let (code, body) = http::request(&addr, "GET", "/loadz", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("loadz is json");
    let before = doc.get("requests").and_then(Json::as_u64).expect("counter");

    let (code, _) = http::request(&addr, "GET", "/generate/1", "").unwrap();
    assert_eq!(code, 200);
    let (code, _) = http::request(&addr, "GET", "/generate/nope", "").unwrap();
    assert_eq!(code, 400);

    let (code, body) = http::request(&addr, "GET", "/loadz", "").unwrap();
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("loadz is json");
    assert!(doc.get("requests").and_then(Json::as_u64).unwrap() >= before + 2);
    assert_eq!(doc.get("request_panics").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("connection_panics").and_then(Json::as_u64), Some(0));
    let errors = doc.get("errors").expect("error class map");
    assert!(errors.get("usage").and_then(Json::as_u64).unwrap_or(0) >= 1);
    assert!(doc.get("order_cache").is_some());
    // Only GET is routed.
    let (code, _) = http::request(&addr, "POST", "/loadz", "").unwrap();
    assert_eq!(code, 405);
    handle.shutdown();
}

/// `/loadz` over the Unix-socket line protocol: the `loadz` verb
/// answers with the same JSON object inside one response frame.
#[cfg(unix)]
#[test]
fn loadz_snapshot_is_served_over_uds() {
    let socket = temp_path("loadz.sock");
    std::fs::remove_file(&socket).ok();
    let config = ServeConfig {
        http_addr: None,
        uds_path: Some(socket.clone()),
        threads: 2,
        rules_path: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(&config).expect("daemon boots");

    let responses = uds::request_lines(&socket, &["generate 1", "loadz"]).unwrap();
    assert_eq!(responses.len(), 2);
    assert_eq!(responses[0].get("class").and_then(Json::as_str), Some("ok"));
    assert_eq!(responses[1].get("class").and_then(Json::as_str), Some("ok"));
    let body = responses[1].get("body").and_then(Json::as_str).unwrap();
    let doc = Json::parse(body).expect("loadz body is json");
    // The in-flight `loadz` request's own counter merges only after the
    // response is written, so only the earlier generate is guaranteed.
    assert!(doc.get("requests").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(doc.get("request_panics").and_then(Json::as_u64), Some(0));
    handle.shutdown();
}

/// Option parsing: the CLI surface the gates script against.
#[test]
fn load_options_parse_and_reject() {
    let opts = LoadOptions::parse(&[
        "--seed".into(),
        "7".into(),
        "--budget".into(),
        "500".into(),
        "--targets".into(),
        "library,http".into(),
        "--rate".into(),
        "250".into(),
    ])
    .expect("valid flags parse");
    assert_eq!(opts.seed, 7);
    assert_eq!(opts.budget, 500);
    assert_eq!(opts.targets.len(), 2);
    assert_eq!(opts.rate, Some(250.0));

    for bad in [
        vec!["--budget".to_owned(), "0".to_owned()],
        vec!["--targets".to_owned(), "quic".to_owned()],
        vec!["--nope".to_owned()],
        vec!["--seed".to_owned()],
    ] {
        let err = LoadOptions::parse(&bad).expect_err("must reject");
        assert!(matches!(err, Error::Usage(_)), "{err}");
    }
}

/// The schedule the harness replays must cover every op class and hit
/// every shipped use case, so "clean" runs are not quietly partial.
#[test]
fn standard_schedule_covers_all_classes_and_cases() {
    let spec = WorkloadSpec::standard_catalogue(1, 2_000, vec!["SPEC a.B".to_owned()]);
    let ops = build_schedule(&spec);
    let mut classes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut cases: BTreeMap<u8, u64> = BTreeMap::new();
    for op in &ops {
        *classes.entry(op.kind.class()).or_default() += 1;
        if let OpKind::WellFormed { uc } = op.kind {
            *cases.entry(uc).or_default() += 1;
        }
    }
    assert_eq!(classes.len(), OpKind::CLASSES.len(), "{classes:?}");
    assert_eq!(cases.len(), spec.use_case_ids.len(), "{cases:?}");
    let _ = OutcomeClass::ALL;
}
