//! Precompiled rule packs are a pure serialization of the source
//! pipeline: booting from a `.crpack` must change *nothing* observable
//! except cold-start cost.
//!
//! * **Output identity** — for every shipped use case, a pack-booted
//!   engine produces byte-identical Java, identical compilation units
//!   (so SAST verdicts and interpreter transcripts are identical by
//!   construction — asserted directly anyway for SAST, and spot-checked
//!   through the interpreter).
//! * **All-hit cold start** — a pack-booted engine never compiles an
//!   ORDER artefact: seeding from the pack makes every compiled-ORDER
//!   lookup a cache hit, observed through `GenObserver` events.
//! * **Hostile files** — truncations and bit flips at every sampled
//!   offset of a real pack file surface as one typed `Rules` error
//!   through `rules::open`, never a panic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cognicryptgen::core::telemetry::{CacheOutcome, Event, GenObserver};
use cognicryptgen::core::GenEngine;
use cognicryptgen::interp::{Interpreter, Value};
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::rules::{self, PackError, PackSource, RulePack, PACK_VERSION};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::statemachine::OrderCache;
use cognicryptgen::usecases::all_use_cases;

/// Counts how compiled-ORDER lookups were served during generation.
#[derive(Default)]
struct CacheWatch {
    hits: AtomicUsize,
    misses: AtomicUsize,
    uncached: AtomicUsize,
}

impl GenObserver for CacheWatch {
    fn event(&self, event: &Event<'_>) {
        if let Event::OrderCompiled { cache, .. } = event {
            match cache {
                CacheOutcome::Hit => &self.hits,
                CacheOutcome::Miss => &self.misses,
                CacheOutcome::Uncached => &self.uncached,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cgen-packrt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the embedded rules as a `.crpack` file and opens it back.
fn compiled_pack(dir: &std::path::Path) -> (std::path::PathBuf, RulePack) {
    let bytes = rules::open(PackSource::Embedded)
        .unwrap()
        .to_bytes()
        .unwrap();
    let path = dir.join("jca.crpack");
    std::fs::write(&path, &bytes).unwrap();
    let pack = rules::open(PackSource::Compiled(path.clone())).unwrap();
    (path, pack)
}

#[test]
fn pack_boot_is_byte_identical_to_source_boot_for_all_use_cases() {
    let dir = temp_dir("identity");
    let (_, pack) = compiled_pack(&dir);
    assert!(pack.is_precompiled());
    assert_eq!(pack.version, PACK_VERSION);

    let source = rules::open(PackSource::Embedded).unwrap();
    assert_eq!(pack.rules, source.rules, "decoded rule set diverges");
    assert_eq!(pack.pack_fingerprint(), source.pack_fingerprint());

    let from_source = GenEngine::builder()
        .rules(source.rules)
        .type_table(jca_type_table())
        .build()
        .unwrap();
    let from_pack = GenEngine::builder()
        .rules(pack.rules.clone())
        .type_table(jca_type_table())
        .build()
        .unwrap();

    let cases = all_use_cases();
    assert!(cases.len() >= 25);
    for uc in &cases {
        let s = from_source.generate(&uc.template).unwrap();
        let p = from_pack.generate(&uc.template).unwrap();
        assert_eq!(
            s.java_source, p.java_source,
            "use case {} ({}) Java diverged",
            uc.id, uc.name
        );
        assert_eq!(s.unit, p.unit, "use case {} unit diverged", uc.id);

        // Identical units make SAST identity a tautology — assert it
        // anyway so a future unit/source decoupling cannot silently
        // weaken the claim.
        let render = |unit| {
            analyze_unit(
                unit,
                from_source.rules(),
                from_source.table(),
                AnalyzerOptions::default(),
            )
            .iter()
            .map(|m| format!("{m}"))
            .collect::<Vec<_>>()
        };
        assert_eq!(
            render(&s.unit),
            render(&p.unit),
            "use case {} SAST diverged",
            uc.id
        );
    }

    // Interpreter spot check: the hashing showcase method runs to the
    // same value on both units.
    let uc = cases
        .iter()
        .find(|u| u.name.contains("hash"))
        .unwrap_or(&cases[10]);
    let s = from_source.generate(&uc.template).unwrap();
    let p = from_pack.generate(&uc.template).unwrap();
    let run = |unit| {
        Interpreter::new(unit)
            .call_static_style(
                "OutputClass",
                "templateUsage",
                vec![Value::Str("abc".into())],
            )
            .map(|v| format!("{v:?}"))
            .map_err(|e| e.to_string())
    };
    assert_eq!(
        run(&s.unit),
        run(&p.unit),
        "interpreter transcripts diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pack_boot_pre_seeds_the_cache_and_compiles_nothing() {
    let dir = temp_dir("allhit");
    let (_, pack) = compiled_pack(&dir);

    let cache = Arc::new(OrderCache::new());
    let seeded = pack.seed(&cache);
    assert_eq!(
        seeded,
        pack.fingerprints.len(),
        "every distinct fingerprint seeds exactly one artefact"
    );

    let watch = Arc::new(CacheWatch::default());
    let engine = GenEngine::builder()
        .rules(pack.rules)
        .type_table(jca_type_table())
        .order_cache(cache)
        .observer(watch.clone() as Arc<dyn GenObserver>)
        .build()
        .unwrap();

    for uc in all_use_cases() {
        engine.generate(&uc.template).unwrap();
    }

    let hits = watch.hits.load(Ordering::Relaxed);
    let misses = watch.misses.load(Ordering::Relaxed);
    let uncached = watch.uncached.load(Ordering::Relaxed);
    assert!(hits > 0, "generation never consulted the cache");
    assert_eq!(misses, 0, "pack boot compiled {misses} ORDER artefacts");
    assert_eq!(uncached, 0, "pack boot fell back to the uncached path");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_pack_files_fail_with_a_typed_error_and_never_panic() {
    let dir = temp_dir("hostile");
    let (path, _) = compiled_pack(&dir);
    let bytes = std::fs::read(&path).unwrap();

    let open_expecting_error = |mutant: &[u8]| {
        let p = dir.join("mutant.crpack");
        std::fs::write(&p, mutant).unwrap();
        match rules::open(PackSource::Compiled(p)) {
            Ok(_) => panic!("corrupted pack decoded successfully"),
            Err(PackError::Crysl(e)) => {
                assert!(!e.to_string().is_empty());
            }
            Err(other) => panic!("unexpected error class: {other}"),
        }
    };

    // Truncation at every region boundary plus a sampled sweep.
    for end in [
        0usize,
        1,
        4,
        8,
        12,
        23,
        bytes.len() / 3,
        bytes.len() - 9,
        bytes.len() - 1,
    ] {
        open_expecting_error(&bytes[..end]);
    }
    for end in (0..bytes.len()).step_by(977) {
        open_expecting_error(&bytes[..end]);
    }

    // Bit flips across the file: header, rule region, artefact region,
    // checksum trailer.
    let mut mutant = bytes.clone();
    for offset in (0..bytes.len()).step_by(463) {
        for bit in [0, 3, 7] {
            mutant[offset] ^= 1 << bit;
            open_expecting_error(&mutant);
            mutant[offset] = bytes[offset];
        }
    }

    // A missing file is an I/O error, not a decode error.
    match rules::open(PackSource::Compiled(dir.join("absent.crpack"))) {
        Err(PackError::Io { .. }) => {}
        other => panic!("expected Io error, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
