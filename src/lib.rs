//! Facade crate re-exporting the CogniCryptGEN reproduction workspace.
pub mod error;
pub mod loadcli;
pub mod report;
pub mod serve;

pub use error::Error;

pub use cognicrypt_core as core;
pub use cognicrypt_fuzz as fuzz;
pub use cognicrypt_load as load;
pub use crysl;
pub use interp;
pub use javamodel;
pub use jcasim;
pub use oldgen;
pub use rules;
pub use sast;
pub use statemachine;
pub use stats;
pub use usecases;

use std::sync::OnceLock;

use cognicrypt_core::GenEngine;
use usecases::{all_use_cases, UseCase};

/// The process-wide generation engine over the shipped JCA rule set and
/// type table: the embedded rules via `rules::open` (parsed once per
/// process), plus a compiled-ORDER cache that warms up across calls. The CLI's
/// `generate` and `batch` subcommands and any embedding service share
/// this one session.
///
/// # Errors
///
/// [`Error::Rules`] when a shipped rule fails to parse — a corrupted
/// rule pack must surface as the typed error (CLI exit code 3), never
/// as a panic: a library-level panic would kill a resident process
/// serving unrelated requests. Only a successfully built engine is
/// cached; after a failure the next call retries.
pub fn jca_engine() -> Result<&'static GenEngine, Error> {
    static ENGINE: OnceLock<GenEngine> = OnceLock::new();
    if let Some(engine) = ENGINE.get() {
        return Ok(engine);
    }
    let engine = GenEngine::builder()
        .rules(rules::open(rules::PackSource::Embedded)?.rules)
        .type_table(javamodel::jca::jca_type_table())
        .build()?;
    Ok(ENGINE.get_or_init(|| engine))
}

/// Resolves a use-case selector — a Table-1 id (`"3"`) or a
/// case-insensitive name fragment (`"password"`) — against the shipped
/// use cases. Shared by the CLI front end and the daemon protocol.
///
/// # Errors
///
/// [`Error::Usage`] when nothing matches.
pub fn find_use_case(selector: &str) -> Result<UseCase, Error> {
    let cases = all_use_cases();
    // A numeric selector is an id, never a name fragment: "0" must not
    // resolve just because some use-case name happens to contain that
    // digit.
    if let Ok(id) = selector.parse::<u8>() {
        return cases
            .iter()
            .find(|u| u.id == id)
            .cloned()
            .ok_or_else(|| Error::Usage(format!("no use case {id} (try `list`)")));
    }
    let lowered = selector.to_lowercase();
    cases
        .iter()
        .find(|u| u.name.to_lowercase().contains(&lowered))
        .cloned()
        .ok_or_else(|| Error::Usage(format!("no use case matches `{selector}` (try `list`)")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jca_engine_is_a_singleton_and_generates() {
        let engine = jca_engine().expect("shipped rules are well-formed");
        assert!(std::ptr::eq(engine, jca_engine().unwrap()));
        let uc = usecases::all_use_cases().remove(0);
        let first = engine.generate(&uc.template).expect("generates");
        let second = engine.generate(&uc.template).expect("generates");
        assert_eq!(first.java_source, second.java_source);
        assert!(engine.cache_stats().hits > 0);
    }

    #[test]
    fn find_use_case_resolves_ids_and_names_and_rejects_unknowns() {
        assert_eq!(find_use_case("1").unwrap().id, 1);
        let by_name = find_use_case("password").unwrap();
        assert!(by_name.name.to_lowercase().contains("password"));
        let err = find_use_case("no-such-case").unwrap_err();
        assert!(matches!(err, Error::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }
}
