//! Facade crate re-exporting the CogniCryptGEN reproduction workspace.
pub use cognicrypt_core as core;
pub use crysl;
pub use interp;
pub use javamodel;
pub use jcasim;
pub use oldgen;
pub use rules;
pub use sast;
pub use statemachine;
pub use stats;
pub use usecases;
