//! Facade crate re-exporting the CogniCryptGEN reproduction workspace.
pub mod error;
pub mod report;

pub use error::Error;

pub use cognicrypt_core as core;
pub use cognicrypt_fuzz as fuzz;
pub use crysl;
pub use interp;
pub use javamodel;
pub use jcasim;
pub use oldgen;
pub use rules;
pub use sast;
pub use statemachine;
pub use stats;
pub use usecases;

use std::sync::OnceLock;

use cognicrypt_core::GenEngine;

/// The process-wide generation engine over the shipped JCA rule set and
/// type table: parsed rules behind `rules::load_shared`'s `OnceLock`,
/// plus a compiled-ORDER cache that warms up across calls. The CLI's
/// `generate` and `batch` subcommands and any embedding service share
/// this one session.
///
/// # Panics
///
/// Panics on first access if a shipped rule fails to parse (a build
/// defect); use [`rules::load`] to surface that as an error.
pub fn jca_engine() -> &'static GenEngine {
    static ENGINE: OnceLock<GenEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        GenEngine::builder()
            .rules(
                rules::load_shared()
                    .expect("shipped JCA rules must parse")
                    .clone(),
            )
            .type_table(javamodel::jca::jca_type_table())
            .build()
            .expect("rules supplied")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jca_engine_is_a_singleton_and_generates() {
        let engine = jca_engine();
        assert!(std::ptr::eq(engine, jca_engine()));
        let uc = usecases::all_use_cases().remove(0);
        let first = engine.generate(&uc.template).expect("generates");
        let second = engine.generate(&uc.template).expect("generates");
        assert_eq!(first.java_source, second.java_source);
        assert!(engine.cache_stats().hits > 0);
    }
}
