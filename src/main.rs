//! `cognicryptgen` — command-line front end for the reproduction.
//!
//! ```text
//! cognicryptgen list                  list the shipped use cases
//! cognicryptgen generate <id|name>    generate a use case, print Java
//! cognicryptgen batch <dir> [threads] generate all use cases into <dir>
//! cognicryptgen template <id|name>    print the use case's code template
//! cognicryptgen rules [class]         print the CrySL rule set (or one rule)
//! cognicryptgen compile-rules <src-dir|--embedded> <out.crpack>
//!                                     parse + validate a rule set, precompile
//!                                     every ORDER automaton, and write the
//!                                     versioned, checksummed binary rule pack
//!                                     — a later `--rules <out.crpack>` boot
//!                                     (CLI or daemon) deserializes it and
//!                                     skips parsing and ORDER compilation
//!                                     entirely
//! cognicryptgen analyze <file>        run the misuse analyzer on Java text
//! cognicryptgen oldgen <id>           run the XSL/Clafer baseline generator
//! cognicryptgen report [dir]          run all use cases instrumented, print
//!                                     the Table-1 timing/memory/metrics report
//!                                     and write REPORT_table1.json into [dir]
//! cognicryptgen report-check <file>   validate a written Table-1 report
//! cognicryptgen trace-check <file>    validate a written Chrome trace
//! cognicryptgen fuzz [--budget <n>] [--seed <s>] [--corpus <dir>]
//!                                     deterministic fuzzing of the CrySL
//!                                     front-end and generation pipeline;
//!                                     replays <dir> first, writes new crash
//!                                     reproducers there, exits non-zero on
//!                                     any crash
//! cognicryptgen serve [--listen <addr>] [--socket <path>]
//!                     [--threads <n>] [--rules <dir|pack.crpack>]
//!                     [--slow-ms <n>] [--tracez-capacity <n>]
//!                                     run the long-lived generation daemon:
//!                                     one warm engine, HTTP/1.1 and/or a
//!                                     Unix-socket line protocol, /metrics,
//!                                     rule-pack hot-reload, per-request
//!                                     observability (/tracez access records,
//!                                     /statz latency quantiles, /profilez
//!                                     on-demand trace capture; --slow-ms
//!                                     logs slow requests to stderr)
//! cognicryptgen serve-check <addr> [--profile-out <file>]
//!                                     probe a running daemon end to end:
//!                                     healthz, metrics, generate (compared
//!                                     byte-for-byte against a local engine),
//!                                     reload, tracez/statz, a profilez
//!                                     arm→capture→validate round trip
//!                                     (writing the capture to --profile-out
//!                                     when given), shutdown
//! cognicryptgen load [--seed <s>] [--budget <n>] [--clients <n>]
//!                    [--rate <ops/s>] [--corpus <dir>] [--out <file>]
//!                    [--p99-factor <f>] [--p99-floor-ms <n>]
//!                    [--targets library,http,uds]
//!                                     replay a seeded zipf-skewed workload —
//!                                     hostile traffic interleaved with
//!                                     well-formed requests, mid-run reloads —
//!                                     against the library engine and a booted
//!                                     daemon; write BENCH_load.json; exit 6
//!                                     on any panic, perturbed response or
//!                                     breached p99 isolation bound
//! cognicryptgen load-check <file> [--digest]
//!                                     validate a written load report; with
//!                                     --digest print its deterministic
//!                                     workload section for replay diffing
//! ```
//!
//! `generate`, `batch` and `report` additionally accept
//! `--rules <dir|pack.crpack>` — serve a rule pack other than the
//! embedded one, auto-detected as a `*.crysl` source directory or a
//! precompiled binary pack — and `--trace <file>`:
//! the run is observed by a [`TraceRecorder`] and the span/event stream
//! is written as Chrome Trace Event Format JSON — open the file in
//! `chrome://tracing` or Perfetto. Traced runs build a per-invocation
//! engine (the shared engine has no observer attached); the generated
//! Java is byte-identical either way, which the differential suite
//! asserts.
//!
//! The binary installs [`TrackingAlloc`] as its global allocator, so
//! per-phase `alloc_bytes`/`peak_live_bytes` in `report` output and in
//! traces are real allocator-level figures, not zeros.
//!
//! Failures exit with a per-class code (usage 2, rules 3,
//! generation/engine 4, I/O 5, invalid input 6) so scripts can branch
//! without parsing stderr.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use cognicryptgen::core::memtrack::TrackingAlloc;
use cognicryptgen::core::telemetry::{validate_trace, TraceRecorder};
use cognicryptgen::core::template::render_java;
use cognicryptgen::core::GenEngine;
use cognicryptgen::javamodel::jca::jca_type_table;
use cognicryptgen::javamodel::parser::parse_java;
use cognicryptgen::report::{self, REPORT_FILE};
use cognicryptgen::rules::{self, PackManifest, PackSource};
use cognicryptgen::sast::{analyze_unit, AnalyzerOptions};
use cognicryptgen::serve::{self, ServeConfig, Server};
use cognicryptgen::usecases::{all_use_cases, UseCase};
use cognicryptgen::{find_use_case, jca_engine, Error};
use devharness::json::Json;

/// Every allocation of the CLI process is counted, so phase spans carry
/// real allocation deltas (library users opt in from their own binary).
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

const USAGE: &str = "cognicryptgen <list|generate|batch|template|rules|compile-rules|analyze|oldgen|report|report-check|trace-check|fuzz|serve|serve-check|load|load-check> [arg..] [--rules <dir|pack>] [--trace <file>]";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let result = extract_trace(&mut args).and_then(|trace| {
        let trace = trace.as_deref();
        let rules_flag = extract_flag(&mut args, "--rules", "a rule pack path")?;
        let pack = rules_flag.as_deref();
        match args.first().map(String::as_str) {
            Some("list") => reject_custom(trace, pack, "list").and_then(|()| cmd_list()),
            Some("generate") => with_use_case(args.get(1), |uc| cmd_generate(uc, pack, trace)),
            Some("batch") => cmd_batch(
                args.get(1).map(String::as_str),
                args.get(2).map(String::as_str),
                pack,
                trace,
            ),
            Some("template") => reject_custom(trace, pack, "template")
                .and_then(|()| with_use_case(args.get(1), cmd_template)),
            Some("rules") => reject_custom(trace, pack, "rules")
                .and_then(|()| cmd_rules(args.get(1).map(String::as_str))),
            Some("compile-rules") => reject_custom(trace, pack, "compile-rules")
                .and_then(|()| cmd_compile_rules(&args[1..])),
            Some("analyze") => reject_custom(trace, pack, "analyze")
                .and_then(|()| cmd_analyze(args.get(1).map(String::as_str))),
            Some("oldgen") => reject_custom(trace, pack, "oldgen")
                .and_then(|()| cmd_oldgen(args.get(1).map(String::as_str))),
            Some("report") => cmd_report(args.get(1).map(String::as_str), pack, trace),
            Some("report-check") => reject_custom(trace, pack, "report-check")
                .and_then(|()| cmd_report_check(args.get(1).map(String::as_str))),
            Some("trace-check") => reject_custom(trace, pack, "trace-check")
                .and_then(|()| cmd_trace_check(args.get(1).map(String::as_str))),
            Some("fuzz") => reject_custom(trace, pack, "fuzz").and_then(|()| cmd_fuzz(&args[1..])),
            Some("serve") => {
                // `serve` parses its own --rules flag (it was never
                // extracted above because extract_flag runs first —
                // so serve's flag is the same one, reinjected here).
                reject_trace(trace, "serve")?;
                let mut serve_args = args[1..].to_vec();
                if let Some(path) = rules_flag.clone() {
                    serve_args.push("--rules".to_owned());
                    serve_args.push(path);
                }
                cmd_serve(&serve_args)
            }
            Some("serve-check") => {
                reject_trace(trace, "serve-check").and_then(|()| cmd_serve_check(&args[1..], pack))
            }
            Some("load") => reject_custom(trace, pack, "load").and_then(|()| cmd_load(&args[1..])),
            Some("load-check") => {
                reject_custom(trace, pack, "load-check").and_then(|()| cmd_load_check(&args[1..]))
            }
            _ => Err(Error::Usage(USAGE.to_owned())),
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Removes `--trace <file>` from the argument list, wherever it sits.
/// The extraction is strict: a `--trace` without a following path, or a
/// second `--trace`, is a usage error — before this normalization a
/// repeated flag silently became a positional argument of whatever
/// subcommand ran, with the second path ignored.
fn extract_trace(args: &mut Vec<String>) -> Result<Option<String>, Error> {
    let mut trace = None;
    while let Some(i) = args.iter().position(|a| a == "--trace") {
        if trace.is_some() {
            return Err(Error::Usage("--trace given more than once".to_owned()));
        }
        if i + 1 >= args.len() {
            return Err(Error::Usage("--trace requires a file path".to_owned()));
        }
        args.remove(i);
        trace = Some(args.remove(i));
    }
    Ok(trace)
}

fn reject_trace(trace: Option<&str>, cmd: &str) -> Result<(), Error> {
    match trace {
        Some(_) => Err(Error::Usage(format!(
            "--trace is not supported by `{cmd}` (use generate, batch or report)"
        ))),
        None => Ok(()),
    }
}

/// Rejects both cross-cutting flags for subcommands taking neither.
fn reject_custom(trace: Option<&str>, pack: Option<&str>, cmd: &str) -> Result<(), Error> {
    reject_trace(trace, cmd)?;
    match pack {
        Some(_) => Err(Error::Usage(format!(
            "--rules is not supported by `{cmd}` (use generate, batch, report or serve)"
        ))),
        None => Ok(()),
    }
}

/// Removes `--<flag> <value>` from the argument list, wherever it
/// sits, with the same strictness as [`extract_trace`].
fn extract_flag(args: &mut Vec<String>, flag: &str, what: &str) -> Result<Option<String>, Error> {
    let mut value = None;
    while let Some(i) = args.iter().position(|a| a == flag) {
        if value.is_some() {
            return Err(Error::Usage(format!("{flag} given more than once")));
        }
        if i + 1 >= args.len() {
            return Err(Error::Usage(format!("{flag} requires {what}")));
        }
        args.remove(i);
        value = Some(args.remove(i));
    }
    Ok(value)
}

/// A per-invocation engine for runs the shared [`jca_engine`] cannot
/// serve: a `--trace` observer attached, a `--rules` pack other than
/// the embedded one, or both. A precompiled `.crpack` seeds the
/// process-wide compiled-ORDER cache before the engine warms, so the
/// boot performs no CrySL parsing and no ORDER compilation. The
/// loaded pack's manifest rides along so callers can honour the
/// catalogued use-case subset the pack declares.
fn custom_engine(
    pack: Option<&str>,
    recorder: Option<Arc<TraceRecorder>>,
) -> Result<Option<(GenEngine, PackManifest)>, Error> {
    if pack.is_none() && recorder.is_none() {
        return Ok(None);
    }
    let source = match pack {
        Some(path) => PackSource::detect(path),
        None => PackSource::Embedded,
    };
    let pack = rules::open(source)?;
    let manifest = pack.manifest.clone();
    let cache = cognicryptgen::core::engine::shared_order_cache().clone();
    pack.seed(&cache);
    let mut builder = GenEngine::builder()
        .rules(pack.rules)
        .type_table(jca_type_table())
        .order_cache(cache);
    if let Some(recorder) = recorder {
        builder = builder.observer(recorder);
    }
    Ok(Some((builder.build()?, manifest)))
}

/// The catalogued use-case ids a manifest's pack declares, when the
/// manifest names a shipped catalog entry. Packs outside the catalog
/// (source dirs, foreign `.crpack`s) declare nothing and get the full
/// catalogue.
fn declared_cases(manifest: &PackManifest) -> Option<&'static [u8]> {
    rules::catalog_pack(&manifest.name, Some(manifest.version)).map(|spec| spec.use_cases)
}

/// Validates and writes the recorded trace, reporting to stderr so
/// stdout stays reserved for the command's own output.
fn write_trace(recorder: &TraceRecorder, path: &str) -> Result<(), Error> {
    let doc = recorder.to_json();
    validate_trace(&doc).map_err(|e| Error::Invalid(format!("recorded trace: {e}")))?;
    std::fs::write(path, format!("{doc}\n")).map_err(|e| Error::io(path, e))?;
    eprintln!("trace: {} events written to {path}", recorder.len());
    Ok(())
}

fn with_use_case(
    selector: Option<&String>,
    f: impl FnOnce(&UseCase) -> Result<(), Error>,
) -> Result<(), Error> {
    let selector =
        selector.ok_or_else(|| Error::Usage("missing use-case id or name".to_owned()))?;
    f(&find_use_case(selector)?)
}

fn cmd_list() -> Result<(), Error> {
    println!("{:<4} {:<32} Sources", "#", "Use case (paper Table 1)");
    for uc in all_use_cases() {
        println!("{:<4} {:<32} {}", uc.id, uc.name, uc.sources);
    }
    Ok(())
}

fn cmd_generate(uc: &UseCase, pack: Option<&str>, trace: Option<&str>) -> Result<(), Error> {
    let recorder = trace.map(|_| Arc::new(TraceRecorder::new()));
    let generated = match custom_engine(pack, recorder.clone())? {
        Some((engine, _)) => engine.generate(&uc.template)?,
        None => jca_engine()?.generate(&uc.template)?,
    };
    if let (Some(recorder), Some(path)) = (&recorder, trace) {
        write_trace(recorder, path)?;
    }
    print!("{}", generated.java_source);
    Ok(())
}

/// `batch <dir> [threads]` — generate every catalogued use case in one
/// engine session, fanned over worker threads, writing `uc01.java` …
/// `uc26.java` into `dir`. A `--rules` pack that names a catalog entry
/// (directly, or through a compiled `.crpack`'s manifest) narrows the
/// run to the use-case subset that pack declares. Any per-case failure
/// is reported and turns the whole invocation into a failure after all
/// cases ran.
fn cmd_batch(
    outdir: Option<&str>,
    threads: Option<&str>,
    pack: Option<&str>,
    trace: Option<&str>,
) -> Result<(), Error> {
    let outdir =
        outdir.ok_or_else(|| Error::Usage("missing output directory for batch".to_owned()))?;
    let threads = match threads {
        Some(t) => t
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| Error::Usage(format!("invalid thread count `{t}`")))?,
        None => 4,
    };
    let outdir = Path::new(outdir);
    std::fs::create_dir_all(outdir).map_err(|e| Error::io(outdir.display().to_string(), e))?;

    let recorder = trace.map(|_| Arc::new(TraceRecorder::new()));
    let custom;
    let mut declared: Option<&'static [u8]> = None;
    let engine: &GenEngine = match custom_engine(pack, recorder.clone())? {
        Some((engine, manifest)) => {
            declared = declared_cases(&manifest);
            custom = engine;
            &custom
        }
        None => jca_engine()?,
    };

    let full = all_use_cases();
    let total = full.len();
    let cases: Vec<UseCase> = full
        .into_iter()
        .filter(|uc| declared.is_none_or(|ids| ids.contains(&uc.id)))
        .collect();
    if cases.len() < total {
        println!(
            "batch: rule pack declares {} of {} catalogued use cases",
            cases.len(),
            total
        );
    }
    let templates: Vec<_> = cases.iter().map(|uc| uc.template.clone()).collect();
    let results = engine.generate_batch(&templates, threads);

    let mut last_failure = None;
    let mut failures = 0usize;
    for (uc, result) in cases.iter().zip(results) {
        match result {
            Ok(generated) => {
                let path = outdir.join(format!("uc{:02}.java", uc.id));
                std::fs::write(&path, &generated.java_source)
                    .map_err(|e| Error::io(path.display().to_string(), e))?;
                println!(
                    "uc{:02} {:<32} ok ({} bytes)",
                    uc.id,
                    uc.name,
                    generated.java_source.len()
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("uc{:02} {:<32} FAILED: {e}", uc.id, uc.name);
                last_failure = Some(e);
            }
        }
    }
    if let (Some(recorder), Some(path)) = (&recorder, trace) {
        write_trace(recorder, path)?;
    }
    let stats = engine.cache_stats();
    println!(
        "batch: {} of {} generated with {} threads (order cache: {} entries, {} hits, {} misses)",
        cases.len() - failures,
        cases.len(),
        threads,
        stats.entries,
        stats.hits,
        stats.misses
    );
    match last_failure {
        Some(e) => Err(Error::Engine(e)),
        None => Ok(()),
    }
}

fn cmd_template(uc: &UseCase) -> Result<(), Error> {
    print!("{}", render_java(&uc.template));
    Ok(())
}

fn cmd_rules(class: Option<&str>) -> Result<(), Error> {
    let set = rules::open(PackSource::Embedded)?.rules;
    match class {
        Some(name) => {
            let rule = set
                .by_name(name)
                .ok_or_else(|| Error::Usage(format!("no rule for `{name}`")))?;
            print!("{}", cognicryptgen::crysl::printer::print_rule(rule));
        }
        None => {
            for rule in set.iter() {
                println!("{}", rule.class_name);
            }
        }
    }
    Ok(())
}

/// `compile-rules <src-dir|name[@vN]|--embedded> <out.crpack>` — parse
/// and validate a rule set (a `*.crysl` source directory, a catalog
/// pack named `jca@v1`-style, or the embedded set), precompile every
/// ORDER automaton (minimized DFA plus its enumerated paths, keyed by
/// content-hash fingerprint), and write the whole thing as the
/// versioned, checksummed binary rule pack a later `--rules
/// <out.crpack>` boot loads without touching the CrySL front-end or
/// the NFA→DFA pipeline. Catalog packs carry their `name@vN` manifest
/// into the compiled artefact, so a version-pinned `.crpack` stays
/// distinguishable after distribution.
fn cmd_compile_rules(args: &[String]) -> Result<(), Error> {
    let (src, out) = match args {
        [src, out] => (src.as_str(), out.as_str()),
        _ => {
            return Err(Error::Usage(
                "compile-rules <src-dir|name[@vN]|--embedded> <out.crpack>".to_owned(),
            ))
        }
    };
    let source = if src == "--embedded" {
        PackSource::Embedded
    } else {
        PackSource::detect(src)
    };
    // Uncached: a compiler run must parse its actual input, not a
    // previously cached embedded set.
    let pack = rules::open_uncached(source)?;
    let bytes = pack.to_bytes()?;
    std::fs::write(out, &bytes).map_err(|e| Error::io(out, e))?;
    println!(
        "compile-rules: {} ({} rules), {} ORDER artefacts, pack v{} fingerprint {:016x}, {} bytes -> {out}",
        pack.manifest,
        pack.rules.len(),
        pack.fingerprints.len(),
        cognicryptgen::rules::PACK_VERSION,
        pack.pack_fingerprint(),
        bytes.len(),
    );
    Ok(())
}

fn cmd_analyze(path: Option<&str>) -> Result<(), Error> {
    let path = path.ok_or_else(|| Error::Usage("missing file to analyze".to_owned()))?;
    let source = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let table = jca_type_table();
    let unit = parse_java(&source, &table).map_err(|e| Error::Invalid(e.to_string()))?;
    let rules = rules::open(PackSource::Embedded)?.rules;
    let misuses = analyze_unit(&unit, &rules, &table, AnalyzerOptions::default());
    if misuses.is_empty() {
        println!("no misuses found");
    } else {
        for m in &misuses {
            println!("{m}");
        }
    }
    Ok(())
}

fn cmd_oldgen(selector: Option<&str>) -> Result<(), Error> {
    let selector = selector.ok_or_else(|| Error::Usage("missing use-case id".to_owned()))?;
    let id: u8 = selector
        .parse()
        .map_err(|_| Error::Usage("oldgen expects a numeric use-case id".to_owned()))?;
    let uc = cognicryptgen::oldgen::old_gen_use_cases()
        .into_iter()
        .find(|u| u.id == id)
        .ok_or_else(|| Error::Usage(format!("old generator does not support use case {id}")))?;
    let out = cognicryptgen::oldgen::generate_use_case(&uc, &BTreeMap::new())
        .map_err(|e| Error::Invalid(e.to_string()))?;
    print!("{out}");
    Ok(())
}

/// `report [dir]` — generate all eleven use cases on an instrumented
/// engine, print the Table-1 per-phase timing table with the pipeline
/// metrics, and write the machine-readable `REPORT_table1.json` into
/// `dir` (default: current directory).
fn cmd_report(outdir: Option<&str>, pack: Option<&str>, trace: Option<&str>) -> Result<(), Error> {
    let outdir = Path::new(outdir.unwrap_or("."));
    std::fs::create_dir_all(outdir).map_err(|e| Error::io(outdir.display().to_string(), e))?;
    let source = match pack {
        Some(path) => PackSource::detect(path),
        None => PackSource::Embedded,
    };
    let recorder = trace.map(|_| Arc::new(TraceRecorder::new()));
    let report = report::build_from(source, recorder.clone().map(|r| r as _))?;
    if let (Some(recorder), Some(path)) = (&recorder, trace) {
        write_trace(recorder, path)?;
    }
    print!("{}", report::render_text(&report));
    let path = outdir.join(REPORT_FILE);
    let doc = report::to_json(&report);
    std::fs::write(&path, format!("{doc}\n"))
        .map_err(|e| Error::io(path.display().to_string(), e))?;
    println!("\nreport written to {}", path.display());
    Ok(())
}

/// `report-check <file>` — parse a previously written Table-1 report
/// and validate its shape (every catalogued use case, all five phases, metrics).
fn cmd_report_check(path: Option<&str>) -> Result<(), Error> {
    let path = path.ok_or_else(|| Error::Usage("missing report file to check".to_owned()))?;
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let doc = Json::parse(&text).map_err(|e| Error::Invalid(format!("{path}: {e}")))?;
    report::validate(&doc).map_err(|e| Error::Invalid(format!("{path}: {e}")))?;
    println!("{path}: valid table1 report");
    Ok(())
}

/// `fuzz [--budget <n>] [--seed <s>] [--corpus <dir>]` — run the
/// deterministic fuzzing harness: replay the corpus directory (if
/// given), then execute `n` fresh inputs derived from the seed. New
/// crash classes are minimized and written into the corpus directory.
/// The session log goes to stdout; any crash or undecodable corpus file
/// makes the invocation fail with the invalid-input exit code.
fn cmd_fuzz(args: &[String]) -> Result<(), Error> {
    let mut config = cognicryptgen::fuzz::FuzzConfig {
        budget: 1000,
        seed: 1,
        corpus: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| Error::Usage(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--budget" => {
                let v = value("--budget")?;
                config.budget = v
                    .parse()
                    .map_err(|_| Error::Usage(format!("invalid budget `{v}`")))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                config.seed = v
                    .parse()
                    .map_err(|_| Error::Usage(format!("invalid seed `{v}`")))?;
            }
            "--corpus" => config.corpus = Some(value("--corpus")?.into()),
            other => return Err(Error::Usage(format!("unknown fuzz option `{other}`"))),
        }
    }
    let report = cognicryptgen::fuzz::run(&config).map_err(Error::Invalid)?;
    print!("{}", report.log);
    if report.is_clean() {
        Ok(())
    } else {
        Err(Error::Invalid(format!(
            "fuzzing found {} crash class(es) and {} undecodable corpus file(s)",
            report.crashes.len(),
            report.decode_errors.len()
        )))
    }
}

/// `serve [--listen <addr>] [--socket <path>] [--threads <n>]
/// [--rules <dir|pack.crpack>] [--slow-ms <n>] [--tracez-capacity <n>]`
/// — run the generation
/// daemon until a protocol-level `shutdown` request. With no transport
/// flag, HTTP binds `127.0.0.1:0` (a free port); the bound endpoints
/// are printed as parseable `listening …` lines before the process
/// blocks. `--slow-ms` logs every request at or above the threshold to
/// stderr and counts it as `serve.requests.slow`; `--tracez-capacity`
/// sizes the `/tracez` access-record ring (0 disables recording).
fn cmd_serve(args: &[String]) -> Result<(), Error> {
    let mut config = ServeConfig {
        threads: GenEngine::DEFAULT_THREADS,
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| Error::Usage(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--listen" => config.http_addr = Some(value("--listen")?),
            "--socket" => config.uds_path = Some(value("--socket")?.into()),
            "--rules" => config.rules_path = Some(value("--rules")?.into()),
            "--threads" => {
                let v = value("--threads")?;
                config.threads = v
                    .parse()
                    .map_err(|_| Error::Usage(format!("invalid thread count `{v}`")))?;
            }
            "--slow-ms" => {
                let v = value("--slow-ms")?;
                config.slow_ms = Some(
                    v.parse()
                        .map_err(|_| Error::Usage(format!("invalid slow threshold `{v}`")))?,
                );
            }
            "--tracez-capacity" => {
                let v = value("--tracez-capacity")?;
                config.obs_capacity = v
                    .parse()
                    .map_err(|_| Error::Usage(format!("invalid tracez capacity `{v}`")))?;
            }
            other => return Err(Error::Usage(format!("unknown serve option `{other}`"))),
        }
    }
    if config.http_addr.is_none() && config.uds_path.is_none() {
        config.http_addr = Some("127.0.0.1:0".to_owned());
    }

    let handle = Server::start(&config)?;
    if let Some(addr) = handle.http_addr() {
        println!("listening http={addr}");
    }
    if let Some(path) = handle.uds_path() {
        println!("listening uds={}", path.display());
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    eprintln!("serve: shut down cleanly");
    Ok(())
}

/// `serve-check <addr> [--profile-out <file>] [--case <id>]
/// [--rules <pack>]` — end-to-end probe of a running daemon: healthz,
/// metrics, a generation compared byte-for-byte against a local
/// engine, a hot-reload, the same generation again, the observability
/// surface (`/tracez` with a hostile probe showing up as a rejection,
/// `/statz` in both renderings, a `/profilez` arm→capture→validate
/// round trip with a 409 on double-arm), shutdown. Probing a daemon
/// booted on a non-embedded pack needs `--rules` with that same pack,
/// so the local comparison engine uses the same rules; the probed use
/// case then defaults to the first one the pack declares (`--case`
/// overrides). With `--profile-out` the captured trace is also written
/// to a file, ready for `trace-check`. Exits non-zero on the first
/// discrepancy, so scripts can gate on it.
fn cmd_serve_check(args: &[String], pack: Option<&str>) -> Result<(), Error> {
    let mut args = args.to_vec();
    let profile_out = extract_flag(&mut args, "--profile-out", "an output file path")?;
    let case = extract_flag(&mut args, "--case", "a use-case id or name")?;
    let addr = match args.as_slice() {
        [addr] => addr.as_str(),
        [] => return Err(Error::Usage("missing daemon address".to_owned())),
        _ => {
            return Err(Error::Usage(
                "serve-check takes one daemon address".to_owned(),
            ))
        }
    };
    let http_err = |e: std::io::Error| Error::Invalid(format!("daemon at {addr}: {e}"));

    let (code, body) = serve::http::request(addr, "GET", "/healthz", "").map_err(http_err)?;
    if code != 200 || body.trim() != "ok" {
        return Err(Error::Invalid(format!(
            "healthz: expected 200 ok, got {code} {body:?}"
        )));
    }
    println!("serve-check: healthz ok");

    let (code, body) = serve::http::request(addr, "GET", "/metrics", "").map_err(http_err)?;
    if code != 200 || !body.contains("serve.requests") {
        return Err(Error::Invalid(format!(
            "metrics: expected 200 with serve.requests, got {code}"
        )));
    }
    println!("serve-check: metrics ok ({} lines)", body.lines().count());

    let custom = custom_engine(pack, None)?;
    let declared = custom.as_ref().and_then(|(_, m)| declared_cases(m));
    let selector = match case {
        Some(sel) => sel,
        None => declared
            .and_then(|ids| ids.first())
            .map_or_else(|| "1".to_owned(), u8::to_string),
    };
    let uc = find_use_case(&selector)?;
    let local = match &custom {
        Some((engine, _)) => engine.generate(&uc.template)?.java_source,
        None => jca_engine()?.generate(&uc.template)?.java_source,
    };
    let gen_path = format!("/generate/{}", uc.id);
    let (code, remote) = serve::http::request(addr, "GET", &gen_path, "").map_err(http_err)?;
    if code != 200 || remote != local {
        return Err(Error::Invalid(format!(
            "generate: daemon output differs from local engine (status {code}, {} vs {} bytes)",
            remote.len(),
            local.len()
        )));
    }
    println!(
        "serve-check: generate uc{:02} byte-identical ({} bytes)",
        uc.id,
        local.len()
    );

    let (code, _) = serve::http::request(addr, "POST", "/reload", "").map_err(http_err)?;
    if code != 200 {
        return Err(Error::Invalid(format!("reload: expected 200, got {code}")));
    }
    let (code, remote) = serve::http::request(addr, "GET", &gen_path, "").map_err(http_err)?;
    if code != 200 || remote != local {
        return Err(Error::Invalid(format!(
            "generate after reload: output diverged (status {code})"
        )));
    }
    println!("serve-check: reload preserved output");

    // Observability surface. A deliberately unroutable probe first, so
    // /tracez?errors=1 provably shows rejected traffic.
    let (code, _) = serve::http::request(addr, "GET", "/no-such-route", "").map_err(http_err)?;
    if code != 404 {
        return Err(Error::Invalid(format!(
            "hostile probe: expected 404, got {code}"
        )));
    }
    let (code, body) = serve::http::request(addr, "GET", "/tracez", "").map_err(http_err)?;
    let tracez = Json::parse(&body).map_err(|e| Error::Invalid(format!("tracez: {e}")))?;
    let records = tracez
        .get("records")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::Invalid("tracez: no records array".to_owned()))?;
    if code != 200 || records.is_empty() {
        return Err(Error::Invalid(format!(
            "tracez: expected 200 with records, got {code} with {}",
            records.len()
        )));
    }
    let (code, body) =
        serve::http::request(addr, "GET", "/tracez?errors=1", "").map_err(http_err)?;
    let errors_doc = Json::parse(&body).map_err(|e| Error::Invalid(format!("tracez: {e}")))?;
    let rejected = errors_doc
        .get("records")
        .and_then(Json::as_arr)
        .is_some_and(|records| {
            records
                .iter()
                .any(|r| r.get("endpoint").and_then(Json::as_str) == Some("rejected"))
        });
    if code != 200 || !rejected {
        return Err(Error::Invalid(
            "tracez?errors=1: hostile probe not visible as a rejected record".to_owned(),
        ));
    }
    println!(
        "serve-check: tracez ok ({} records, rejections visible)",
        records.len()
    );

    let (code, body) = serve::http::request(addr, "GET", "/statz", "").map_err(http_err)?;
    if code != 200 || !body.contains("http.generate.ok") {
        return Err(Error::Invalid(format!(
            "statz: expected 200 with an http.generate.ok row, got {code}"
        )));
    }
    let (code, body) = serve::http::request(addr, "GET", "/statz?json=1", "").map_err(http_err)?;
    let statz = Json::parse(&body).map_err(|e| Error::Invalid(format!("statz: {e}")))?;
    if code != 200 || statz.get("http.generate.ok").is_none() {
        return Err(Error::Invalid(format!(
            "statz?json=1: expected 200 with an http.generate.ok histogram, got {code}"
        )));
    }
    println!("serve-check: statz ok");

    let (code, _) = serve::http::request(addr, "POST", "/profilez", "2").map_err(http_err)?;
    if code != 200 {
        return Err(Error::Invalid(format!(
            "profilez arm: expected 200, got {code}"
        )));
    }
    let (code, _) = serve::http::request(addr, "POST", "/profilez", "5").map_err(http_err)?;
    if code != 409 {
        return Err(Error::Invalid(format!(
            "profilez double-arm: expected 409, got {code}"
        )));
    }
    for _ in 0..2 {
        let (code, _) = serve::http::request(addr, "GET", &gen_path, "").map_err(http_err)?;
        if code != 200 {
            return Err(Error::Invalid(format!(
                "generate during capture: expected 200, got {code}"
            )));
        }
    }
    let (code, body) = serve::http::request(addr, "GET", "/profilez", "").map_err(http_err)?;
    if code != 200 {
        return Err(Error::Invalid(format!(
            "profilez fetch: expected 200, got {code}"
        )));
    }
    let capture = Json::parse(&body).map_err(|e| Error::Invalid(format!("profilez: {e}")))?;
    validate_trace(&capture).map_err(|e| Error::Invalid(format!("profilez capture: {e}")))?;
    let events = capture
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map_or(0, |events| events.len());
    if events == 0 {
        return Err(Error::Invalid(
            "profilez capture: no events recorded".to_owned(),
        ));
    }
    if let Some(path) = &profile_out {
        std::fs::write(path, &body).map_err(|e| Error::io(path, e))?;
    }
    println!("serve-check: profilez round trip ok ({events} events)");

    let (code, _) = serve::http::request(addr, "POST", "/shutdown", "").map_err(http_err)?;
    if code != 200 {
        return Err(Error::Invalid(format!(
            "shutdown: expected 200, got {code}"
        )));
    }
    println!("serve-check: shutdown acknowledged");
    Ok(())
}

/// `load [--seed <s>] [--budget <n>] …` — the seeded load harness: a
/// zipf-skewed workload with hostile traffic and mid-run reloads,
/// replayed against the library engine and a daemon booted for the
/// run. Writes `BENCH_load.json`; any isolation violation (panic,
/// perturbed well-formed response, accepted hostile input, breached
/// p99 bound) is the invalid-input failure, exit code 6.
fn cmd_load(args: &[String]) -> Result<(), Error> {
    let opts = cognicryptgen::loadcli::LoadOptions::parse(args)?;
    cognicryptgen::loadcli::run_load(&opts)
}

/// `load-check <file> [--digest]` — validate a written load report;
/// with `--digest`, print its deterministic workload section so the
/// replay gate can diff two same-seed runs byte for byte.
fn cmd_load_check(args: &[String]) -> Result<(), Error> {
    let mut path = None;
    let mut digest = false;
    for arg in args {
        match arg.as_str() {
            "--digest" => digest = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other),
            other => return Err(Error::Usage(format!("unknown load-check arg `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| Error::Usage("missing load report file to check".to_owned()))?;
    cognicryptgen::loadcli::check_report(path, digest)
}

/// `trace-check <file>` — parse a previously written Chrome trace and
/// validate its invariants (paired B/E spans, monotonic per-tid
/// timestamps).
fn cmd_trace_check(path: Option<&str>) -> Result<(), Error> {
    let path = path.ok_or_else(|| Error::Usage("missing trace file to check".to_owned()))?;
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let doc = Json::parse(&text).map_err(|e| Error::Invalid(format!("{path}: {e}")))?;
    validate_trace(&doc).map_err(|e| Error::Invalid(format!("{path}: {e}")))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map_or(0, |events| events.len());
    println!("{path}: valid chrome trace ({events} events)");
    Ok(())
}
