//! The `load` subcommand: concrete [`Target`]s for the library engine
//! and the daemon's two transports, plus the orchestration that boots a
//! daemon, replays the seeded workload, writes `BENCH_load.json` and
//! turns any isolation violation into the invalid-input exit code.
//!
//! The harness crate ([`cognicrypt_load`]) owns the workload model, the
//! runner and the report; this module owns everything protocol-shaped:
//! how each [`OpKind`] maps onto a library call, an HTTP exchange or a
//! Unix-socket line, and how each response classifies into an
//! [`OutcomeClass`]. Keeping the mapping here (not in the crate) means
//! the harness can be pointed at hostile stub targets in tests, and the
//! crate graph stays acyclic — `crates/load` cannot depend on the
//! facade crate that owns `serve`.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use cognicrypt_load::report::{LoadReport, SpecEcho, SUITE};
use cognicrypt_load::workload::{build_schedule, schedule_fingerprint, OpKind, WorkloadSpec};
use cognicrypt_load::{
    cross_check_quantile, run_target, Outcome, OutcomeClass, RunConfig, Target, TargetRun,
};
use devharness::histogram::Histogram;
use devharness::json::Json;

use crate::core::GenEngine;
use crate::fuzz::input::FuzzInput;
use crate::serve::{self, ServeConfig, Server};
use crate::usecases::{all_use_cases, UseCase};
use crate::{find_use_case, jca_engine, Error};

/// Which systems a load run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// The in-process [`GenEngine`] behind [`jca_engine`].
    Library,
    /// The daemon's HTTP transport.
    Http,
    /// The daemon's Unix-socket line protocol (Unix only).
    Uds,
}

impl TargetKind {
    fn parse(name: &str) -> Result<TargetKind, Error> {
        match name {
            "library" => Ok(TargetKind::Library),
            "http" => Ok(TargetKind::Http),
            "uds" => Ok(TargetKind::Uds),
            other => Err(Error::Usage(format!(
                "unknown load target `{other}` (use library, http, uds)"
            ))),
        }
    }
}

/// Everything the `load` subcommand parses from its flags.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Workload seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Mixed-phase operation budget per target.
    pub budget: u64,
    /// Concurrent client threads per target.
    pub clients: usize,
    /// Open-loop aggregate arrival rate (ops/s); `None` = closed loop.
    pub rate: Option<f64>,
    /// Fuzz corpus directory feeding hostile traffic.
    pub corpus: Option<PathBuf>,
    /// Where the report is written.
    pub out: PathBuf,
    /// Mixed p99 must stay within this factor of the clean p99.
    pub p99_factor: f64,
    /// Clean-p99 floor (milliseconds) under the factor bound.
    pub p99_floor_ms: u64,
    /// Targets to drive, in order.
    pub targets: Vec<TargetKind>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            seed: 1,
            budget: 2_000,
            clients: 4,
            rate: None,
            corpus: None,
            out: PathBuf::from(format!("BENCH_{SUITE}.json")),
            p99_factor: 50.0,
            p99_floor_ms: 10,
            targets: if cfg!(unix) {
                vec![TargetKind::Library, TargetKind::Http, TargetKind::Uds]
            } else {
                vec![TargetKind::Library, TargetKind::Http]
            },
        }
    }
}

impl LoadOptions {
    /// Parses the `load` subcommand's flags.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] for unknown flags or unparsable values.
    pub fn parse(args: &[String]) -> Result<LoadOptions, Error> {
        let mut opts = LoadOptions::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| Error::Usage(format!("{name} requires a value")))
            };
            match flag.as_str() {
                "--seed" => opts.seed = parse_num(&value("--seed")?, "--seed")?,
                "--budget" => opts.budget = parse_num(&value("--budget")?, "--budget")?,
                "--clients" => {
                    opts.clients = parse_num::<usize>(&value("--clients")?, "--clients")?
                }
                "--rate" => {
                    let v = value("--rate")?;
                    let rate: f64 = v
                        .parse()
                        .map_err(|_| Error::Usage(format!("invalid --rate `{v}`")))?;
                    opts.rate = (rate > 0.0).then_some(rate);
                }
                "--corpus" => opts.corpus = Some(value("--corpus")?.into()),
                "--out" => opts.out = value("--out")?.into(),
                "--p99-factor" => {
                    let v = value("--p99-factor")?;
                    opts.p99_factor = v
                        .parse()
                        .map_err(|_| Error::Usage(format!("invalid --p99-factor `{v}`")))?;
                }
                "--p99-floor-ms" => {
                    opts.p99_floor_ms = parse_num(&value("--p99-floor-ms")?, "--p99-floor-ms")?
                }
                "--targets" => {
                    opts.targets = value("--targets")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(TargetKind::parse)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                other => return Err(Error::Usage(format!("unknown load option `{other}`"))),
            }
        }
        if opts.budget == 0 {
            return Err(Error::Usage("--budget must be at least 1".to_owned()));
        }
        if opts.clients == 0 {
            return Err(Error::Usage("--clients must be at least 1".to_owned()));
        }
        if opts.targets.is_empty() {
            return Err(Error::Usage("--targets must name at least one".to_owned()));
        }
        if !cfg!(unix) && opts.targets.contains(&TargetKind::Uds) {
            return Err(Error::Usage(
                "the uds target needs Unix domain sockets".to_owned(),
            ));
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, Error> {
    v.parse()
        .map_err(|_| Error::Usage(format!("invalid {flag} `{v}`")))
}

/// Reads the fuzz corpus directory: every decodable `rule` reproducer
/// becomes hostile traffic. Template reproducers and undecodable files
/// are skipped — the load harness replays hostile *inputs*, it does not
/// re-judge the corpus (that is `fuzz`'s job).
fn load_corpus(dir: &std::path::Path) -> Result<Vec<String>, Error> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| Error::io(dir.display().to_string(), e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    names.sort();
    let mut sources = Vec::new();
    for path in names {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Ok(FuzzInput::Rule(source)) = FuzzInput::decode(&text) {
            sources.push(source);
        }
    }
    Ok(sources)
}

/// Classifies a decoded daemon error class string.
fn classify_error_class(class: &str) -> OutcomeClass {
    match class {
        "ok" => OutcomeClass::Ok,
        "panic" => OutcomeClass::Panic,
        "protocol" | "not_found" | "method_not_allowed" | "too_large" => {
            OutcomeClass::ProtocolError
        }
        _ => OutcomeClass::TypedError,
    }
}

/// Classifies one HTTP `(status, body)` exchange.
fn classify_http(code: u16, body: &str) -> Outcome {
    if code == 200 {
        return Outcome::ok();
    }
    let class = Json::parse(body)
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_owned))
        .unwrap_or_else(|| "protocol".to_owned());
    Outcome::classed(
        classify_error_class(&class),
        format!("http {code} class {class}"),
    )
}

/// Percent-encodes arbitrary text into one HTTP path segment.
fn percent_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len() * 3);
    for b in text.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The in-process library target: drives the shared [`jca_engine`]
/// directly, with [`catch_unwind`] standing in for the daemon's
/// per-request containment.
struct LibraryTarget {
    engine: &'static GenEngine,
    cases: BTreeMap<u8, UseCase>,
    expected: Arc<BTreeMap<u8, String>>,
}

impl Target for LibraryTarget {
    fn name(&self) -> &'static str {
        "library"
    }

    fn call(&self, op: &OpKind) -> Outcome {
        let contained = |detail: &str, f: &dyn Fn() -> Outcome| -> Outcome {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(outcome) => outcome,
                Err(_) => Outcome::classed(OutcomeClass::Panic, format!("panic in {detail}")),
            }
        };
        match op {
            OpKind::WellFormed { uc } => {
                let Some(case) = self.cases.get(uc) else {
                    return Outcome::classed(OutcomeClass::Transport, format!("no use case {uc}"));
                };
                contained("generate", &|| match self.engine.generate(&case.template) {
                    Ok(generated) => {
                        Outcome::verified(self.expected.get(uc) == Some(&generated.java_source))
                    }
                    Err(e) => Outcome::classed(OutcomeClass::TypedError, e.to_string()),
                })
            }
            OpKind::HostileSelector { payload } => {
                contained("selector lookup", &|| match find_use_case(payload) {
                    Ok(uc) => Outcome::classed(
                        OutcomeClass::Ok,
                        format!("hostile selector resolved to use case {}", uc.id),
                    ),
                    Err(_) => Outcome::classed(OutcomeClass::TypedError, "rejected"),
                })
            }
            OpKind::HostileRule { source } => {
                contained("crysl parse", &|| match crate::crysl::parse_rule(source) {
                    Ok(_) => Outcome::ok(),
                    Err(_) => Outcome::classed(OutcomeClass::TypedError, "parse rejected"),
                })
            }
            // No transport in-process: protocol attacks degrade to
            // selector garbage the resolver must refuse.
            OpKind::HostileProtocol { variant } => {
                let payload = match variant % 4 {
                    0 => "z".repeat(4096),
                    1 => "\u{1}\u{2}\u{7f}".to_owned(),
                    2 => "../../../../root".to_owned(),
                    _ => "%00%ff%fe".to_owned(),
                };
                contained("selector lookup", &|| match find_use_case(&payload) {
                    Ok(_) => Outcome::classed(OutcomeClass::Ok, "garbage selector resolved"),
                    Err(_) => Outcome::classed(OutcomeClass::TypedError, "rejected"),
                })
            }
            // The library's reload is rebuilding an engine from the
            // shipped pack — same work the daemon does on `/reload`.
            OpKind::Reload => contained("engine rebuild", &|| {
                let rebuilt = crate::rules::open(crate::rules::PackSource::Embedded)
                    .map_err(Error::from)
                    .map(|pack| pack.rules)
                    .and_then(|rules| {
                        GenEngine::builder()
                            .rules(rules)
                            .type_table(crate::javamodel::jca::jca_type_table())
                            .order_cache(crate::core::engine::shared_order_cache().clone())
                            .build()
                            .map_err(Error::from)
                    });
                match rebuilt {
                    Ok(_) => Outcome::ok(),
                    Err(e) => Outcome::classed(OutcomeClass::TypedError, e.to_string()),
                }
            }),
            OpKind::Snapshot => contained("cache stats", &|| {
                let _ = self.engine.cache_stats();
                Outcome::ok()
            }),
        }
    }
}

/// The HTTP transport target.
struct HttpTarget {
    addr: String,
    expected: Arc<BTreeMap<u8, String>>,
}

impl HttpTarget {
    fn exchange(&self, method: &str, path: &str, body: &str) -> Result<(u16, String), Outcome> {
        serve::http::request(&self.addr, method, path, body)
            .map_err(|e| Outcome::classed(OutcomeClass::Transport, e.to_string()))
    }

    /// Writes raw garbage bytes and reads whatever status comes back —
    /// the attack [`serve::http::request`] is too well-behaved to send.
    fn raw_garbage(&self) -> Outcome {
        let go = || -> std::io::Result<(u16, String)> {
            let mut stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
            stream.set_write_timeout(Some(std::time::Duration::from_secs(10)))?;
            stream.write_all(b"\x01\x02 total garbage\r\n\r\n")?;
            stream.flush()?;
            let mut response = String::new();
            let mut reader = std::io::BufReader::new(stream);
            reader.read_to_string(&mut response)?;
            let code = response
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| std::io::Error::other("no status line"))?;
            let body = response
                .split_once("\r\n\r\n")
                .map(|(_, b)| b.to_owned())
                .unwrap_or_default();
            Ok((code, body))
        };
        match go() {
            Ok((code, body)) => classify_http(code, &body),
            Err(e) => Outcome::classed(OutcomeClass::Transport, e.to_string()),
        }
    }
}

impl Target for HttpTarget {
    fn name(&self) -> &'static str {
        "http"
    }

    fn call(&self, op: &OpKind) -> Outcome {
        match op {
            OpKind::WellFormed { uc } => {
                match self.exchange("GET", &format!("/generate/{uc}"), "") {
                    Ok((200, body)) => Outcome::verified(self.expected.get(uc) == Some(&body)),
                    Ok((code, body)) => classify_http(code, &body),
                    Err(outcome) => outcome,
                }
            }
            OpKind::HostileSelector { payload } => {
                let path = format!("/generate/{}", percent_encode(payload));
                match self.exchange("GET", &path, "") {
                    Ok((code, body)) => classify_http(code, &body),
                    Err(outcome) => outcome,
                }
            }
            // A rule source is not a selector: POSTing it must come
            // back as a typed refusal, whatever the bytes are.
            OpKind::HostileRule { source } => match self.exchange("POST", "/generate", source) {
                Ok((code, body)) => classify_http(code, &body),
                Err(outcome) => outcome,
            },
            OpKind::HostileProtocol { variant } => match variant % 4 {
                0 => self.raw_garbage(),
                1 => match self.exchange("DELETE", "/healthz", "") {
                    Ok((code, body)) => classify_http(code, &body),
                    Err(outcome) => outcome,
                },
                2 => match self.exchange("GET", "/no-such-route", "") {
                    Ok((code, body)) => classify_http(code, &body),
                    Err(outcome) => outcome,
                },
                _ => {
                    let path = format!("/{}", "a".repeat(9_000));
                    match self.exchange("GET", &path, "") {
                        Ok((code, body)) => classify_http(code, &body),
                        Err(outcome) => outcome,
                    }
                }
            },
            OpKind::Reload => match self.exchange("POST", "/reload", "") {
                Ok((200, _)) => Outcome::ok(),
                Ok((code, body)) => classify_http(code, &body),
                Err(outcome) => outcome,
            },
            OpKind::Snapshot => match self.exchange("GET", "/loadz", "") {
                Ok((200, body)) => match Json::parse(&body) {
                    Ok(_) => Outcome::ok(),
                    Err(e) => Outcome::classed(OutcomeClass::Transport, format!("loadz body: {e}")),
                },
                Ok((code, body)) => classify_http(code, &body),
                Err(outcome) => outcome,
            },
        }
    }
}

/// The Unix-socket transport target.
#[cfg(unix)]
struct UdsTarget {
    path: PathBuf,
    expected: Arc<BTreeMap<u8, String>>,
}

#[cfg(unix)]
impl UdsTarget {
    /// Sends `lines` on one connection and folds the per-line response
    /// classes into one outcome: any panic wins, then any typed error,
    /// then protocol errors; all-ok is ok.
    fn send(&self, lines: &[&str]) -> Outcome {
        let responses = match serve::uds::request_lines(&self.path, lines) {
            Ok(responses) => responses,
            Err(e) => return Outcome::classed(OutcomeClass::Transport, e.to_string()),
        };
        if responses.is_empty() {
            return Outcome::classed(OutcomeClass::Transport, "no response lines");
        }
        let mut folded = OutcomeClass::Ok;
        let mut detail = String::new();
        for response in &responses {
            let class = response.get("class").and_then(Json::as_str).unwrap_or("");
            let classified = classify_error_class(class);
            let outranks = match classified {
                OutcomeClass::Panic => true,
                OutcomeClass::TypedError => folded != OutcomeClass::Panic,
                OutcomeClass::ProtocolError => folded == OutcomeClass::Ok,
                _ => false,
            };
            if outranks {
                folded = classified;
                detail = format!("uds class {class}");
            }
        }
        Outcome::classed(folded, detail)
    }
}

#[cfg(unix)]
impl Target for UdsTarget {
    fn name(&self) -> &'static str {
        "uds"
    }

    fn call(&self, op: &OpKind) -> Outcome {
        match op {
            OpKind::WellFormed { uc } => {
                let responses =
                    match serve::uds::request_lines(&self.path, &[&format!("generate {uc}")]) {
                        Ok(responses) => responses,
                        Err(e) => return Outcome::classed(OutcomeClass::Transport, e.to_string()),
                    };
                let Some(response) = responses.first() else {
                    return Outcome::classed(OutcomeClass::Transport, "no response line");
                };
                match response.get("class").and_then(Json::as_str) {
                    Some("ok") => Outcome::verified(
                        response.get("body").and_then(Json::as_str)
                            == self.expected.get(uc).map(String::as_str),
                    ),
                    Some(class) => {
                        Outcome::classed(classify_error_class(class), format!("uds class {class}"))
                    }
                    None => Outcome::classed(OutcomeClass::Transport, "frame without class"),
                }
            }
            OpKind::HostileSelector { payload } => self.send(&[&format!("generate {payload}")]),
            // Each line of the rule source hits the line protocol as
            // its own (garbage) request; the stream must stay framed.
            OpKind::HostileRule { source } => {
                let lines: Vec<&str> = source.lines().filter(|l| !l.trim().is_empty()).collect();
                if lines.is_empty() {
                    self.send(&["OBJECTS"])
                } else {
                    self.send(&lines)
                }
            }
            OpKind::HostileProtocol { variant } => match variant % 4 {
                0 => self.send(&[&"x".repeat(70_000)]),
                1 => self.send(&["generate"]),
                2 => self.send(&["frobnicate now"]),
                _ => self.send(&["\u{fffd}\u{fffd} ??"]),
            },
            OpKind::Reload => self.send(&["reload"]),
            OpKind::Snapshot => self.send(&["loadz"]),
        }
    }
}

/// A booted daemon scoped to the load run.
struct DaemonEndpoints {
    http_addr: Option<String>,
    uds_path: Option<PathBuf>,
}

/// Fetches the daemon's `/statz` histogram for successful `generate`
/// requests on one transport, over that same transport.
fn fetch_server_generate_hist(
    endpoints: &DaemonEndpoints,
    kind: TargetKind,
) -> Result<Histogram, Error> {
    let (doc, key) = match kind {
        TargetKind::Http => {
            let addr = endpoints
                .http_addr
                .as_deref()
                .ok_or_else(|| Error::Invalid("daemon bound no HTTP address".to_owned()))?;
            let (code, body) = serve::http::request(addr, "GET", "/statz?json=1", "")
                .map_err(|e| Error::Invalid(format!("statz fetch: {e}")))?;
            if code != 200 {
                return Err(Error::Invalid(format!("statz fetch: status {code}")));
            }
            let doc = Json::parse(&body).map_err(|e| Error::Invalid(format!("statz body: {e}")))?;
            (doc, "http.generate.ok")
        }
        TargetKind::Uds => {
            #[cfg(unix)]
            {
                let path = endpoints
                    .uds_path
                    .as_deref()
                    .ok_or_else(|| Error::Invalid("daemon bound no socket".to_owned()))?;
                let responses = serve::uds::request_lines(path, &["statz json"])
                    .map_err(|e| Error::Invalid(format!("statz fetch: {e}")))?;
                let body = responses
                    .first()
                    .and_then(|r| r.get("body").and_then(Json::as_str))
                    .ok_or_else(|| Error::Invalid("statz fetch: no response body".to_owned()))?;
                let doc =
                    Json::parse(body).map_err(|e| Error::Invalid(format!("statz body: {e}")))?;
                (doc, "uds.generate.ok")
            }
            #[cfg(not(unix))]
            unreachable!("uds target rejected at option parsing")
        }
        TargetKind::Library => {
            return Err(Error::Invalid(
                "the library target has no daemon-side histogram".to_owned(),
            ))
        }
    };
    let hist = doc
        .get(key)
        .ok_or_else(|| Error::Invalid(format!("statz: no `{key}` histogram")))?;
    Histogram::from_json(hist).map_err(|e| Error::Invalid(format!("statz `{key}`: {e}")))
}

/// Runs the full load harness per `opts`: build schedules, boot a
/// daemon when a transport target asks for one, drive every target,
/// write the report, fail on any violation.
///
/// # Errors
///
/// [`Error::Usage`] for bad options, [`Error::Io`] for corpus/report
/// I/O, daemon boot failures as their own classes, and
/// [`Error::Invalid`] (exit code 6) when the run recorded violations —
/// a panicked daemon, a perturbed well-formed response, an accepted
/// hostile input, or a breached p99 bound.
pub fn run_load(opts: &LoadOptions) -> Result<(), Error> {
    let corpus = match &opts.corpus {
        Some(dir) => load_corpus(dir)?,
        None => Vec::new(),
    };
    let cases: BTreeMap<u8, UseCase> = all_use_cases().into_iter().map(|u| (u.id, u)).collect();
    let ids: Vec<u8> = cases.keys().copied().collect();

    let engine = jca_engine()?;
    let mut expected = BTreeMap::new();
    for (id, case) in &cases {
        expected.insert(*id, engine.generate(&case.template)?.java_source);
    }
    let expected = Arc::new(expected);

    let mixed_spec = WorkloadSpec::standard(opts.seed, opts.budget, ids, corpus);
    let clean_budget = (opts.budget / 4).max(1);
    let clean_spec = mixed_spec.clean_baseline(clean_budget);
    let mixed = build_schedule(&mixed_spec);
    let clean = build_schedule(&clean_spec);

    let needs_daemon = opts
        .targets
        .iter()
        .any(|t| matches!(t, TargetKind::Http | TargetKind::Uds));
    let (daemon, endpoints) = if needs_daemon {
        let config = ServeConfig {
            http_addr: opts
                .targets
                .contains(&TargetKind::Http)
                .then(|| "127.0.0.1:0".to_owned()),
            uds_path: opts.targets.contains(&TargetKind::Uds).then(|| {
                std::env::temp_dir().join(format!("cognicrypt-load-{}.sock", std::process::id()))
            }),
            threads: opts.clients.max(2),
            ..ServeConfig::default()
        };
        let handle = Server::start(&config)?;
        let endpoints = DaemonEndpoints {
            http_addr: handle.http_addr().map(|a| a.to_string()),
            uds_path: handle.uds_path().map(PathBuf::from),
        };
        (Some(handle), endpoints)
    } else {
        (
            None,
            DaemonEndpoints {
                http_addr: None,
                uds_path: None,
            },
        )
    };

    let config = RunConfig {
        clients: opts.clients,
        rate: opts.rate,
        p99_factor: opts.p99_factor,
        p99_floor_ns: opts.p99_floor_ms.saturating_mul(1_000_000),
    };

    let mut runs: Vec<TargetRun> = Vec::new();
    let mut daemon_violations = Vec::new();
    let mut gauges: Vec<(String, Json)> = Vec::new();
    for kind in &opts.targets {
        let run = match kind {
            TargetKind::Library => {
                let target = LibraryTarget {
                    engine,
                    cases: cases.clone(),
                    expected: expected.clone(),
                };
                run_target(&target, &clean, &mixed, &config)
            }
            TargetKind::Http => {
                let addr = endpoints
                    .http_addr
                    .clone()
                    .ok_or_else(|| Error::Invalid("daemon bound no HTTP address".to_owned()))?;
                let target = HttpTarget {
                    addr,
                    expected: expected.clone(),
                };
                run_target(&target, &clean, &mixed, &config)
            }
            TargetKind::Uds => {
                #[cfg(unix)]
                {
                    let path = endpoints
                        .uds_path
                        .clone()
                        .ok_or_else(|| Error::Invalid("daemon bound no socket".to_owned()))?;
                    let target = UdsTarget {
                        path,
                        expected: expected.clone(),
                    };
                    run_target(&target, &clean, &mixed, &config)
                }
                #[cfg(not(unix))]
                unreachable!("uds target rejected at option parsing")
            }
        };
        eprintln!(
            "load: {} done — {} ops, {} violations, p99 clean/mixed = {}/{} µs",
            run.target,
            run.clean.total_ops() + run.mixed.total_ops(),
            run.violation_count(),
            run.p99.clean_ns / 1_000,
            run.p99.mixed_ns / 1_000,
        );
        // Cross-check the daemon's own `/statz` wall-time distribution
        // for this transport's `generate` endpoint against the latency
        // the clients observed for the same requests. A daemon that
        // under-reports (stale histogram, dropped records) or a client
        // clock that drifts shows up as an inconsistent pair here.
        if matches!(kind, TargetKind::Http | TargetKind::Uds) {
            let transport = run.target;
            let mut client = run.clean.wellformed();
            client.merge(&run.mixed.wellformed());
            match fetch_server_generate_hist(&endpoints, *kind) {
                Ok(server) => {
                    let check = cross_check_quantile(&server, &client, 0.99);
                    if server.count() != client.count() {
                        daemon_violations.push(format!(
                            "{transport}: daemon counted {} ok generate requests, \
                             clients sent {}",
                            server.count(),
                            client.count(),
                        ));
                    }
                    if !check.ok {
                        daemon_violations.push(format!(
                            "{transport}: daemon p99 bucket [{}, {}] ns cannot describe \
                             the requests clients saw at [{}, {}] ns",
                            check.server_ns.0,
                            check.server_ns.1,
                            check.client_ns.0,
                            check.client_ns.1,
                        ));
                    }
                    eprintln!(
                        "load: {transport} statz cross-check — server p99 in [{}, {}] µs, \
                         client p99 in [{}, {}] µs, {}",
                        check.server_ns.0 / 1_000,
                        check.server_ns.1 / 1_000,
                        check.client_ns.0 / 1_000,
                        check.client_ns.1 / 1_000,
                        if check.ok {
                            "consistent"
                        } else {
                            "INCONSISTENT"
                        },
                    );
                    gauges.push((
                        format!("statz_p99_{transport}"),
                        Json::Obj(vec![
                            ("q".to_owned(), Json::Num(check.q)),
                            (
                                "server_lo_ns".to_owned(),
                                Json::Num(check.server_ns.0 as f64),
                            ),
                            (
                                "server_hi_ns".to_owned(),
                                Json::Num(check.server_ns.1 as f64),
                            ),
                            (
                                "client_lo_ns".to_owned(),
                                Json::Num(check.client_ns.0 as f64),
                            ),
                            (
                                "client_hi_ns".to_owned(),
                                Json::Num(check.client_ns.1 as f64),
                            ),
                            ("server_count".to_owned(), Json::Num(server.count() as f64)),
                            ("client_count".to_owned(), Json::Num(client.count() as f64)),
                            ("ok".to_owned(), Json::Bool(check.ok)),
                        ]),
                    ));
                }
                Err(e) => daemon_violations.push(format!("{transport}: {e}")),
            }
        }
        runs.push(run);
    }

    // End-of-run proof that nothing panicked inside the daemon, even
    // where a response got lost: the daemon's own counters must agree
    // with the per-response classification.
    if let Some(handle) = daemon {
        let snapshot = handle.state().loadz_snapshot();
        for counter in ["request_panics", "connection_panics"] {
            let count = snapshot.get(counter).and_then(Json::as_u64).unwrap_or(0);
            if count > 0 {
                daemon_violations.push(format!("daemon counted {count} {counter}"));
            }
        }
        gauges.push(("daemon".to_owned(), snapshot));
        handle.shutdown();
    }
    if let Some(kb) = devharness::bench::peak_rss_kb() {
        gauges.push(("harness_peak_rss_kb".to_owned(), Json::Num(kb as f64)));
    }

    let report = LoadReport {
        spec: SpecEcho {
            seed: opts.seed,
            budget: opts.budget,
            clean_budget,
            hostile_per_mille: mixed_spec.hostile_per_mille,
            corpus_files: mixed_spec.corpus.len() as u64,
            schedule_fingerprint: schedule_fingerprint(&mixed),
        },
        config,
        targets: runs,
        gauges,
    };
    let violations = report.violation_count() + daemon_violations.len() as u64;
    let doc = report.render();
    std::fs::write(&opts.out, format!("{doc}\n"))
        .map_err(|e| Error::io(opts.out.display().to_string(), e))?;

    print_summary(&report, &daemon_violations);
    println!("load report written to {}", opts.out.display());
    if violations > 0 {
        Err(Error::Invalid(format!(
            "load run recorded {violations} violation(s); see {}",
            opts.out.display()
        )))
    } else {
        Ok(())
    }
}

/// The human-readable run summary printed after the report is written.
fn print_summary(report: &LoadReport, daemon_violations: &[String]) {
    println!(
        "load: seed {} budget {} fingerprint {:016x}",
        report.spec.seed, report.spec.budget, report.spec.schedule_fingerprint
    );
    println!(
        "{:<9} {:>12} {:>12} {:>12} {:>12} {:>10} {:>6}",
        "target", "p50 µs", "p95 µs", "p99 µs", "p99 bound", "ops/s", "viol"
    );
    for run in &report.targets {
        let h = run.mixed.wellformed();
        println!(
            "{:<9} {:>12} {:>12} {:>12} {:>12} {:>10} {:>6}",
            run.target,
            h.quantile(0.50) / 1_000,
            h.quantile(0.95) / 1_000,
            h.quantile(0.99) / 1_000,
            run.p99.bound_ns / 1_000,
            run.mixed.throughput_millihz() / 1_000,
            run.violation_count(),
        );
        for message in run.violations().take(5) {
            println!("  violation: {message}");
        }
    }
    for message in daemon_violations {
        println!("  violation: {message}");
    }
}

/// The `load-check` subcommand: validate a written `BENCH_load.json`
/// structurally, and (with `--digest`) print the deterministic section
/// for the replay gate to diff.
///
/// # Errors
///
/// [`Error::Io`] reading the file; [`Error::Invalid`] for a malformed
/// report or one that recorded violations.
pub fn check_report(path: &str, digest: bool) -> Result<(), Error> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let doc = Json::parse(&text).map_err(|e| Error::Invalid(format!("{path}: {e}")))?;
    let summary = cognicrypt_load::report::validate(&doc)
        .map_err(|e| Error::Invalid(format!("{path}: {e}")))?;
    if digest {
        print!(
            "{}",
            cognicrypt_load::report::deterministic_digest(&doc)
                .map_err(|e| Error::Invalid(format!("{path}: {e}")))?
        );
    } else {
        println!(
            "{path}: valid load report ({} results, {} target(s), fingerprint {}, {} violation(s))",
            summary.results.len(),
            summary.targets.len(),
            summary.schedule_fingerprint,
            summary.violation_count(),
        );
    }
    if summary.violation_count() > 0 {
        return Err(Error::Invalid(format!(
            "{path}: report records {} violation(s)",
            summary.violation_count()
        )));
    }
    Ok(())
}
