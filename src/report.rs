//! The Table-1 reporter: runs all eleven shipped use cases through an
//! instrumented engine and renders the paper's evaluation table —
//! per-use-case, per-phase runtime plus the pipeline metrics — as text
//! and as a devharness-JSON document (`REPORT_table1.json`).
//!
//! Wall times vary run to run; everything else in the report (metric
//! counters, histogram summaries, cache traffic, source sizes) is
//! deterministic, which is what [`validate`] checks a written report
//! against.

use std::sync::Arc;

use cognicrypt_core::telemetry::{Metric, Phase, PhaseTimings, UnitTimings};
use cognicrypt_core::GenEngine;
use devharness::json::Json;
use usecases::all_use_cases;

use crate::Error;

/// File name the CLI `report` subcommand writes.
pub const REPORT_FILE: &str = "REPORT_table1.json";

/// One Table-1 row: a use case, its generated size and its per-phase
/// wall time.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Use-case id (1–11, Table 1 numbering).
    pub id: u8,
    /// Use-case name.
    pub name: String,
    /// Generated template class name (the timing unit label).
    pub class: String,
    /// Bytes of generated Java source.
    pub java_bytes: usize,
    /// Per-phase wall time of this use case's generation.
    pub timings: UnitTimings,
}

/// A full Table-1 report: one row per shipped use case plus the
/// engine-level metrics of the run.
#[derive(Debug)]
pub struct Table1Report {
    /// Rows in use-case id order.
    pub rows: Vec<ReportRow>,
    /// Snapshot of the instrumented engine's metrics registry.
    pub metrics: std::collections::BTreeMap<String, Metric>,
}

/// Generates every shipped use case on a fresh instrumented engine and
/// collects the report. Generation runs in id order on one thread, so
/// ORDER-cache traffic in the metrics is reproducible (first sight of a
/// rule is a miss, every revisit a hit).
///
/// # Errors
///
/// [`Error::Rules`] when the shipped rules fail to parse and
/// [`Error::Generation`] when a use case fails to generate — both are
/// build defects for the shipped set.
pub fn build() -> Result<Table1Report, Error> {
    let timings = Arc::new(PhaseTimings::new());
    let engine = GenEngine::builder()
        .rules(rules::load()?)
        .observer(timings.clone())
        .build()?;

    let mut rows = Vec::new();
    for uc in all_use_cases() {
        let generated = engine.generate(&uc.template)?;
        let class = uc.template.class_name.clone();
        let timings = timings
            .unit(&class)
            .expect("a successful generation records spans for its unit");
        rows.push(ReportRow {
            id: uc.id,
            name: uc.name.to_owned(),
            class,
            java_bytes: generated.java_source.len(),
            timings,
        });
    }
    Ok(Table1Report {
        rows,
        metrics: engine.metrics().snapshot(),
    })
}

fn micros(d: std::time::Duration) -> f64 {
    // Round to whole nanoseconds' worth of precision; the JSON writer
    // prints shortest-roundtrip floats.
    d.as_secs_f64() * 1e6
}

/// Renders the report as the text table the `report` subcommand prints.
pub fn render_text(report: &Table1Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<34} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>7}",
        "#", "Use case (paper Table 1)", "collect", "link", "select", "resolve", "assemble", "total µs", "bytes"
    );
    for row in &report.rows {
        let t = &row.timings;
        let _ = writeln!(
            out,
            "{:<4} {:<34} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>7}",
            row.id,
            row.name,
            micros(t.phase(Phase::Collect).total),
            micros(t.phase(Phase::Link).total),
            micros(t.phase(Phase::Select).total),
            micros(t.phase(Phase::Resolve).total),
            micros(t.phase(Phase::Assemble).total),
            micros(t.total()),
            row.java_bytes,
        );
    }
    let _ = writeln!(out, "\nmetrics:");
    for (name, metric) in &report.metrics {
        match metric {
            Metric::Counter(n) => {
                let _ = writeln!(out, "  {name} = {n}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "  {name} = {g} (gauge)");
            }
            Metric::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "  {name}: count={} sum={} min={} max={}",
                    h.count, h.sum, h.min, h.max
                );
            }
        }
    }
    out
}

/// Serializes the report to the devharness-JSON document written as
/// [`REPORT_FILE`].
pub fn to_json(report: &Table1Report) -> Json {
    let rows = report
        .rows
        .iter()
        .map(|row| {
            let phases = Phase::ALL
                .iter()
                .map(|&p| {
                    (
                        p.name().to_owned(),
                        Json::Num(micros(row.timings.phase(p).total)),
                    )
                })
                .collect();
            Json::Obj(vec![
                ("id".to_owned(), Json::Num(f64::from(row.id))),
                ("name".to_owned(), Json::Str(row.name.clone())),
                ("class".to_owned(), Json::Str(row.class.clone())),
                ("phases_us".to_owned(), Json::Obj(phases)),
                ("total_us".to_owned(), Json::Num(micros(row.timings.total()))),
                (
                    "java_bytes".to_owned(),
                    Json::Num(row.java_bytes as f64),
                ),
            ])
        })
        .collect();
    let metrics = report
        .metrics
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(n) => Json::Num(*n as f64),
                Metric::Gauge(g) => Json::Obj(vec![("gauge".to_owned(), Json::Num(*g as f64))]),
                Metric::Histogram(h) => Json::Obj(vec![
                    ("count".to_owned(), Json::Num(h.count as f64)),
                    ("sum".to_owned(), Json::Num(h.sum as f64)),
                    ("min".to_owned(), Json::Num(h.min as f64)),
                    ("max".to_owned(), Json::Num(h.max as f64)),
                ]),
            };
            (name.clone(), value)
        })
        .collect();
    Json::Obj(vec![
        ("report".to_owned(), Json::Str("table1".to_owned())),
        ("use_cases".to_owned(), Json::Arr(rows)),
        ("metrics".to_owned(), Json::Obj(metrics)),
    ])
}

/// Validates a written report document: it must be the `table1` report,
/// cover all eleven use cases (ids 1–11, each with all five phase
/// timings and a total), and carry a non-empty metrics object.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.get("report").and_then(Json::as_str) != Some("table1") {
        return Err("not a table1 report (missing `report: \"table1\"`)".to_owned());
    }
    let cases = doc
        .get("use_cases")
        .and_then(Json::as_arr)
        .ok_or("missing `use_cases` array")?;
    if cases.len() != 11 {
        return Err(format!("expected 11 use cases, found {}", cases.len()));
    }
    let mut seen = [false; 11];
    for case in cases {
        let id = case
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("use case without numeric `id`")?;
        if !(1..=11).contains(&id) {
            return Err(format!("use-case id {id} out of Table-1 range"));
        }
        if std::mem::replace(&mut seen[(id - 1) as usize], true) {
            return Err(format!("use-case id {id} appears twice"));
        }
        for key in ["name", "class"] {
            if case.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("use case {id} missing `{key}`"));
            }
        }
        let phases = case
            .get("phases_us")
            .ok_or_else(|| format!("use case {id} missing `phases_us`"))?;
        for phase in Phase::ALL {
            if phases.get(phase.name()).and_then(Json::as_f64).is_none() {
                return Err(format!("use case {id} missing phase `{phase}` timing"));
            }
        }
        if case.get("total_us").and_then(Json::as_f64).is_none() {
            return Err(format!("use case {id} missing `total_us`"));
        }
    }
    match doc.get("metrics") {
        Some(Json::Obj(members)) if !members.is_empty() => {}
        Some(Json::Obj(_)) => return Err("`metrics` object is empty".to_owned()),
        _ => return Err("missing `metrics` object".to_owned()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_use_cases_and_validates() {
        let report = build().expect("report builds");
        assert_eq!(report.rows.len(), 11);
        let ids: Vec<u8> = report.rows.iter().map(|r| r.id).collect();
        assert_eq!(ids, (1..=11).collect::<Vec<u8>>());
        for row in &report.rows {
            assert!(row.java_bytes > 0, "uc{} emitted nothing", row.id);
            for phase in Phase::ALL {
                assert_eq!(
                    row.timings.phase(phase).spans,
                    1,
                    "uc{} ({}) phase {phase} span count",
                    row.id,
                    row.class
                );
            }
        }
        // Cache traffic was recorded: 14 rules, several shared across
        // use cases, so hits must outnumber first-sight misses.
        assert!(report.metrics.contains_key("order_cache.hits"));
        assert!(report.metrics.contains_key("order_cache.misses"));

        let doc = to_json(&report);
        validate(&doc).expect("fresh report validates");

        // The document round-trips through the devharness parser.
        let reparsed = Json::parse(&doc.to_string()).expect("parses");
        validate(&reparsed).expect("reparsed report validates");
    }

    #[test]
    fn validate_rejects_mutilated_reports() {
        let report = build().expect("report builds");
        let doc = to_json(&report);

        let strip = |doc: &Json, key: &str| -> Json {
            match doc {
                Json::Obj(members) => Json::Obj(
                    members
                        .iter()
                        .filter(|(k, _)| k != key)
                        .cloned()
                        .collect(),
                ),
                other => other.clone(),
            }
        };
        assert!(validate(&strip(&doc, "report")).is_err());
        assert!(validate(&strip(&doc, "use_cases")).is_err());
        assert!(validate(&strip(&doc, "metrics")).is_err());

        // Ten use cases is not Table 1.
        if let Json::Obj(mut members) = doc.clone() {
            for (k, v) in &mut members {
                if k == "use_cases" {
                    if let Json::Arr(cases) = v {
                        cases.pop();
                    }
                }
            }
            assert!(validate(&Json::Obj(members)).is_err());
        }

        let text = render_text(&report);
        assert!(text.contains("SecureHasher") || text.contains("Hashing"));
        assert!(text.contains("order_cache.hits"));
    }
}
