//! The Table-1 reporter: runs all eleven shipped use cases through an
//! instrumented engine and renders the paper's evaluation table —
//! per-use-case, per-phase runtime *and memory* plus the pipeline
//! metrics — as text and as a devharness-JSON document
//! (`REPORT_table1.json`).
//!
//! Memory comes from two instruments. Per-phase `alloc_bytes` /
//! `peak_live_bytes` are allocator-level figures the engine's
//! [`PhaseTimings`] observer collects through
//! [`cognicrypt_core::memtrack`] — they are non-zero only when the
//! running binary installed [`cognicrypt_core::memtrack::TrackingAlloc`]
//! as its global allocator (the CLI does; library test binaries don't,
//! so [`validate`] accepts zeros). The whole-process `peak_rss_kb`
//! comes from [`devharness::bench::peak_rss`] with its source recorded.
//!
//! Wall times and RSS vary run to run; everything else in the report
//! (metric counters, histogram summaries, cache traffic, source sizes)
//! is deterministic, which is what [`validate`] checks a written report
//! against.

use std::sync::Arc;
use std::time::Instant;

use cognicrypt_core::telemetry::{Fanout, GenObserver, Metric, Phase, PhaseTimings, UnitTimings};
use cognicrypt_core::GenEngine;
use devharness::bench::{peak_rss, PeakRss};
use devharness::json::Json;
use rules::PackSource;
use usecases::all_use_cases;

use crate::Error;

/// File name the CLI `report` subcommand writes.
pub const REPORT_FILE: &str = "REPORT_table1.json";

/// One Table-1 row: a use case, its generated size and its per-phase
/// wall time.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Use-case id (catalogue numbering; 1–11 are the paper's Table 1).
    pub id: u8,
    /// Use-case name.
    pub name: String,
    /// Generated template class name (the timing unit label).
    pub class: String,
    /// Bytes of generated Java source.
    pub java_bytes: usize,
    /// Per-phase wall time of this use case's generation.
    pub timings: UnitTimings,
}

/// How the reporting engine booted: which rule pack it loaded, how
/// long loading took, and whether the ORDER artefacts were compiled
/// during warm-up or pre-seeded from a precompiled `.crpack`. A
/// pack-booted run must show `warm_compiled == 0` — the whole point of
/// compiling a pack is that boot performs zero ORDER compilation.
#[derive(Debug, Clone)]
pub struct BootStats {
    /// The opened [`PackSource`], rendered (`embedded`,
    /// `source-dir:<path>`, `compiled:<path>`).
    pub origin: String,
    /// The source kind (`embedded` / `source-dir` / `compiled`).
    pub kind: &'static str,
    /// The `.crpack` format version the pack has or would serialize as.
    pub pack_version: u32,
    /// Content-hash fingerprint over the pack's ORDER fingerprints.
    pub pack_fingerprint: u64,
    /// Rules in the pack.
    pub rules: usize,
    /// Whether the pack carried precompiled ORDER artefacts.
    pub precompiled: bool,
    /// Wall time of the uncached pack open (lex/parse/validate for
    /// sources, checksum + decode for a compiled pack).
    pub rules_load_us: f64,
    /// ORDER artefacts pre-seeded into the cache from the pack.
    pub cache_seeded: usize,
    /// Warm-up lookups served by already-present artefacts.
    pub warm_hits: usize,
    /// Warm-up lookups that had to compile (0 for a pack boot).
    pub warm_compiled: usize,
}

/// A full Table-1 report: one row per shipped use case plus the
/// engine-level metrics of the run.
#[derive(Debug)]
pub struct Table1Report {
    /// Rows in use-case id order.
    pub rows: Vec<ReportRow>,
    /// Snapshot of the instrumented engine's metrics registry.
    pub metrics: std::collections::BTreeMap<String, Metric>,
    /// Whole-process peak RSS after the run, with the facility that
    /// reported it; `None` where the platform exposes neither
    /// `getrusage` nor procfs.
    pub peak_rss: Option<PeakRss>,
    /// How the reporting engine booted (pack origin, load time, warm
    /// cache traffic).
    pub boot: BootStats,
}

/// Generates every shipped use case on a fresh instrumented engine and
/// collects the report. Generation runs in id order on one thread, so
/// ORDER-cache traffic in the metrics is reproducible (first sight of a
/// rule is a miss, every revisit a hit).
///
/// # Errors
///
/// [`Error::Rules`] when the shipped rules fail to parse and
/// [`Error::Generation`] when a use case fails to generate — both are
/// build defects for the shipped set.
pub fn build() -> Result<Table1Report, Error> {
    build_with(None)
}

/// [`build`], with an optional extra observer fanned in alongside the
/// reporter's own [`PhaseTimings`] — this is how the CLI attaches a
/// [`cognicrypt_core::telemetry::TraceRecorder`] to `report --trace`
/// without a second generation pass.
///
/// # Errors
///
/// As [`build`].
pub fn build_with(extra: Option<Arc<dyn GenObserver>>) -> Result<Table1Report, Error> {
    build_from(PackSource::Embedded, extra)
}

/// [`build_with`], over an explicit [`PackSource`] — this is how
/// `report --rules <dir|pack.crpack>` reports on a pack other than the
/// embedded one. The open is uncached and timed, and the warm-up cache
/// traffic is recorded, so the report's `boot` section shows the real
/// cold-start cost of the chosen loading path: a compiled pack seeds
/// every ORDER artefact and must warm with `warm_compiled == 0`.
///
/// # Errors
///
/// As [`build`], plus the typed pack open failures.
pub fn build_from(
    source: PackSource,
    extra: Option<Arc<dyn GenObserver>>,
) -> Result<Table1Report, Error> {
    let timings = Arc::new(PhaseTimings::new());
    let observer: Arc<dyn GenObserver> = match extra {
        Some(extra) => Arc::new(Fanout::new().with(timings.clone()).with(extra)),
        None => timings.clone(),
    };
    let load_started = Instant::now();
    let pack = rules::open_uncached(source)?;
    let rules_load_us = load_started.elapsed().as_secs_f64() * 1e6;
    let mut boot = BootStats {
        origin: pack.origin.to_string(),
        kind: pack.origin.kind(),
        pack_version: pack.version,
        pack_fingerprint: pack.pack_fingerprint(),
        rules: pack.rules.len(),
        precompiled: pack.is_precompiled(),
        rules_load_us,
        cache_seeded: 0,
        warm_hits: 0,
        warm_compiled: 0,
    };
    let engine = GenEngine::builder()
        .rules(pack.rules.clone())
        .observer(observer)
        .build()?;
    boot.cache_seeded = pack.seed(engine.order_cache());
    if pack.is_precompiled() {
        // A pack boot warms eagerly and must find every artefact
        // seeded: `warm_compiled == 0` is the claim a `.crpack` makes.
        // A source boot keeps the historical lazy behaviour so the
        // report's cache-traffic metrics stay first-sight-miss /
        // revisit-hit deterministic.
        let warm = engine.warm_traced()?;
        boot.warm_hits = warm.hits;
        boot.warm_compiled = warm.compiled;
    }

    let mut rows = Vec::new();
    for uc in all_use_cases() {
        let generated = engine.generate(&uc.template)?;
        let class = uc.template.class_name.clone();
        let timings = timings
            .unit(&class)
            .expect("a successful generation records spans for its unit");
        rows.push(ReportRow {
            id: uc.id,
            name: uc.name.to_owned(),
            class,
            java_bytes: generated.java_source.len(),
            timings,
        });
    }
    Ok(Table1Report {
        rows,
        metrics: engine.metrics().snapshot(),
        peak_rss: peak_rss(),
        boot,
    })
}

fn micros(d: std::time::Duration) -> f64 {
    // Round to whole nanoseconds' worth of precision; the JSON writer
    // prints shortest-roundtrip floats.
    d.as_secs_f64() * 1e6
}

/// Renders the report as the text table the `report` subcommand prints.
pub fn render_text(report: &Table1Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<34} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>7}",
        "#",
        "Use case (paper Table 1)",
        "collect",
        "link",
        "select",
        "resolve",
        "assemble",
        "total µs",
        "bytes"
    );
    for row in &report.rows {
        let t = &row.timings;
        let _ = writeln!(
            out,
            "{:<4} {:<34} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>7}",
            row.id,
            row.name,
            micros(t.phase(Phase::Collect).total),
            micros(t.phase(Phase::Link).total),
            micros(t.phase(Phase::Select).total),
            micros(t.phase(Phase::Resolve).total),
            micros(t.phase(Phase::Assemble).total),
            micros(t.total()),
            row.java_bytes,
        );
    }
    let _ = writeln!(
        out,
        "\n{:<4} {:<34} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "#",
        "Memory (kB allocated)",
        "collect",
        "link",
        "select",
        "resolve",
        "assemble",
        "total kB",
        "peak kB"
    );
    for row in &report.rows {
        let t = &row.timings;
        let kb = |p: Phase| t.phase(p).alloc_bytes as f64 / 1024.0;
        let _ = writeln!(
            out,
            "{:<4} {:<34} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>9.1}",
            row.id,
            row.name,
            kb(Phase::Collect),
            kb(Phase::Link),
            kb(Phase::Select),
            kb(Phase::Resolve),
            kb(Phase::Assemble),
            t.alloc_total_bytes() as f64 / 1024.0,
            t.peak_live_bytes() as f64 / 1024.0,
        );
    }
    match report.peak_rss {
        Some(p) => {
            let _ = writeln!(
                out,
                "\nprocess peak RSS: {} kB (via {})",
                p.kb,
                p.source.name()
            );
        }
        None => {
            let _ = writeln!(out, "\nprocess peak RSS: unavailable on this platform");
        }
    }
    let boot = &report.boot;
    let _ = writeln!(
        out,
        "boot: {} ({} rules, pack v{} fingerprint {:016x}) loaded in {:.1} µs; {} artefacts seeded, warm-up {} hits / {} compiled",
        boot.origin,
        boot.rules,
        boot.pack_version,
        boot.pack_fingerprint,
        boot.rules_load_us,
        boot.cache_seeded,
        boot.warm_hits,
        boot.warm_compiled,
    );
    if report
        .rows
        .iter()
        .all(|r| r.timings.alloc_total_bytes() == 0)
    {
        let _ = writeln!(
            out,
            "note: allocation columns are zero — the running binary did not install memtrack::TrackingAlloc"
        );
    }
    let _ = writeln!(out, "\nmetrics:");
    for (name, metric) in &report.metrics {
        match metric {
            Metric::Counter(n) => {
                let _ = writeln!(out, "  {name} = {n}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "  {name} = {g} (gauge)");
            }
            Metric::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "  {name}: count={} sum={} min={} max={}",
                    h.count, h.sum, h.min, h.max
                );
            }
        }
    }
    out
}

/// Serializes the report to the devharness-JSON document written as
/// [`REPORT_FILE`].
pub fn to_json(report: &Table1Report) -> Json {
    let rows = report
        .rows
        .iter()
        .map(|row| {
            let phases = Phase::ALL
                .iter()
                .map(|&p| {
                    (
                        p.name().to_owned(),
                        Json::Num(micros(row.timings.phase(p).total)),
                    )
                })
                .collect();
            let mem = Phase::ALL
                .iter()
                .map(|&p| {
                    let stat = row.timings.phase(p);
                    (
                        p.name().to_owned(),
                        Json::Obj(vec![
                            ("alloc_bytes".to_owned(), Json::Num(stat.alloc_bytes as f64)),
                            (
                                "peak_live_bytes".to_owned(),
                                Json::Num(stat.peak_live_bytes as f64),
                            ),
                        ]),
                    )
                })
                .collect();
            Json::Obj(vec![
                ("id".to_owned(), Json::Num(f64::from(row.id))),
                ("name".to_owned(), Json::Str(row.name.clone())),
                ("class".to_owned(), Json::Str(row.class.clone())),
                ("phases_us".to_owned(), Json::Obj(phases)),
                (
                    "total_us".to_owned(),
                    Json::Num(micros(row.timings.total())),
                ),
                ("phases_mem".to_owned(), Json::Obj(mem)),
                (
                    "alloc_total_bytes".to_owned(),
                    Json::Num(row.timings.alloc_total_bytes() as f64),
                ),
                (
                    "peak_live_bytes".to_owned(),
                    Json::Num(row.timings.peak_live_bytes() as f64),
                ),
                ("java_bytes".to_owned(), Json::Num(row.java_bytes as f64)),
            ])
        })
        .collect();
    let metrics = report
        .metrics
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(n) => Json::Num(*n as f64),
                Metric::Gauge(g) => Json::Obj(vec![("gauge".to_owned(), Json::Num(*g as f64))]),
                Metric::Histogram(h) => Json::Obj(vec![
                    ("count".to_owned(), Json::Num(h.count as f64)),
                    ("sum".to_owned(), Json::Num(h.sum as f64)),
                    ("min".to_owned(), Json::Num(h.min as f64)),
                    ("max".to_owned(), Json::Num(h.max as f64)),
                ]),
            };
            (name.clone(), value)
        })
        .collect();
    let boot = &report.boot;
    let boot_json = Json::Obj(vec![
        ("origin".to_owned(), Json::Str(boot.origin.clone())),
        ("kind".to_owned(), Json::Str(boot.kind.to_owned())),
        (
            "pack_version".to_owned(),
            Json::Num(f64::from(boot.pack_version)),
        ),
        (
            "pack_fingerprint".to_owned(),
            Json::Str(format!("{:016x}", boot.pack_fingerprint)),
        ),
        ("rules".to_owned(), Json::Num(boot.rules as f64)),
        (
            "precompiled".to_owned(),
            Json::Num(f64::from(u8::from(boot.precompiled))),
        ),
        ("rules_load_us".to_owned(), Json::Num(boot.rules_load_us)),
        (
            "cache_seeded".to_owned(),
            Json::Num(boot.cache_seeded as f64),
        ),
        ("warm_hits".to_owned(), Json::Num(boot.warm_hits as f64)),
        (
            "warm_compiled".to_owned(),
            Json::Num(boot.warm_compiled as f64),
        ),
    ]);
    Json::Obj(vec![
        ("report".to_owned(), Json::Str("table1".to_owned())),
        ("use_cases".to_owned(), Json::Arr(rows)),
        ("metrics".to_owned(), Json::Obj(metrics)),
        ("boot".to_owned(), boot_json),
        (
            "peak_rss_kb".to_owned(),
            match report.peak_rss {
                Some(p) => Json::Num(p.kb as f64),
                None => Json::Null,
            },
        ),
        (
            "peak_rss_source".to_owned(),
            match report.peak_rss {
                Some(p) => Json::Str(p.source.name().to_owned()),
                None => Json::Null,
            },
        ),
    ])
}

/// Validates a written report document: it must be the `table1` report,
/// cover every catalogued use case (sequential ids from 1, each with all
/// five phase timings and a total, plus per-phase
/// `alloc_bytes`/`peak_live_bytes`
/// memory figures and row totals), carry a non-empty metrics object,
/// declare its whole-process `peak_rss_kb` with the source that
/// measured it (both may be null where the platform exposes neither),
/// and carry a `boot` section naming the rule-pack origin and its
/// load/warm-up figures — with zero warm-up compilations whenever the
/// pack was precompiled.
///
/// Memory figures of zero are accepted: they mean the writing binary
/// did not install the tracking allocator, not a malformed report.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.get("report").and_then(Json::as_str) != Some("table1") {
        return Err("not a table1 report (missing `report: \"table1\"`)".to_owned());
    }
    let cases = doc
        .get("use_cases")
        .and_then(Json::as_arr)
        .ok_or("missing `use_cases` array")?;
    let expected = usecases::all_use_cases().len();
    if cases.len() != expected {
        return Err(format!(
            "expected {expected} use cases, found {}",
            cases.len()
        ));
    }
    let mut seen = vec![false; expected];
    for case in cases {
        let id = case
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("use case without numeric `id`")?;
        if !(1..=expected as u64).contains(&id) {
            return Err(format!("use-case id {id} out of catalogue range"));
        }
        if std::mem::replace(&mut seen[(id - 1) as usize], true) {
            return Err(format!("use-case id {id} appears twice"));
        }
        for key in ["name", "class"] {
            if case.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("use case {id} missing `{key}`"));
            }
        }
        let phases = case
            .get("phases_us")
            .ok_or_else(|| format!("use case {id} missing `phases_us`"))?;
        for phase in Phase::ALL {
            if phases.get(phase.name()).and_then(Json::as_f64).is_none() {
                return Err(format!("use case {id} missing phase `{phase}` timing"));
            }
        }
        if case.get("total_us").and_then(Json::as_f64).is_none() {
            return Err(format!("use case {id} missing `total_us`"));
        }
        let mem = case
            .get("phases_mem")
            .ok_or_else(|| format!("use case {id} missing `phases_mem`"))?;
        for phase in Phase::ALL {
            let slot = mem
                .get(phase.name())
                .ok_or_else(|| format!("use case {id} missing phase `{phase}` memory"))?;
            for key in ["alloc_bytes", "peak_live_bytes"] {
                if slot.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!(
                        "use case {id} phase `{phase}` missing integer `{key}`"
                    ));
                }
            }
        }
        for key in ["alloc_total_bytes", "peak_live_bytes"] {
            if case.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("use case {id} missing integer `{key}`"));
            }
        }
    }
    match doc.get("metrics") {
        Some(Json::Obj(members)) if !members.is_empty() => {}
        Some(Json::Obj(_)) => return Err("`metrics` object is empty".to_owned()),
        _ => return Err("missing `metrics` object".to_owned()),
    }
    let boot = doc.get("boot").ok_or("missing `boot` object")?;
    for key in ["origin", "kind", "pack_fingerprint"] {
        if boot.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("`boot` missing string `{key}`"));
        }
    }
    for key in [
        "pack_version",
        "rules",
        "precompiled",
        "rules_load_us",
        "cache_seeded",
        "warm_hits",
        "warm_compiled",
    ] {
        if boot.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("`boot` missing numeric `{key}`"));
        }
    }
    // The invariant the whole precompiled-pack subsystem exists for: a
    // pack-booted report must have compiled nothing during warm-up.
    let precompiled = boot.get("precompiled").and_then(Json::as_f64) == Some(1.0);
    let compiled = boot
        .get("warm_compiled")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if precompiled && compiled != 0.0 {
        return Err(format!(
            "precompiled boot reports {compiled} warm-up compilations (must be 0)"
        ));
    }
    match doc.get("peak_rss_kb") {
        Some(Json::Null) | Some(Json::Num(_)) => {}
        Some(_) => return Err("`peak_rss_kb` must be a number or null".to_owned()),
        None => return Err("missing `peak_rss_kb`".to_owned()),
    }
    match doc.get("peak_rss_source") {
        Some(Json::Null) | Some(Json::Str(_)) => {}
        Some(_) => return Err("`peak_rss_source` must be a string or null".to_owned()),
        None => return Err("missing `peak_rss_source`".to_owned()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_use_cases_and_validates() {
        let report = build().expect("report builds");
        let expected = usecases::all_use_cases().len() as u8;
        assert!(expected >= 25);
        assert_eq!(report.rows.len(), expected as usize);
        let ids: Vec<u8> = report.rows.iter().map(|r| r.id).collect();
        assert_eq!(ids, (1..=expected).collect::<Vec<u8>>());
        for row in &report.rows {
            assert!(row.java_bytes > 0, "uc{} emitted nothing", row.id);
            for phase in Phase::ALL {
                assert_eq!(
                    row.timings.phase(phase).spans,
                    1,
                    "uc{} ({}) phase {phase} span count",
                    row.id,
                    row.class
                );
            }
        }
        // Cache traffic was recorded: 16 rules, several shared across
        // use cases, so hits must outnumber first-sight misses.
        assert!(report.metrics.contains_key("order_cache.hits"));
        assert!(report.metrics.contains_key("order_cache.misses"));

        let doc = to_json(&report);
        validate(&doc).expect("fresh report validates");

        // Every row carries the per-phase memory columns (zeros here:
        // this test binary does not install the tracking allocator).
        let cases = doc.get("use_cases").and_then(Json::as_arr).unwrap();
        for case in cases {
            let mem = case.get("phases_mem").expect("phases_mem present");
            for phase in Phase::ALL {
                let slot = mem
                    .get(phase.name())
                    .expect("every phase has a memory slot");
                assert!(slot.get("alloc_bytes").and_then(Json::as_u64).is_some());
                assert!(slot.get("peak_live_bytes").and_then(Json::as_u64).is_some());
            }
            assert!(case
                .get("alloc_total_bytes")
                .and_then(Json::as_u64)
                .is_some());
        }
        // The process-level RSS figure is present on Linux, with its
        // measuring facility named.
        if cfg!(target_os = "linux") {
            assert!(doc.get("peak_rss_kb").and_then(Json::as_u64).unwrap_or(0) > 0);
            assert!(doc.get("peak_rss_source").and_then(Json::as_str).is_some());
        }

        // The document round-trips through the devharness parser.
        let reparsed = Json::parse(&doc.to_string()).expect("parses");
        validate(&reparsed).expect("reparsed report validates");
    }

    #[test]
    fn build_with_fans_hooks_out_to_the_extra_observer() {
        let recorder = Arc::new(cognicrypt_core::telemetry::TraceRecorder::new());
        let report = build_with(Some(recorder.clone())).expect("report builds");
        let expected = usecases::all_use_cases().len();
        assert_eq!(report.rows.len(), expected);
        // The recorder saw the whole instrumented run: every use case ×
        // 5 phases × (B + E), plus instant events from inside phases.
        assert!(
            recorder.len() >= expected * 10,
            "only {} events recorded",
            recorder.len()
        );
        cognicrypt_core::telemetry::validate_trace(&recorder.to_json())
            .expect("recorded trace validates");
    }

    #[test]
    fn pack_booted_report_compiles_nothing_and_matches_the_embedded_run() {
        let dir = std::env::temp_dir().join(format!("cgen-report-pack-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("jca.crpack");
        let bytes = rules::open(PackSource::Embedded)
            .unwrap()
            .to_bytes()
            .unwrap();
        std::fs::write(&pack_path, bytes).unwrap();

        let from_pack = build_from(PackSource::Compiled(pack_path.clone()), None)
            .expect("pack-booted report builds");
        let boot = &from_pack.boot;
        assert_eq!(boot.kind, "compiled");
        assert!(boot.precompiled);
        assert!(boot.cache_seeded > 0);
        assert_eq!(boot.warm_hits, boot.cache_seeded);
        assert_eq!(boot.warm_compiled, 0, "a .crpack boot must compile nothing");

        // Same generated output as an embedded-source run, row by row.
        let from_source = build().expect("embedded report builds");
        assert!(!from_source.boot.precompiled);
        assert_eq!(from_source.boot.cache_seeded, 0);
        let sizes = |r: &Table1Report| -> Vec<(u8, usize)> {
            r.rows.iter().map(|row| (row.id, row.java_bytes)).collect()
        };
        assert_eq!(sizes(&from_pack), sizes(&from_source));

        validate(&to_json(&from_pack)).expect("pack-booted report validates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_mutilated_reports() {
        let report = build().expect("report builds");
        let doc = to_json(&report);

        let strip = |doc: &Json, key: &str| -> Json {
            match doc {
                Json::Obj(members) => {
                    Json::Obj(members.iter().filter(|(k, _)| k != key).cloned().collect())
                }
                other => other.clone(),
            }
        };
        assert!(validate(&strip(&doc, "report")).is_err());
        assert!(validate(&strip(&doc, "use_cases")).is_err());
        assert!(validate(&strip(&doc, "metrics")).is_err());
        assert!(validate(&strip(&doc, "boot")).is_err());
        assert!(validate(&strip(&doc, "peak_rss_kb")).is_err());
        assert!(validate(&strip(&doc, "peak_rss_source")).is_err());

        // A row without its memory columns is rejected.
        if let Json::Obj(mut members) = doc.clone() {
            for (k, v) in &mut members {
                if k == "use_cases" {
                    if let Json::Arr(cases) = v {
                        cases[0] = strip(&cases[0], "phases_mem");
                    }
                }
            }
            assert!(validate(&Json::Obj(members))
                .unwrap_err()
                .contains("phases_mem"));
        }

        // Ten use cases is not Table 1.
        if let Json::Obj(mut members) = doc.clone() {
            for (k, v) in &mut members {
                if k == "use_cases" {
                    if let Json::Arr(cases) = v {
                        cases.pop();
                    }
                }
            }
            assert!(validate(&Json::Obj(members)).is_err());
        }

        let text = render_text(&report);
        assert!(text.contains("SecureHasher") || text.contains("Hashing"));
        assert!(text.contains("order_cache.hits"));
    }
}
