//! Minimal HTTP/1.1 over `std::net::TcpStream` — just enough of the
//! protocol for the daemon's routes, written defensively: header and
//! body caps, read timeouts, typed 4xx/5xx for every malformed input.
//! One request per connection (`Connection: close`), which keeps the
//! parser stateless and makes hostile connection reuse a non-issue.
//!
//! The same module carries the client side ([`request`]): the
//! `serve-check` subcommand and the integration tests speak to the
//! daemon through it, so client and server agree on the framing by
//! construction.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use super::{Request, Response, ServerState, IO_TIMEOUT};

/// Upper bound on the request line plus headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// Serves one HTTP exchange on `stream` and closes it.
pub fn serve_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let response = match read_request(&mut reader) {
        Ok((method, path, body)) => match route(&method, &path, &body) {
            Ok(request) => state.handle_tagged("http", &request),
            Err(response) => {
                state.record_rejected("http", &response);
                response
            }
        },
        Err(response) => {
            state.record_rejected("http", &response);
            response
        }
    };
    write_response(stream, &response);
}

/// Reads and frames one request: request line, headers (bounded),
/// `Content-Length` body (bounded). Anything outside the bounds or the
/// grammar yields a typed 4xx instead of an io error or a panic.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<(String, String, String), Response> {
    let request_line = read_head_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(protocol_error(400, "malformed request line"));
    }

    let mut content_length: usize = 0;
    let mut head_bytes = request_line.len();
    loop {
        let line = read_head_line(reader)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(protocol_error(431, "headers exceed the 8KiB cap"));
        }
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| protocol_error(400, "unparsable Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(protocol_error(413, "body exceeds the 64KiB cap"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| protocol_error(400, "body shorter than Content-Length"))?;
    let body = String::from_utf8(body).map_err(|_| protocol_error(400, "body is not UTF-8"))?;
    Ok((method, path, body))
}

/// Reads one CRLF (or bare LF) terminated header line, enforcing the
/// head cap even against a single line with no terminator.
fn read_head_line(reader: &mut BufReader<TcpStream>) -> Result<String, Response> {
    let mut line = String::new();
    let mut limited = reader.take(MAX_HEAD_BYTES as u64 + 1);
    match limited.read_line(&mut line) {
        Ok(0) => Err(protocol_error(400, "connection closed mid-request")),
        Ok(n) if n > MAX_HEAD_BYTES => Err(protocol_error(431, "header line exceeds the cap")),
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(line)
        }
        Err(_) => Err(protocol_error(400, "unreadable request head")),
    }
}

/// Maps `(method, path, body)` to a protocol [`Request`].
fn route(method: &str, path: &str, body: &str) -> Result<Request, Response> {
    let (path, query) = match path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (path, ""),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(Request::Healthz),
        ("GET", ["metrics"]) => Ok(Request::Metrics),
        ("GET", ["loadz"]) => Ok(Request::Loadz),
        ("GET", ["generate", selector]) => Ok(Request::Generate(percent_decode(selector))),
        ("POST", ["generate"]) => {
            let selector = body.trim();
            if selector.is_empty() {
                Err(protocol_error(400, "POST /generate needs a selector body"))
            } else {
                Ok(Request::Generate(selector.to_owned()))
            }
        }
        ("GET", ["batch"]) => Ok(Request::Batch(cognicrypt_core::GenEngine::DEFAULT_THREADS)),
        ("GET", ["batch", threads]) => match threads.parse::<usize>() {
            Ok(n) => Ok(Request::Batch(n)),
            Err(_) => Err(protocol_error(400, "batch thread count must be an integer")),
        },
        ("GET", ["report"]) => Ok(Request::Report),
        ("POST", ["reload"]) => Ok(Request::Reload),
        ("GET", ["tracez"]) => Ok(Request::Tracez {
            errors_only: query_flag(query, "errors"),
        }),
        ("GET", ["statz"]) => Ok(Request::Statz {
            json: query_flag(query, "json"),
        }),
        ("POST", ["profilez"]) => {
            let requests = body.trim();
            if requests.is_empty() {
                Ok(Request::ProfilezArm(1))
            } else {
                requests
                    .parse::<u64>()
                    .map(Request::ProfilezArm)
                    .map_err(|_| protocol_error(400, "profilez request count must be an integer"))
            }
        }
        ("GET", ["profilez"]) => Ok(Request::ProfilezGet),
        ("POST", ["shutdown"]) => Ok(Request::Shutdown),
        (
            _,
            ["healthz" | "metrics" | "loadz" | "generate" | "batch" | "report" | "reload" | "tracez"
            | "statz" | "profilez" | "shutdown", ..],
        ) => Err(protocol_error(405, "method not allowed for this route")),
        _ => Err(protocol_error(404, "no such route")),
    }
}

/// Whether a `?flag=1`-style query member is set: present with no
/// value, or any value other than `0`.
fn query_flag(query: &str, name: &str) -> bool {
    query.split('&').any(|member| {
        let (key, value) = match member.split_once('=') {
            Some((key, value)) => (key, value),
            None => (member, ""),
        };
        key == name && value != "0"
    })
}

/// Decodes `%XX` escapes and `+` (space) in a path segment; invalid
/// escapes pass through literally — the selector lookup will reject
/// them with a typed usage error.
fn percent_decode(segment: &str) -> String {
    let bytes = segment.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                match (hex_digit(bytes[i + 1]), hex_digit(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A typed protocol-level error response (the request never reached
/// the dispatch core).
fn protocol_error(code: u16, message: &str) -> Response {
    use devharness::json::Json;
    let class = match code {
        404 => "not_found",
        405 => "method_not_allowed",
        413 | 431 => "too_large",
        _ => "protocol",
    };
    Response {
        code,
        class,
        content_type: "application/json",
        body: format!(
            "{}\n",
            Json::Obj(vec![
                ("error".to_owned(), Json::Str(class.to_owned())),
                ("message".to_owned(), Json::Str(message.to_owned())),
            ])
        ),
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Status",
    }
}

fn write_response(mut stream: TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.code,
        status_text(response.code),
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
    // An early error response leaves unread request bytes behind (e.g.
    // a refused header bomb). Closing with unread data pending makes
    // the kernel send RST, which can destroy the buffered response
    // before the client reads it — so signal end-of-response, then
    // drain a bounded amount before closing.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Client side: one HTTP exchange against `addr`. Returns the status
/// code and body. Used by `cognicryptgen serve-check`, the verify
/// script and the integration tests.
///
/// # Errors
///
/// Connection, write or read failures; a malformed status line from
/// something that is not this daemon.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok((
        code,
        String::from_utf8(body).map_err(|e| std::io::Error::other(e.to_string()))?,
    ))
}
