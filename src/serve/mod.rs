//! `cognicryptgen serve` — a long-lived generation daemon over
//! `std::net`, zero external dependencies.
//!
//! Everything else in this workspace is one-shot: parse rules, compile
//! ORDERs, generate, exit. A production system serving heavy traffic
//! needs a *resident* process that pays those costs once and then
//! answers requests from warm state. This module is that process:
//!
//! * one warm [`GenEngine`] (rules parsed once, every ORDER
//!   precompiled at boot) behind a swap lock, plus the process-wide
//!   compiled-ORDER cache shared across engine generations;
//! * two transports over one transport-agnostic request core:
//!   minimal HTTP/1.1 on a [`std::net::TcpListener`] ([`http`]) and a
//!   line/JSON protocol on a Unix socket ([`uds`], unix only);
//! * `generate`, `batch` and `report` served concurrently — batch
//!   requests fan out over the engine's existing scatter pool;
//! * `/metrics` rendered from the daemon's [`MetricsRegistry`] (merged
//!   per request, never sampled) plus the engine registry and the
//!   daemon-lifetime allocator counters from
//!   [`cognicrypt_core::memtrack`];
//! * rule-pack hot-reload: `/reload` re-opens the configured
//!   [`PackSource`] (a `*.crysl` source directory or a precompiled
//!   `.crpack` file, auto-detected), builds a
//!   successor engine sharing the warm cache, swaps it in, then prunes
//!   exactly the cache entries whose content-hash fingerprints the new
//!   pack no longer produces. A stale hit is impossible by
//!   construction — the cache key is the hash of the compilation
//!   input (`tests/cache_key_property.rs`) — so pruning is a memory
//!   bound, not a correctness requirement.
//!
//! Error discipline: every request is handled under `catch_unwind`
//! with the same typed [`Error`] classes (and exit-code mapping) as
//! the CLI. Hostile traffic gets a typed protocol error; it can
//! neither panic the daemon nor perturb concurrent well-formed
//! requests (the `serve_soak` suite drives thousands of mixed requests
//! to prove it).

pub mod http;
pub mod obs;
#[cfg(unix)]
pub mod uds;

use std::collections::HashSet;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cognicrypt_core::memtrack::{self, AllocScope};
use cognicrypt_core::telemetry::{MetricsCollector, MetricsRegistry};
use cognicrypt_core::GenEngine;
use devharness::json::Json;
use rules::{catalog_pack, PackManifest, PackSource, RulePack};
use usecases::all_use_cases;

use crate::{find_use_case, report, Error};

/// How long a worker blocks in `accept` polling before rechecking the
/// stop flag. Listeners run non-blocking; this is the shutdown latency
/// ceiling, not a per-request cost.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket read/write timeout: a hostile client that
/// connects and stalls forever must release its worker.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Daemon configuration, as parsed from `cognicryptgen serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP address for the HTTP transport (`127.0.0.1:0` picks a free
    /// port). `None` disables HTTP.
    pub http_addr: Option<String>,
    /// Path for the Unix-socket transport. `None` disables it.
    pub uds_path: Option<PathBuf>,
    /// Accept-pool workers per transport.
    pub threads: usize,
    /// Rule pack served instead of the embedded JCA set, re-read on
    /// every `reload`: a directory of `*.crysl` sources or a
    /// precompiled `.crpack` file, auto-detected via
    /// [`PackSource::detect`]. `None` serves the embedded pack.
    pub rules_path: Option<PathBuf>,
    /// Requests at least this slow are logged to stderr and counted as
    /// `serve.requests.slow`. `None` disables slow-request logging.
    pub slow_ms: Option<u64>,
    /// Access records kept for `/tracez`
    /// ([`obs::DEFAULT_RING_CAPACITY`] by default); 0 disables
    /// per-request recording entirely (the bench baseline).
    pub obs_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            http_addr: None,
            uds_path: None,
            threads: 0,
            rules_path: None,
            slow_ms: None,
            obs_capacity: obs::DEFAULT_RING_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// A config serving HTTP on `addr` with the default pool.
    pub fn http(addr: impl Into<String>) -> Self {
        ServeConfig {
            http_addr: Some(addr.into()),
            threads: GenEngine::DEFAULT_THREADS,
            ..ServeConfig::default()
        }
    }

    /// Checks the configuration before any resource is bound.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] when no transport is enabled or the thread
    /// count is zero — zero workers can serve nothing, so it is
    /// rejected here exactly as `batch 0` is rejected by the CLI.
    pub fn validate(&self) -> Result<(), Error> {
        if self.threads == 0 {
            return Err(Error::Usage(
                "thread count must be at least 1, got 0".to_owned(),
            ));
        }
        if self.http_addr.is_none() && self.uds_path.is_none() {
            return Err(Error::Usage(
                "serve needs at least one transport: --listen <addr> or --socket <path>".to_owned(),
            ));
        }
        Ok(())
    }
}

/// Pack identity served by a daemon right now, surfaced in `/loadz`
/// and `/metrics` so operators can tell which rules — and which
/// loading path — a resident process is actually using.
#[derive(Debug, Clone)]
struct PackInfo {
    origin: String,
    origin_kind: &'static str,
    manifest: PackManifest,
    version: u32,
    fingerprint: u64,
    rules: usize,
    precompiled: bool,
}

impl PackInfo {
    fn of(pack: &RulePack) -> PackInfo {
        PackInfo {
            origin: pack.origin.to_string(),
            origin_kind: pack.origin.kind(),
            manifest: pack.manifest.clone(),
            version: pack.version,
            fingerprint: pack.pack_fingerprint(),
            rules: pack.rules.len(),
            precompiled: pack.is_precompiled(),
        }
    }

    /// The catalogued use-case ids the served pack declares, when its
    /// manifest names a shipped catalog entry; `None` (the full
    /// catalogue) for source dirs and foreign packs.
    fn declared_cases(&self) -> Option<&'static [u8]> {
        catalog_pack(&self.manifest.name, Some(self.manifest.version)).map(|spec| spec.use_cases)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("origin".to_owned(), Json::Str(self.origin.clone())),
            ("manifest".to_owned(), Json::Str(self.manifest.to_string())),
            ("kind".to_owned(), Json::Str(self.origin_kind.to_owned())),
            ("version".to_owned(), Json::Num(f64::from(self.version))),
            (
                "fingerprint".to_owned(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("rules".to_owned(), Json::Num(self.rules as f64)),
            (
                "precompiled".to_owned(),
                Json::Num(f64::from(u8::from(self.precompiled))),
            ),
        ])
    }
}

/// One protocol request, decoded from either transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Healthz,
    /// Render the daemon + engine metrics.
    Metrics,
    /// A machine-readable load snapshot: request/error/panic totals and
    /// the allocator gauges, as one JSON object. The load harness polls
    /// this instead of parsing the `/metrics` text.
    Loadz,
    /// Generate one use case (id or name fragment).
    Generate(String),
    /// Generate every shipped use case over `threads` workers.
    Batch(usize),
    /// Build the Table-1 report as JSON.
    Report,
    /// Hot-reload the rule pack and prune the compiled-ORDER cache.
    Reload,
    /// The access-record ring, newest first; optionally errors only.
    Tracez {
        /// Keep only records whose outcome class is not `"ok"`.
        errors_only: bool,
    },
    /// Latency quantiles per `transport.endpoint.class` key: a
    /// human-readable table, or serialized histograms as JSON.
    Statz {
        /// Render serialized histograms instead of the table.
        json: bool,
    },
    /// Arm a trace-capture window over the next N traced requests.
    ProfilezArm(u64),
    /// Fetch the finished trace capture.
    ProfilezGet,
    /// Stop accepting and drain.
    Shutdown,
}

impl Request {
    /// Stable lowercase name, used in `serve.requests.<name>` metrics.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Healthz => "healthz",
            Request::Metrics => "metrics",
            Request::Loadz => "loadz",
            Request::Generate(_) => "generate",
            Request::Batch(_) => "batch",
            Request::Report => "report",
            Request::Reload => "reload",
            Request::Tracez { .. } => "tracez",
            Request::Statz { .. } => "statz",
            Request::ProfilezArm(_) => "profilez_arm",
            Request::ProfilezGet => "profilez",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A finished response, transport-agnostic: the HTTP layer maps `code`
/// to a status line, the line protocol maps `class` to its JSON.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (`200`, `400`, `500`, …).
    pub code: u16,
    /// `"ok"` for success, the [`Error`] class name otherwise.
    pub class: &'static str,
    /// Body media type (`text/plain` or `application/json`).
    pub content_type: &'static str,
    /// Response payload.
    pub body: String,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            code: 200,
            class: "ok",
            content_type,
            body,
        }
    }

    /// Encodes a typed error as a JSON body with the class, message
    /// and the CLI exit code of the same failure — scripts and clients
    /// branch on the class exactly as shell scripts branch on the exit
    /// code.
    pub fn from_error(err: &Error) -> Response {
        let (class, code) = match err {
            Error::Usage(_) => ("usage", 400),
            Error::Rules(_) => ("rules", 500),
            Error::Generation(_) => ("generation", 500),
            Error::Engine(_) => ("engine", 500),
            Error::EngineBuild(_) => ("engine", 500),
            Error::Io { .. } => ("io", 500),
            Error::Invalid(_) => ("invalid", 400),
        };
        let doc = Json::Obj(vec![
            ("error".to_owned(), Json::Str(class.to_owned())),
            ("message".to_owned(), Json::Str(err.to_string())),
            (
                "exit_code".to_owned(),
                Json::Num(f64::from(err.exit_code())),
            ),
        ]);
        Response {
            code,
            class,
            content_type: "application/json",
            body: format!("{doc}\n"),
        }
    }
}

/// The daemon's shared state: the swappable warm engine, the
/// daemon-lifetime metrics registry, and the stop flag every worker
/// polls.
pub struct ServerState {
    engine: RwLock<Arc<GenEngine>>,
    metrics: Arc<MetricsRegistry>,
    rules_path: Option<PathBuf>,
    pack_info: RwLock<PackInfo>,
    obs: obs::RequestObs,
    profile: Arc<obs::ProfileSwitch>,
    slow_ns: Option<u64>,
    stop: AtomicBool,
}

impl ServerState {
    /// The [`PackSource`] this daemon (re)loads from: the configured
    /// path — re-classified dir-vs-file on every call, so an operator
    /// can even swap a source directory for a `.crpack` between
    /// reloads — or the embedded set.
    fn pack_source(&self) -> PackSource {
        match &self.rules_path {
            Some(path) => PackSource::detect(path),
            None => PackSource::Embedded,
        }
    }

    /// Builds the warm initial state: the rule pack opened (embedded
    /// set, source directory, or precompiled `.crpack`), every ORDER
    /// artefact in the cache — seeded straight from a compiled pack,
    /// compiled during warm-up otherwise — and daemon-lifetime
    /// allocator accounting enabled.
    ///
    /// # Errors
    ///
    /// Rule loading/decoding and engine-build failures, typed.
    pub fn new(config: &ServeConfig) -> Result<ServerState, Error> {
        config.validate()?;
        let source = match &config.rules_path {
            Some(path) => PackSource::detect(path),
            None => PackSource::Embedded,
        };
        let pack = rules::open(source)?;
        let info = PackInfo::of(&pack);
        // The daemon adopts the process-wide compiled-ORDER cache:
        // warm artefacts are shared with any single-shot generation in
        // the same process, and hot-reload pruning keeps the one cache
        // bounded for the daemon's lifetime. A precompiled pack seeds
        // every artefact its rules can look up (the decoder enforces
        // this), so warm-up would be a pure all-hit walk — skipped.
        let cache = cognicrypt_core::engine::shared_order_cache().clone();
        let precompiled = pack.is_precompiled();
        pack.seed(&cache);
        // The resident trace-capture switch is the engine's observer
        // for the daemon's whole lifetime: hot-reload successors clone
        // the observer `Arc` (`with_rule_set`), so a `/profilez`
        // capture works across reloads without reinstalling anything.
        let profile = Arc::new(obs::ProfileSwitch::new());
        let engine = GenEngine::builder()
            .rules(pack.rules)
            .type_table(javamodel::jca::jca_type_table())
            .threads(config.threads)
            .order_cache(cache)
            .observer(profile.clone())
            .build()?;
        if !precompiled {
            engine.warm()?;
        }
        memtrack::enable_process_stats();
        let seed = info.fingerprint;
        Ok(ServerState {
            engine: RwLock::new(Arc::new(engine)),
            metrics: Arc::new(MetricsRegistry::new()),
            rules_path: config.rules_path.clone(),
            pack_info: RwLock::new(info),
            // Trace ids are seeded from the boot pack's fingerprint:
            // deterministic for a given pack, different across packs.
            obs: obs::RequestObs::new(config.obs_capacity, seed),
            profile,
            slow_ns: config.slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
            stop: AtomicBool::new(false),
        })
    }

    /// The engine serving requests right now. In-flight requests hold
    /// their own `Arc`, so a concurrent hot-reload never changes the
    /// rules under a running generation.
    pub fn engine(&self) -> Arc<GenEngine> {
        match self.engine.read() {
            Ok(guard) => guard.clone(),
            // A panicked writer can only have poisoned the lock after
            // the swap completed (the swap is a single pointer store),
            // so the value is always intact.
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The daemon-lifetime metrics registry (`serve.*` names).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Whether shutdown was requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Requests shutdown: workers finish their current connection and
    /// exit their accept loops.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// [`ServerState::handle_tagged`] with the `"inproc"` transport
    /// tag — the entry point for in-process probing (tests, benches).
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_tagged("inproc", request)
    }

    /// Handles one decoded request with full containment: an
    /// [`AllocScope`] measures the request, a per-request registry is
    /// merged into the daemon registry afterwards (the merge is
    /// deterministic, so `/metrics` totals are independent of request
    /// interleaving), and a panic anywhere inside is caught and
    /// reported as a typed `"panic"` response — the worker, its
    /// siblings, and the daemon all survive. The finished request is
    /// recorded as a [`obs::RequestRecord`] under `transport`, fed
    /// into the latency histograms, counted against an armed
    /// `/profilez` window, and logged to stderr when it crossed the
    /// `--slow-ms` threshold.
    pub fn handle_tagged(&self, transport: &'static str, request: &Request) -> Response {
        let (request_id, trace_id) = self.obs.begin();
        let per_request = MetricsCollector::fresh();
        let registry = per_request.registry().clone();
        registry.add("serve.requests", 1);
        registry.add(&format!("serve.requests.{}", request.name()), 1);

        let cache_before = self.engine().cache_stats();
        let scope = AllocScope::enter();
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(request)));
        let wall = start.elapsed();
        let alloc = scope.finish();
        let cache_after = self.engine().cache_stats();
        registry.observe("serve.request.peak_live_bytes", alloc.peak_live_bytes);
        registry.observe("serve.request.alloc_bytes", alloc.allocated_bytes);

        // Only requests that run the generation pipeline produce
        // spans; counting anything else against a capture window would
        // close it without capturing.
        if matches!(
            request,
            Request::Generate(_) | Request::Batch(_) | Request::Report
        ) {
            self.profile.note_request();
        }

        let response = match outcome {
            Ok(Ok(response)) => response,
            Ok(Err(err)) => Response::from_error(&err),
            Err(_) => {
                registry.add("serve.request.panics", 1);
                Response {
                    code: 500,
                    class: "panic",
                    content_type: "application/json",
                    body: format!(
                        "{}\n",
                        Json::Obj(vec![(
                            "error".to_owned(),
                            Json::Str("panic contained to this request".to_owned()),
                        )])
                    ),
                }
            }
        };
        if response.class != "ok" {
            registry.add(&format!("serve.errors.{}", response.class), 1);
        }
        registry.observe("serve.response.bytes", response.body.len() as u64);

        let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        if let Some(slow_ns) = self.slow_ns {
            if wall_ns >= slow_ns {
                registry.add("serve.requests.slow", 1);
                eprintln!(
                    "serve: slow request trace_id={trace_id:016x} transport={transport} \
                     endpoint={} class={} wall_ms={:.1}",
                    request.name(),
                    response.class,
                    wall_ns as f64 / 1e6,
                );
            }
        }
        self.obs.record(obs::RequestRecord {
            request_id,
            trace_id,
            transport,
            endpoint: request.name(),
            selector: match request {
                Request::Generate(selector) => Some(selector.clone()),
                _ => None,
            },
            class: response.class,
            code: response.code,
            wall_ns,
            alloc_bytes: alloc.allocated_bytes,
            cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
            cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
        });
        self.metrics.merge_from(&registry);
        response
    }

    /// Records traffic that never parsed into a [`Request`] — a
    /// malformed request line, an unknown route, an oversized body.
    /// Rejections get the same request identity and ring visibility as
    /// routed requests (endpoint `"rejected"`), so hostile traffic is
    /// attributable from `/tracez` alone.
    pub fn record_rejected(&self, transport: &'static str, response: &Response) {
        let (request_id, trace_id) = self.obs.begin();
        self.metrics.add("serve.requests", 1);
        self.metrics
            .add(&format!("serve.errors.{}", response.class), 1);
        self.obs.record(obs::RequestRecord {
            request_id,
            trace_id,
            transport,
            endpoint: "rejected",
            selector: None,
            class: response.class,
            code: response.code,
            wall_ns: 0,
            alloc_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
        });
    }

    /// The per-request observability surface (for in-process probing).
    pub fn obs(&self) -> &obs::RequestObs {
        &self.obs
    }

    fn dispatch(&self, request: &Request) -> Result<Response, Error> {
        match request {
            Request::Healthz => Ok(Response::ok("text/plain", "ok\n".to_owned())),
            Request::Metrics => Ok(Response::ok("text/plain", self.render_metrics())),
            Request::Loadz => Ok(Response::ok(
                "application/json",
                format!("{}\n", self.loadz_snapshot()),
            )),
            Request::Generate(selector) => {
                let uc = find_use_case(selector)?;
                let generated = self.engine().generate(&uc.template)?;
                Ok(Response::ok("text/plain", generated.java_source))
            }
            Request::Batch(threads) => {
                if *threads == 0 {
                    return Err(Error::Usage(
                        "thread count must be at least 1, got 0".to_owned(),
                    ));
                }
                let declared = self.pack_info().declared_cases();
                let cases: Vec<_> = all_use_cases()
                    .into_iter()
                    .filter(|uc| declared.is_none_or(|ids| ids.contains(&uc.id)))
                    .collect();
                let templates: Vec<_> = cases.iter().map(|uc| uc.template.clone()).collect();
                let engine = self.engine();
                let results = engine.generate_batch(&templates, *threads);
                let mut members = Vec::with_capacity(cases.len());
                for (uc, result) in cases.iter().zip(results) {
                    let source = result.map_err(Error::Engine)?;
                    members.push((format!("uc{:02}", uc.id), Json::Str(source.java_source)));
                }
                Ok(Response::ok(
                    "application/json",
                    format!("{}\n", Json::Obj(members)),
                ))
            }
            Request::Report => {
                let report = report::build()?;
                Ok(Response::ok(
                    "application/json",
                    format!("{}\n", report::to_json(&report)),
                ))
            }
            Request::Reload => self.reload(),
            Request::Tracez { errors_only } => Ok(Response::ok(
                "application/json",
                format!("{}\n", self.obs.tracez_json(*errors_only)),
            )),
            Request::Statz { json } => Ok(if *json {
                Response::ok("application/json", format!("{}\n", self.obs.statz_json()))
            } else {
                Response::ok("text/plain", self.obs.statz_text())
            }),
            Request::ProfilezArm(requests) => {
                if *requests == 0 || *requests > obs::MAX_PROFILE_REQUESTS {
                    return Err(Error::Usage(format!(
                        "profilez request count must be in 1..={}, got {requests}",
                        obs::MAX_PROFILE_REQUESTS
                    )));
                }
                match self.profile.arm(*requests) {
                    Ok(()) => Ok(Response::ok(
                        "application/json",
                        format!(
                            "{}\n",
                            Json::Obj(vec![("armed".to_owned(), Json::Num(*requests as f64),)])
                        ),
                    )),
                    // One capture at a time: arming over an open
                    // window is a typed conflict, not a silent reset.
                    Err(remaining) => Ok(Response {
                        code: 409,
                        class: "conflict",
                        content_type: "application/json",
                        body: format!(
                            "{}\n",
                            Json::Obj(vec![
                                ("error".to_owned(), Json::Str("conflict".to_owned())),
                                (
                                    "message".to_owned(),
                                    Json::Str("a capture window is already armed".to_owned()),
                                ),
                                ("remaining".to_owned(), Json::Num(remaining as f64)),
                            ])
                        ),
                    }),
                }
            }
            Request::ProfilezGet => {
                let (message, remaining) = match self.profile.fetch() {
                    obs::ProfileFetch::Ready(doc) => {
                        return Ok(Response::ok("application/json", format!("{doc}\n")));
                    }
                    obs::ProfileFetch::Armed { remaining } => {
                        ("capture in progress", Some(remaining))
                    }
                    obs::ProfileFetch::Idle => ("no capture armed", None),
                };
                let mut members = vec![
                    ("error".to_owned(), Json::Str("not_found".to_owned())),
                    ("message".to_owned(), Json::Str(message.to_owned())),
                ];
                if let Some(remaining) = remaining {
                    members.push(("remaining".to_owned(), Json::Num(remaining as f64)));
                }
                Ok(Response {
                    code: 404,
                    class: "not_found",
                    content_type: "application/json",
                    body: format!("{}\n", Json::Obj(members)),
                })
            }
            Request::Shutdown => {
                self.request_stop();
                Ok(Response::ok("text/plain", "shutting down\n".to_owned()))
            }
        }
    }

    /// Hot-reloads the rule pack. Sequence: re-open the
    /// [`PackSource`] → seed any precompiled artefacts into the warm
    /// compiled-ORDER cache → build a successor engine sharing that
    /// cache → warm the successor (new fingerprints compile *before*
    /// the swap, so no request ever waits on reload compilation;
    /// skipped for a precompiled pack, whose seeding already
    /// guaranteed every lookup hits) → swap → prune every cache entry
    /// whose fingerprint the new pack does not produce. Unchanged
    /// rules keep their warm artefacts; changed or removed rules lose
    /// exactly theirs. A broken pack — an unparsable source, a
    /// truncated or bit-flipped `.crpack` — fails the open with a
    /// typed error and leaves the running engine, its cache, and the
    /// published pack identity untouched.
    fn reload(&self) -> Result<Response, Error> {
        let pack = rules::open(self.pack_source())?;
        let info = PackInfo::of(&pack);
        let keep: HashSet<u64> = pack.fingerprints.iter().copied().collect();
        let precompiled = pack.is_precompiled();
        let seeded = pack.seed(self.engine().order_cache());
        let successor = Arc::new(self.engine().with_rule_set(pack.rules));
        if !precompiled {
            successor.warm()?;
        }
        let rule_count = successor.rules().len();
        {
            let mut guard = match self.engine.write() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = successor.clone();
        }
        let dropped = successor
            .order_cache()
            .retain_fingerprints(|fp| keep.contains(&fp));
        let kept = successor.order_cache().len();
        let pack_json = info.to_json();
        {
            let mut guard = match self.pack_info.write() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = info;
        }
        self.metrics.add("serve.reloads", 1);
        let doc = Json::Obj(vec![
            ("rules".to_owned(), Json::Num(rule_count as f64)),
            ("cache_entries_kept".to_owned(), Json::Num(kept as f64)),
            (
                "cache_entries_dropped".to_owned(),
                Json::Num(dropped as f64),
            ),
            ("cache_entries_seeded".to_owned(), Json::Num(seeded as f64)),
            ("pack".to_owned(), pack_json),
        ]);
        Ok(Response::ok("application/json", format!("{doc}\n")))
    }

    /// A clone of the currently served pack identity.
    fn pack_info(&self) -> PackInfo {
        match self.pack_info.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The `/loadz` payload: request, error and panic totals plus the
    /// daemon-lifetime allocator gauges, as one JSON object. Everything
    /// in it also appears in `/metrics`; this is the same data shaped
    /// for a load harness that samples it programmatically mid-run.
    pub fn loadz_snapshot(&self) -> Json {
        use cognicrypt_core::telemetry::Metric;
        let snapshot = self.metrics.snapshot();
        let counter = |name: &str| -> f64 {
            snapshot.get(name).and_then(Metric::as_counter).unwrap_or(0) as f64
        };
        let mut errors = Vec::new();
        for (name, metric) in &snapshot {
            if let Some(class) = name.strip_prefix("serve.errors.") {
                errors.push((
                    class.to_owned(),
                    Json::Num(metric.as_counter().unwrap_or(0) as f64),
                ));
            }
        }
        let mut members = vec![
            ("requests".to_owned(), Json::Num(counter("serve.requests"))),
            (
                "request_panics".to_owned(),
                Json::Num(counter("serve.request.panics")),
            ),
            (
                "connection_panics".to_owned(),
                Json::Num(counter("serve.connection.panics")),
            ),
            ("reloads".to_owned(), Json::Num(counter("serve.reloads"))),
            ("errors".to_owned(), Json::Obj(errors)),
        ];
        if let Some(stats) = memtrack::process_stats() {
            members.push((
                "mem".to_owned(),
                Json::Obj(vec![
                    (
                        "allocated_bytes".to_owned(),
                        Json::Num(stats.allocated_bytes as f64),
                    ),
                    (
                        "live_bytes".to_owned(),
                        Json::Num(stats.live_bytes.max(0) as f64),
                    ),
                    (
                        "peak_live_bytes".to_owned(),
                        Json::Num(stats.peak_live_bytes.max(0) as f64),
                    ),
                ]),
            ));
        }
        let cache = self.engine().cache_stats();
        members.push((
            "order_cache".to_owned(),
            Json::Obj(vec![
                ("entries".to_owned(), Json::Num(cache.entries as f64)),
                ("hits".to_owned(), Json::Num(cache.hits as f64)),
                ("misses".to_owned(), Json::Num(cache.misses as f64)),
            ]),
        ));
        members.push(("pack".to_owned(), self.pack_info().to_json()));
        Json::Obj(members)
    }

    /// The `/metrics` payload: the daemon registry and the current
    /// engine registry merged (merge order cannot matter — that is the
    /// registry's contract), plus the daemon-lifetime allocator gauges
    /// from [`memtrack::process_stats`].
    pub fn render_metrics(&self) -> String {
        let merged = MetricsRegistry::new();
        merged.merge_from(&self.metrics);
        merged.merge_from(self.engine().metrics());
        if let Some(stats) = memtrack::process_stats() {
            merged.set_gauge("mem.daemon.allocated_bytes", stats.allocated_bytes);
            merged.set_gauge("mem.daemon.live_bytes", stats.live_bytes.max(0) as u64);
            merged.set_gauge(
                "mem.daemon.peak_live_bytes",
                stats.peak_live_bytes.max(0) as u64,
            );
        }
        let pack = self.pack_info();
        merged.set_gauge("serve.pack.version", u64::from(pack.version));
        merged.set_gauge("serve.pack.fingerprint", pack.fingerprint);
        merged.set_gauge("serve.pack.rules", pack.rules as u64);
        merged.set_gauge("serve.pack.precompiled", u64::from(pack.precompiled));
        self.obs.export_gauges(&merged);
        merged.render_text()
    }
}

/// A running daemon: its state, bound addresses and worker threads.
/// Obtained from [`Server::start`]; [`ServerHandle::shutdown`] stops
/// and joins it (dropping without shutdown detaches the workers).
pub struct ServerHandle {
    state: Arc<ServerState>,
    http_addr: Option<std::net::SocketAddr>,
    uds_path: Option<PathBuf>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's shared state (for in-process probing in tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The bound HTTP address, when the HTTP transport is enabled.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// The bound Unix-socket path, when that transport is enabled.
    pub fn uds_path(&self) -> Option<&Path> {
        self.uds_path.as_deref()
    }

    /// Requests shutdown and joins every worker. Idempotent with a
    /// protocol-level `shutdown` that already stopped the daemon.
    pub fn shutdown(mut self) {
        self.state.request_stop();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until every worker exits (i.e. until a protocol-level
    /// `shutdown` request or [`ServerState::request_stop`]).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Binds the configured transports, spawns the accept pools and
    /// returns immediately. `threads` workers per transport each run
    /// an accept loop over a non-blocking listener, so shutdown needs
    /// no self-connection tricks: workers observe the stop flag within
    /// [`ACCEPT_POLL`].
    ///
    /// # Errors
    ///
    /// Config validation, rule loading, engine build and socket-bind
    /// failures — all typed, nothing panics.
    pub fn start(config: &ServeConfig) -> Result<ServerHandle, Error> {
        let state = Arc::new(ServerState::new(config)?);
        let mut workers = Vec::new();
        let mut http_addr = None;

        if let Some(addr) = &config.http_addr {
            let listener =
                TcpListener::bind(addr.as_str()).map_err(|e| Error::io(addr.clone(), e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(addr.clone(), e))?;
            http_addr = Some(
                listener
                    .local_addr()
                    .map_err(|e| Error::io(addr.clone(), e))?,
            );
            for ordinal in 0..config.threads {
                let listener = listener
                    .try_clone()
                    .map_err(|e| Error::io(addr.clone(), e))?;
                let state = state.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("serve-http-{ordinal}"))
                        .spawn(move || {
                            accept_loop(
                                &state,
                                || listener.accept().map(|(s, _)| s),
                                http::serve_connection,
                            )
                        })
                        .map_err(|e| Error::io("spawn http worker", e))?,
                );
            }
        }

        let mut uds_path = None;
        #[cfg(unix)]
        if let Some(path) = &config.uds_path {
            // A stale socket file from a crashed daemon blocks bind;
            // remove it first (connect attempts to it fail anyway).
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| Error::io(path.display().to_string(), e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(path.display().to_string(), e))?;
            uds_path = Some(path.clone());
            for ordinal in 0..config.threads {
                let listener = listener
                    .try_clone()
                    .map_err(|e| Error::io(path.display().to_string(), e))?;
                let state = state.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("serve-uds-{ordinal}"))
                        .spawn(move || {
                            accept_loop(
                                &state,
                                || listener.accept().map(|(s, _)| s),
                                uds::serve_connection,
                            )
                        })
                        .map_err(|e| Error::io("spawn uds worker", e))?,
                );
            }
        }
        #[cfg(not(unix))]
        if config.uds_path.is_some() {
            return Err(Error::Usage("--socket requires a unix platform".to_owned()));
        }

        Ok(ServerHandle {
            state,
            http_addr,
            uds_path,
            workers,
        })
    }
}

/// One worker's accept loop: poll the non-blocking listener, serve each
/// connection to completion, recheck the stop flag. Connection
/// handling is panic-contained a second time here so even a bug in
/// transport parsing (outside [`ServerState::handle`]'s containment)
/// can never take the worker down.
fn accept_loop<S>(
    state: &Arc<ServerState>,
    mut accept: impl FnMut() -> std::io::Result<S>,
    serve: impl Fn(&ServerState, S),
) {
    while !state.stopping() {
        match accept() {
            Ok(stream) => {
                let result = catch_unwind(AssertUnwindSafe(|| serve(state, stream)));
                if result.is_err() {
                    state.metrics.add("serve.connection.panics", 1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}
