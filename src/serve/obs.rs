//! Per-request observability for the serve daemon.
//!
//! Three surfaces, all fed from [`super::ServerState::handle_tagged`]:
//!
//! * **Access records** — every request (including transport-level
//!   rejections) gets a monotonic request id and a seed-derived FNV-1a
//!   trace id, and lands as a [`RequestRecord`] in a fixed-capacity
//!   ring buffer served as `GET /tracez` (newest first, `?errors=1`
//!   keeps only non-`ok` outcomes). The ring is a single short-lived
//!   mutex around a `VecDeque` — one push per request, no allocation
//!   beyond the record itself once the ring is full.
//! * **Latency distributions** — one [`devharness::histogram`]
//!   log-linear histogram per `transport.endpoint.class` key records
//!   request wall time in nanoseconds, with the histogram's documented
//!   1/32 relative-error bound. Rendered as a table (`GET /statz`), as
//!   machine-readable JSON (`GET /statz?json=1`, the format
//!   [`devharness::histogram::Histogram::from_json`] parses — the load
//!   harness cross-checks its client-side p99 against it), and as
//!   `serve.latency.*` gauges in `/metrics`.
//! * **Trace capture** — [`ProfileSwitch`] is the daemon's resident
//!   [`GenObserver`]: a single atomic-flag check per hook when idle,
//!   forwarding to a [`TraceRecorder`] only while a `POST /profilez`
//!   capture window is armed. Arming is exclusive (second arm → 409);
//!   the finished capture is exported balanced
//!   ([`TraceRecorder::to_balanced_json`]) so spans truncated by the
//!   window boundary can never fail `trace-check`.
//!
//! Capacity 0 disables record keeping entirely (every `record` call
//! returns immediately); the telemetry bench uses that as the baseline
//! for the observability-overhead bound.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use cognicrypt_core::memtrack::AllocDelta;
use cognicrypt_core::telemetry::{Event, GenObserver, MetricsRegistry, Span, TraceRecorder};
use devharness::histogram::Histogram;
use devharness::json::Json;

/// Access records kept when `--tracez-capacity` is not given.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Upper bound on the `POST /profilez` request count: a capture window
/// is a bounded diagnostic, not a firehose.
pub const MAX_PROFILE_REQUESTS: u64 = 10_000;

/// Locks a mutex, riding through poisoning: every writer below holds
/// the guard only to mutate plain data, so a poisoned value is intact.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The seed-derived trace id: FNV-1a over the daemon seed (the served
/// pack's fingerprint) and the monotonic request id. Deterministic for
/// a given pack and request ordinal, unique per request by
/// construction (FNV-1a is injective-enough over a 16-byte input for a
/// 64-bit output to collide only astronomically), and stable across
/// transports.
pub fn trace_id(seed: u64, request_id: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in seed
        .to_le_bytes()
        .into_iter()
        .chain(request_id.to_le_bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One finished request, as surfaced in `/tracez`.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Monotonic per-daemon ordinal, starting at 1.
    pub request_id: u64,
    /// Seed-derived [`trace_id`].
    pub trace_id: u64,
    /// `"http"`, `"uds"`, or `"inproc"`.
    pub transport: &'static str,
    /// The [`super::Request::name`], or `"rejected"` for traffic that
    /// never parsed into a request.
    pub endpoint: &'static str,
    /// The use-case selector of a `generate` request.
    pub selector: Option<String>,
    /// Outcome class: `"ok"` or the typed error class.
    pub class: &'static str,
    /// HTTP status code of the response.
    pub code: u16,
    /// Request wall time (dispatch, not transport I/O).
    pub wall_ns: u64,
    /// Bytes allocated while handling the request.
    pub alloc_bytes: u64,
    /// Compiled-ORDER cache hits observed during the request. Snapshot
    /// deltas of the shared cache: exact when requests are serial,
    /// approximate under concurrency.
    pub cache_hits: u64,
    /// Compiled-ORDER cache misses, same caveat.
    pub cache_misses: u64,
}

impl RequestRecord {
    fn is_error(&self) -> bool {
        self.class != "ok"
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("request_id".to_owned(), Json::Num(self.request_id as f64)),
            (
                "trace_id".to_owned(),
                Json::Str(format!("{:016x}", self.trace_id)),
            ),
            ("transport".to_owned(), Json::Str(self.transport.to_owned())),
            ("endpoint".to_owned(), Json::Str(self.endpoint.to_owned())),
        ];
        if let Some(selector) = &self.selector {
            members.push(("selector".to_owned(), Json::Str(selector.clone())));
        }
        members.extend([
            ("class".to_owned(), Json::Str(self.class.to_owned())),
            ("code".to_owned(), Json::Num(f64::from(self.code))),
            ("wall_ns".to_owned(), Json::Num(self.wall_ns as f64)),
            ("alloc_bytes".to_owned(), Json::Num(self.alloc_bytes as f64)),
            ("cache_hits".to_owned(), Json::Num(self.cache_hits as f64)),
            (
                "cache_misses".to_owned(),
                Json::Num(self.cache_misses as f64),
            ),
        ]);
        Json::Obj(members)
    }
}

/// Request identity plus the access-record ring and the latency
/// histograms. One instance per daemon, shared by every transport.
pub struct RequestObs {
    seed: u64,
    capacity: usize,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<RequestRecord>>,
    latency: Mutex<BTreeMap<String, Histogram>>,
}

impl RequestObs {
    /// An observer keeping at most `capacity` records, deriving trace
    /// ids from `seed`. Capacity 0 disables recording (ids are still
    /// assigned).
    pub fn new(capacity: usize, seed: u64) -> RequestObs {
        RequestObs {
            seed,
            capacity,
            next_id: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY))),
            latency: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Assigns the next request identity: `(request_id, trace_id)`.
    pub fn begin(&self) -> (u64, u64) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        (id, trace_id(self.seed, id))
    }

    /// Records one finished request into the ring and its latency
    /// histogram. No-op when the capacity is 0.
    pub fn record(&self, record: RequestRecord) {
        if self.capacity == 0 {
            return;
        }
        {
            let mut latency = lock(&self.latency);
            latency
                .entry(format!(
                    "{}.{}.{}",
                    record.transport, record.endpoint, record.class
                ))
                .or_default()
                .record(record.wall_ns);
        }
        let mut ring = lock(&self.ring);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The `/tracez` document: capacity, matched record count, and the
    /// records newest-first (optionally errors only).
    pub fn tracez_json(&self, errors_only: bool) -> Json {
        let ring = lock(&self.ring);
        let records: Vec<Json> = ring
            .iter()
            .rev()
            .filter(|r| !errors_only || r.is_error())
            .map(RequestRecord::to_json)
            .collect();
        Json::Obj(vec![
            ("capacity".to_owned(), Json::Num(self.capacity as f64)),
            ("count".to_owned(), Json::Num(records.len() as f64)),
            (
                "errors_only".to_owned(),
                Json::Num(f64::from(u8::from(errors_only))),
            ),
            ("records".to_owned(), Json::Arr(records)),
        ])
    }

    /// The `/statz?json=1` document: one serialized histogram per
    /// `transport.endpoint.class` key, each parseable by
    /// [`Histogram::from_json`].
    pub fn statz_json(&self) -> Json {
        let latency = lock(&self.latency);
        Json::Obj(
            latency
                .iter()
                .map(|(key, hist)| (key.clone(), hist.to_json()))
                .collect(),
        )
    }

    /// The human-readable `/statz` table: wall-time quantiles in
    /// microseconds per `transport.endpoint.class` key.
    pub fn statz_text(&self) -> String {
        let latency = lock(&self.latency);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
            "key", "count", "p50_us", "p95_us", "p99_us", "max_us"
        ));
        let us = |ns: u64| ns as f64 / 1000.0;
        for (key, hist) in latency.iter() {
            out.push_str(&format!(
                "{:<40} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                key,
                hist.count(),
                us(hist.quantile(0.50)),
                us(hist.quantile(0.95)),
                us(hist.quantile(0.99)),
                us(hist.max()),
            ));
        }
        out
    }

    /// Exports `serve.latency.<key>.{p50,p95,p99,max}_ns` gauges plus
    /// the per-key request count into `registry` (the `/metrics`
    /// render).
    pub fn export_gauges(&self, registry: &MetricsRegistry) {
        let latency = lock(&self.latency);
        for (key, hist) in latency.iter() {
            registry.set_gauge(&format!("serve.latency.{key}.count"), hist.count());
            registry.set_gauge(&format!("serve.latency.{key}.p50_ns"), hist.quantile(0.50));
            registry.set_gauge(&format!("serve.latency.{key}.p95_ns"), hist.quantile(0.95));
            registry.set_gauge(&format!("serve.latency.{key}.p99_ns"), hist.quantile(0.99));
            registry.set_gauge(&format!("serve.latency.{key}.max_ns"), hist.max());
        }
    }
}

/// The `POST /profilez` capture window state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CaptureState {
    /// No capture armed and none ready.
    Idle,
    /// Capturing: `remaining` more traced requests close the window.
    Armed { remaining: u64 },
    /// A finished capture is waiting to be fetched.
    Ready,
}

/// What `GET /profilez` finds.
pub enum ProfileFetch {
    /// Nothing was ever armed (or the last capture was re-armed away).
    Idle,
    /// A capture window is still open.
    Armed {
        /// Traced requests still to be observed.
        remaining: u64,
    },
    /// The finished capture, already balanced for `trace-check`.
    Ready(Json),
}

/// The daemon's resident [`GenObserver`]: installed once at boot (and
/// inherited by every hot-reload successor engine, which clones the
/// observer `Arc`), it forwards span/event telemetry to an embedded
/// [`TraceRecorder`] only while a capture window is armed. When idle —
/// the overwhelmingly common case — every hook is a single relaxed
/// atomic load.
pub struct ProfileSwitch {
    forwarding: AtomicBool,
    recorder: TraceRecorder,
    state: Mutex<CaptureState>,
}

impl Default for ProfileSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileSwitch {
    /// A disarmed switch.
    pub fn new() -> ProfileSwitch {
        ProfileSwitch {
            forwarding: AtomicBool::new(false),
            recorder: TraceRecorder::new(),
            state: Mutex::new(CaptureState::Idle),
        }
    }

    /// Arms a capture window over the next `requests` traced requests,
    /// discarding any previously finished capture.
    ///
    /// # Errors
    ///
    /// The remaining count of an already-armed window — exactly one
    /// capture at a time, so the caller answers 409.
    pub fn arm(&self, requests: u64) -> Result<(), u64> {
        let mut state = lock(&self.state);
        if let CaptureState::Armed { remaining } = *state {
            return Err(remaining);
        }
        self.recorder.reset();
        *state = CaptureState::Armed {
            remaining: requests,
        };
        self.forwarding.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Counts one finished traced request against an open window;
    /// closing the window stops forwarding. Requests that generate no
    /// spans (`healthz`, `/tracez` itself, …) must not be counted —
    /// the caller filters.
    pub fn note_request(&self) {
        if !self.forwarding.load(Ordering::Relaxed) {
            return;
        }
        let mut state = lock(&self.state);
        if let CaptureState::Armed { remaining } = *state {
            if remaining <= 1 {
                *state = CaptureState::Ready;
                self.forwarding.store(false, Ordering::SeqCst);
            } else {
                *state = CaptureState::Armed {
                    remaining: remaining - 1,
                };
            }
        }
    }

    /// The capture, if one is ready. The capture stays fetchable until
    /// the next [`ProfileSwitch::arm`].
    pub fn fetch(&self) -> ProfileFetch {
        let state = lock(&self.state);
        match *state {
            CaptureState::Idle => ProfileFetch::Idle,
            CaptureState::Armed { remaining } => ProfileFetch::Armed { remaining },
            // Exported balanced: a window armed or disarmed while
            // spans were in flight holds boundary-truncated events
            // that are not recorder breakage — see
            // `TraceRecorder::to_balanced_json`.
            CaptureState::Ready => ProfileFetch::Ready(self.recorder.to_balanced_json()),
        }
    }
}

impl GenObserver for ProfileSwitch {
    fn span_enter(&self, span: &Span<'_>) {
        if self.forwarding.load(Ordering::Relaxed) {
            self.recorder.span_enter(span);
        }
    }

    fn span_exit(&self, span: &Span<'_>, elapsed: Duration, alloc: AllocDelta) {
        if self.forwarding.load(Ordering::Relaxed) {
            self.recorder.span_exit(span, elapsed, alloc);
        }
    }

    fn event(&self, event: &Event<'_>) {
        if self.forwarding.load(Ordering::Relaxed) {
            self.recorder.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, class: &'static str) -> RequestRecord {
        RequestRecord {
            request_id: id,
            trace_id: trace_id(7, id),
            transport: "inproc",
            endpoint: "generate",
            selector: Some("uc01".to_owned()),
            class,
            code: if class == "ok" { 200 } else { 400 },
            wall_ns: 1000 * id,
            alloc_bytes: 64,
            cache_hits: 1,
            cache_misses: 0,
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id(1, 1), trace_id(1, 1));
        assert_ne!(trace_id(1, 1), trace_id(1, 2));
        assert_ne!(trace_id(1, 1), trace_id(2, 1));
        let obs = RequestObs::new(4, 42);
        let (id1, t1) = obs.begin();
        let (id2, t2) = obs.begin();
        assert_eq!((id1, id2), (1, 2));
        assert_eq!(t1, trace_id(42, 1));
        assert_ne!(t1, t2);
    }

    #[test]
    fn ring_evicts_oldest_and_serves_newest_first() {
        let obs = RequestObs::new(3, 0);
        for id in 1..=5 {
            obs.record(record(id, "ok"));
        }
        let doc = obs.tracez_json(false);
        let records = doc.get("records").and_then(Json::as_arr).unwrap();
        let ids: Vec<u64> = records
            .iter()
            .map(|r| r.get("request_id").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(ids, [5, 4, 3]);
        assert_eq!(doc.get("capacity").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn errors_filter_keeps_only_non_ok_outcomes() {
        let obs = RequestObs::new(8, 0);
        obs.record(record(1, "ok"));
        obs.record(record(2, "usage"));
        obs.record(record(3, "ok"));
        let doc = obs.tracez_json(true);
        let records = doc.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].get("class").and_then(Json::as_str),
            Some("usage")
        );
    }

    #[test]
    fn capacity_zero_disables_recording() {
        let obs = RequestObs::new(0, 0);
        obs.record(record(1, "ok"));
        let doc = obs.tracez_json(false);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(0));
        assert_eq!(obs.statz_json(), Json::Obj(vec![]));
    }

    #[test]
    fn statz_histograms_round_trip_and_bound_the_samples() {
        let obs = RequestObs::new(16, 0);
        for id in 1..=10 {
            obs.record(record(id, "ok"));
        }
        let doc = obs.statz_json();
        let hist = Histogram::from_json(doc.get("inproc.generate.ok").unwrap()).unwrap();
        assert_eq!(hist.count(), 10);
        assert_eq!(hist.max(), 10_000);
        let (lo, hi) = hist.quantile_bounds(0.5);
        assert!(lo <= 5000 && 5000 <= hi, "p50 bounds {lo}..{hi}");
        let text = obs.statz_text();
        assert!(text.contains("inproc.generate.ok"));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    fn profile_switch_arm_capture_fetch_state_machine() {
        let switch = ProfileSwitch::new();
        assert!(matches!(switch.fetch(), ProfileFetch::Idle));
        // A note with nothing armed is a no-op.
        switch.note_request();
        switch.arm(2).unwrap();
        // Double-arm is refused with the remaining count.
        assert_eq!(switch.arm(5), Err(2));
        assert!(matches!(
            switch.fetch(),
            ProfileFetch::Armed { remaining: 2 }
        ));
        // While armed, hooks forward to the recorder.
        switch.span_enter(&Span {
            unit: "U",
            phase: cognicrypt_core::telemetry::Phase::Select,
        });
        switch.span_exit(
            &Span {
                unit: "U",
                phase: cognicrypt_core::telemetry::Phase::Select,
            },
            Duration::from_micros(5),
            AllocDelta::default(),
        );
        switch.note_request();
        switch.note_request();
        let ProfileFetch::Ready(doc) = switch.fetch() else {
            panic!("capture should be ready after the window closes");
        };
        cognicrypt_core::telemetry::validate_trace(&doc).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(),
            2
        );
        // Disarmed again: hooks are dropped, the capture stays fetchable.
        switch.span_enter(&Span {
            unit: "V",
            phase: cognicrypt_core::telemetry::Phase::Select,
        });
        let ProfileFetch::Ready(doc) = switch.fetch() else {
            panic!("capture should remain fetchable");
        };
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(),
            2
        );
        // Re-arming discards it and opens a fresh window.
        switch.arm(1).unwrap();
        assert!(matches!(
            switch.fetch(),
            ProfileFetch::Armed { remaining: 1 }
        ));
    }
}
