//! Line/JSON protocol over a Unix domain socket.
//!
//! One request per line — `healthz`, `metrics`, `loadz`,
//! `generate <selector>`, `batch [threads]`, `report`, `reload`,
//! `tracez [errors]`, `statz [json]`, `profilez [<n>]` (a bare
//! `profilez` fetches the capture, `profilez <n>` arms one),
//! `shutdown` — and exactly one
//! JSON object per response line:
//!
//! ```text
//! {"class":"ok","code":200,"body":"…"}
//! {"class":"usage","code":400,"body":"…"}
//! ```
//!
//! Unlike the HTTP transport a connection persists: a client can pipe
//! a whole request script through one socket and read responses back
//! line by line. Malformed lines get a typed `"protocol"` response on
//! their own line and the connection stays usable — a hostile line
//! never desynchronises the stream, because the framing is strictly
//! one line in, one line out.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;

use devharness::json::Json;

use super::{Request, Response, ServerState, IO_TIMEOUT};

/// Upper bound on one request line.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Serves one socket connection: request lines in, JSON lines out,
/// until EOF or a `shutdown` request.
pub fn serve_connection(state: &ServerState, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        let mut limited = (&mut reader).take(MAX_LINE_BYTES as u64 + 1);
        match limited.read_line(&mut line) {
            Ok(0) => return,
            Ok(n) if n > MAX_LINE_BYTES => {
                let response = protocol_error("request line exceeds the 64KiB cap");
                state.record_rejected("uds", &response);
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
                // The over-long line was only partially consumed; the
                // stream is no longer line-synchronised, so drop it.
                return;
            }
            Ok(_) => {}
            Err(_) => return,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = match parse_line(line) {
            Ok(request) => {
                let shutting_down = matches!(request, Request::Shutdown);
                let response = state.handle_tagged("uds", &request);
                if shutting_down {
                    let _ = write_line(&mut writer, &response);
                    return;
                }
                response
            }
            Err(response) => {
                state.record_rejected("uds", &response);
                response
            }
        };
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Parses one request line into a protocol [`Request`].
fn parse_line(line: &str) -> Result<Request, Response> {
    let mut parts = line.splitn(2, char::is_whitespace);
    let verb = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    match (verb, rest) {
        ("healthz", "") => Ok(Request::Healthz),
        ("metrics", "") => Ok(Request::Metrics),
        ("loadz", "") => Ok(Request::Loadz),
        ("generate", "") => Err(protocol_error("generate needs a selector")),
        ("generate", selector) => Ok(Request::Generate(selector.to_owned())),
        ("batch", "") => Ok(Request::Batch(cognicrypt_core::GenEngine::DEFAULT_THREADS)),
        ("batch", threads) => threads
            .parse::<usize>()
            .map(Request::Batch)
            .map_err(|_| protocol_error("batch thread count must be an integer")),
        ("report", "") => Ok(Request::Report),
        ("reload", "") => Ok(Request::Reload),
        ("tracez", "") => Ok(Request::Tracez { errors_only: false }),
        ("tracez", "errors") => Ok(Request::Tracez { errors_only: true }),
        ("statz", "") => Ok(Request::Statz { json: false }),
        ("statz", "json") => Ok(Request::Statz { json: true }),
        ("profilez", "") => Ok(Request::ProfilezGet),
        ("profilez", requests) => requests
            .parse::<u64>()
            .map(Request::ProfilezArm)
            .map_err(|_| protocol_error("profilez request count must be an integer")),
        ("shutdown", "") => Ok(Request::Shutdown),
        _ => Err(protocol_error("unknown request verb")),
    }
}

fn protocol_error(message: &str) -> Response {
    Response {
        code: 400,
        class: "protocol",
        content_type: "application/json",
        body: format!(
            "{}\n",
            Json::Obj(vec![
                ("error".to_owned(), Json::Str("protocol".to_owned())),
                ("message".to_owned(), Json::Str(message.to_owned())),
            ])
        ),
    }
}

/// Writes one response as a single JSON line. The body rides inside
/// the JSON string, so embedded newlines in generated Java cannot
/// break the framing.
fn write_line(writer: &mut UnixStream, response: &Response) -> std::io::Result<()> {
    let doc = Json::Obj(vec![
        ("class".to_owned(), Json::Str(response.class.to_owned())),
        ("code".to_owned(), Json::Num(f64::from(response.code))),
        ("body".to_owned(), Json::Str(response.body.clone())),
    ]);
    writeln!(writer, "{doc}")?;
    writer.flush()
}

/// Client side: sends request lines over `path` and returns one parsed
/// JSON response per line. Used by the integration tests.
///
/// # Errors
///
/// Connection or I/O failures, or a response line that is not valid
/// JSON (which would mean the daemon broke its own framing).
pub fn request_lines(path: &std::path::Path, lines: &[&str]) -> std::io::Result<Vec<Json>> {
    let mut stream = UnixStream::connect(path)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    for line in lines {
        if let Err(e) = writeln!(stream, "{line}") {
            // The daemon refuses some lines mid-write — the 64 KiB cap
            // makes it respond and close while the client is still
            // sending — and its refusal frame stays readable after the
            // EPIPE. Stop writing and collect it; anything else is a
            // real transport failure.
            match e.kind() {
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => break,
                _ => return Err(e),
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        responses.push(
            Json::parse(&line).map_err(|e| std::io::Error::other(format!("bad frame: {e}")))?,
        );
    }
    Ok(responses)
}
