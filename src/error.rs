//! The facade error type: every failure a `cognicryptgen` embedding or
//! CLI invocation can hit, as one `#[non_exhaustive]` enum with
//! `source()` chaining back to the underlying layer error.

use std::error::Error as StdError;
use std::fmt;

use cognicrypt_core::engine::EngineBuildError;
use cognicrypt_core::{EngineError, GenError};
use crysl::CryslError;

/// Any error the CogniCryptGEN workspace can surface to an embedder or
/// the CLI.
///
/// `#[non_exhaustive]`: new failure classes may be added without a
/// breaking release, so match with a `_` arm. Each variant wraps the
/// underlying layer error where one exists and exposes it through
/// [`std::error::Error::source`]; [`Error::exit_code`] gives the CLI a
/// stable, variant-distinct process exit code.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The invocation itself was malformed (missing/unknown argument).
    Usage(String),
    /// Loading or parsing CrySL rules failed.
    Rules(CryslError),
    /// The generation pipeline rejected a template.
    Generation(GenError),
    /// A batch engine run failed (generation error or contained panic).
    Engine(EngineError),
    /// Building a [`cognicrypt_core::GenEngine`] failed.
    EngineBuild(EngineBuildError),
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Input data was present but invalid (unparsable Java, a report
    /// file failing validation, …).
    Invalid(String),
}

impl Error {
    /// Convenience constructor for [`Error::Io`].
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code the CLI maps this variant to. Distinct per
    /// failure class so scripts can branch without parsing stderr:
    /// usage = 2, rules = 3, generation/engine = 4, I/O = 5, invalid
    /// input = 6. (0 is success, 1 the generic failure of older
    /// releases.)
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Usage(_) => 2,
            Error::Rules(_) => 3,
            Error::Generation(_) | Error::Engine(_) | Error::EngineBuild(_) => 4,
            Error::Io { .. } => 5,
            Error::Invalid(_) => 6,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(m) => write!(f, "usage: {m}"),
            Error::Rules(e) => write!(f, "rule set: {e}"),
            Error::Generation(e) => write!(f, "generation: {e}"),
            Error::Engine(e) => write!(f, "engine: {e}"),
            Error::EngineBuild(e) => write!(f, "engine: {e}"),
            Error::Io { path, source } => write!(f, "{path}: {source}"),
            Error::Invalid(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Rules(e) => Some(e),
            Error::Generation(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::EngineBuild(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Usage(_) | Error::Invalid(_) => None,
        }
    }
}

impl From<CryslError> for Error {
    fn from(e: CryslError) -> Self {
        Error::Rules(e)
    }
}

impl From<rules::PackError> for Error {
    fn from(e: rules::PackError) -> Self {
        match e {
            // Parse, validation and pack-decode failures are all the
            // rules class (exit 3): the rule pack is bad, whatever its
            // encoding.
            rules::PackError::Crysl(e) => Error::Rules(e),
            rules::PackError::Io { path, source } => Error::io(path.display().to_string(), source),
            rules::PackError::Invalid(m) => Error::Invalid(m),
        }
    }
}

impl From<GenError> for Error {
    fn from(e: GenError) -> Self {
        Error::Generation(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<EngineBuildError> for Error {
    fn from(e: EngineBuildError) -> Self {
        Error::EngineBuild(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_failure_class() {
        let gen = Error::from(GenError::UnknownRule("X".into()));
        let io = Error::io("f.txt", std::io::Error::other("boom"));
        let usage = Error::Usage("missing arg".into());
        let invalid = Error::Invalid("bad json".into());
        let codes = [
            usage.exit_code(),
            gen.exit_code(),
            io.exit_code(),
            invalid.exit_code(),
        ];
        assert_eq!(codes, [2, 4, 5, 6]);
        // No failure maps to the success or generic-failure codes.
        assert!(codes.iter().all(|&c| c >= 2));
    }

    #[test]
    fn source_chains_to_the_layer_error() {
        let e = Error::from(GenError::UnknownRule("X".into()));
        let src = e.source().expect("generation errors chain");
        assert!(src.downcast_ref::<GenError>().is_some());
        assert!(e.to_string().contains("no CrySL rule"));

        let e = Error::io("path", std::io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(Error::Usage("x".into()).source().is_none());
    }
}
