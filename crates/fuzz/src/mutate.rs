//! Mutation-based input generation: byte/token-level mutation of CrySL
//! sources (for malformed-input robustness), structural mutation of
//! fluent-API template chains (for pipeline robustness), and byte-level
//! mutation of `.crpack` images (for pack-decoder robustness).

use devharness::rng::RandomSource;
use rules::pack_checksum;
use usecases::UseCase;

use crate::input::{SpecEntry, TemplateSpec};

/// Tokens spliced into mutated sources — section keywords, operators and
/// brackets the CrySL grammar reacts to.
const TOKENS: &[&str] = &[
    "SPEC",
    "OBJECTS",
    "EVENTS",
    "ORDER",
    "CONSTRAINTS",
    "FORBIDDEN",
    "REQUIRES",
    "ENSURES",
    "NEGATES",
    ":=",
    "=>",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "in",
    "after",
    "this",
    "instanceof",
    "neverTypeOf",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "[]",
    ";",
    ",",
    "|",
    "?",
    "*",
    "+",
    "_",
    "\"",
    "//",
    "/*",
    "*/",
    "-",
];

const BYTES: &[u8] = b"abzSEO019(){}[];:=|&<>?*+_.,\"\\/\n ";

fn pos(rng: &mut dyn RandomSource, len: usize) -> usize {
    if len == 0 {
        0
    } else {
        rng.next_below(len as u64 + 1) as usize
    }
}

fn span(rng: &mut dyn RandomSource, len: usize) -> (usize, usize) {
    if len == 0 {
        return (0, 0);
    }
    let a = rng.next_below(len as u64) as usize;
    let width = 1 + rng.next_below(((len - a) as u64).min(32)) as usize;
    (a, a + width)
}

/// Mutates CrySL source text: 1–3 random edits drawn from deletion,
/// duplication, token splicing, byte flips, truncation, and deliberate
/// stress patterns (deep parenthesis nesting, long postfix runs, long
/// `&&` chains) that probe the front-end's recursion and size limits.
pub fn mutate_rule_source(base: &str, rng: &mut dyn RandomSource) -> String {
    let mut bytes: Vec<u8> = base.bytes().collect();
    for _ in 0..1 + rng.next_below(3) {
        apply_one(&mut bytes, rng);
        if bytes.len() > 1 << 20 {
            bytes.truncate(1 << 20);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn apply_one(bytes: &mut Vec<u8>, rng: &mut dyn RandomSource) {
    match rng.next_below(10) {
        // Delete a span.
        0 => {
            let (a, b) = span(rng, bytes.len());
            bytes.drain(a..b);
        }
        // Duplicate a span in place.
        1 => {
            let (a, b) = span(rng, bytes.len());
            let copy: Vec<u8> = bytes[a..b].to_vec();
            let at = pos(rng, bytes.len());
            bytes.splice(at..at, copy);
        }
        // Splice a grammar token.
        2 => {
            let tok = TOKENS[rng.next_below(TOKENS.len() as u64) as usize];
            let at = pos(rng, bytes.len());
            bytes.splice(at..at, tok.bytes().chain(std::iter::once(b' ')));
        }
        // Overwrite one byte.
        3 => {
            if !bytes.is_empty() {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] = BYTES[rng.next_below(BYTES.len() as u64) as usize];
            }
        }
        // Truncate.
        4 => {
            let at = pos(rng, bytes.len());
            bytes.truncate(at);
        }
        // Deep parenthesis nesting — probes parser recursion limits.
        5 => {
            let depth = 1 + rng.next_below(20_000) as usize;
            let at = pos(rng, bytes.len());
            bytes.splice(at..at, std::iter::repeat_n(b'(', depth));
        }
        // Long postfix-operator run — probes ORDER AST depth.
        6 => {
            let run = 1 + rng.next_below(20_000) as usize;
            let op = [b'?', b'*', b'+'][rng.next_below(3) as usize];
            let at = pos(rng, bytes.len());
            bytes.splice(at..at, std::iter::repeat_n(op, run));
        }
        // Long `&&` chain — probes constraint AST depth.
        7 => {
            let reps = 1 + rng.next_below(5_000) as usize;
            let at = pos(rng, bytes.len());
            let clause: Vec<u8> = b" && o0 == 1".repeat(reps);
            bytes.splice(at..at, clause);
        }
        // Swap two spans.
        8 => {
            let (a1, b1) = span(rng, bytes.len());
            let (a2, b2) = span(rng, bytes.len());
            if b1 <= a2 {
                let second: Vec<u8> = bytes[a2..b2].to_vec();
                let first: Vec<u8> = bytes[a1..b1].to_vec();
                bytes.splice(a2..b2, first);
                bytes.splice(a1..b1, second);
            }
        }
        // Duplicate the whole source.
        _ => {
            let copy = bytes.clone();
            bytes.extend(copy);
        }
    }
}

/// Mutates a valid `.crpack` image: 1–3 edits drawn from bit flips,
/// truncation, span deletion/duplication and length-field stress, each
/// optionally followed by an FNV-1a-64 trailer fix-up. Without the
/// fix-up a mutation tests the checksum gate; with it the corruption
/// reaches the structural decoder — the part that must reject hostile
/// layouts with a typed error instead of panicking.
pub fn mutate_pack_bytes(base: &[u8], rng: &mut dyn RandomSource) -> Vec<u8> {
    let mut bytes = base.to_vec();
    for _ in 0..1 + rng.next_below(3) {
        mutate_pack_once(&mut bytes, rng);
    }
    // Half the mutants get a valid trailer so the corruption survives
    // the checksum gate and exercises the decoder proper.
    if bytes.len() > 8 && rng.next_bool() {
        let payload_len = bytes.len() - 8;
        let checksum = pack_checksum(&bytes[..payload_len]);
        bytes[payload_len..].copy_from_slice(&checksum.to_le_bytes());
    }
    bytes
}

fn mutate_pack_once(bytes: &mut Vec<u8>, rng: &mut dyn RandomSource) {
    match rng.next_below(8) {
        // Flip one bit.
        0 | 1 => {
            if !bytes.is_empty() {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.next_below(8);
            }
        }
        // Overwrite one byte with an extreme value.
        2 => {
            if !bytes.is_empty() {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] = [0x00, 0x01, 0x7f, 0x80, 0xfe, 0xff][rng.next_below(6) as usize];
            }
        }
        // Truncate.
        3 => {
            let at = pos(rng, bytes.len());
            bytes.truncate(at);
        }
        // Delete a span.
        4 => {
            let (a, b) = span(rng, bytes.len());
            bytes.drain(a..b);
        }
        // Duplicate a span in place.
        5 => {
            let (a, b) = span(rng, bytes.len());
            let copy: Vec<u8> = bytes[a..b].to_vec();
            let at = pos(rng, bytes.len());
            bytes.splice(at..at, copy);
        }
        // Blast a 4-byte window with a huge little-endian value —
        // aimed at count/length prefixes, which must stay capped
        // against the remaining input instead of allocating.
        6 => {
            if bytes.len() >= 4 {
                let at = rng.next_below((bytes.len() - 3) as u64) as usize;
                let v: u32 =
                    [0xffff_ffff, 0x7fff_ffff, 0x0100_0000, 65_536][rng.next_below(4) as usize];
                bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Append trailing garbage (decoders must reject slack bytes).
        _ => {
            let extra = 1 + rng.next_below(64) as usize;
            bytes.extend(std::iter::repeat_n(0xA5u8, extra));
        }
    }
}

/// Extracts the first chained method of a use-case template as a
/// [`TemplateSpec`], the starting point for structural mutation.
pub fn spec_from_use_case(uc: &UseCase) -> TemplateSpec {
    let (method, chain) = uc
        .template
        .methods
        .iter()
        .enumerate()
        .find_map(|(i, m)| m.chain.as_ref().map(|c| (i, c)))
        .map(|(i, c)| (i, c.clone()))
        .unwrap_or_default();
    TemplateSpec {
        base: uc.id,
        method,
        entries: chain
            .entries
            .iter()
            .map(|e| SpecEntry {
                rule: e.rule.clone(),
                bindings: e
                    .bindings
                    .iter()
                    .map(|b| (b.template_var.clone(), b.rule_var.clone()))
                    .collect(),
            })
            .collect(),
        return_object: chain.return_object,
    }
}

const TEMPLATE_VARS: &[&str] = &["pwd", "salt", "key", "data", "out", "ghost", "cipherText"];
const RULE_VARS: &[&str] = &[
    "password",
    "salt",
    "out",
    "alg",
    "keySize",
    "iterationCount",
    "ghost",
    "this",
];

/// Structurally mutates a fluent-API chain: rules are renamed, dropped,
/// duplicated or reordered; bindings are dropped, retargeted or invented;
/// the return object changes or disappears. `rule_pool` is the set of
/// real rule class names to draw replacements from.
pub fn mutate_template_spec(
    cases: &[UseCase],
    rule_pool: &[&str],
    rng: &mut dyn RandomSource,
) -> TemplateSpec {
    let base = &cases[rng.next_below(cases.len() as u64) as usize];
    let mut spec = spec_from_use_case(base);
    for _ in 0..1 + rng.next_below(3) {
        mutate_spec_once(&mut spec, rule_pool, rng);
    }
    spec
}

fn mutate_spec_once(spec: &mut TemplateSpec, rule_pool: &[&str], rng: &mut dyn RandomSource) {
    let pick_rule = |rng: &mut dyn RandomSource| {
        if rng.next_below(4) == 0 {
            "com.example.Missing".to_owned()
        } else {
            rule_pool[rng.next_below(rule_pool.len() as u64) as usize].to_owned()
        }
    };
    match rng.next_below(9) {
        // Rename a rule.
        0 => {
            if !spec.entries.is_empty() {
                let i = rng.next_below(spec.entries.len() as u64) as usize;
                spec.entries[i].rule = pick_rule(rng);
            }
        }
        // Drop an entry.
        1 => {
            if !spec.entries.is_empty() {
                let i = rng.next_below(spec.entries.len() as u64) as usize;
                spec.entries.remove(i);
            }
        }
        // Duplicate an entry.
        2 => {
            if !spec.entries.is_empty() {
                let i = rng.next_below(spec.entries.len() as u64) as usize;
                let copy = spec.entries[i].clone();
                spec.entries.insert(i, copy);
            }
        }
        // Swap two entries.
        3 => {
            if spec.entries.len() >= 2 {
                let i = rng.next_below(spec.entries.len() as u64) as usize;
                let j = rng.next_below(spec.entries.len() as u64) as usize;
                spec.entries.swap(i, j);
            }
        }
        // Append a fresh entry.
        4 => {
            spec.entries.push(SpecEntry {
                rule: pick_rule(rng),
                bindings: Vec::new(),
            });
        }
        // Drop a binding.
        5 => {
            if let Some(e) = non_empty_entry(spec, rng) {
                if !e.bindings.is_empty() {
                    let i = rng.next_below(e.bindings.len() as u64) as usize;
                    e.bindings.remove(i);
                }
            }
        }
        // Invent or retarget a binding.
        6 => {
            if let Some(e) = non_empty_entry(spec, rng) {
                let t = TEMPLATE_VARS[rng.next_below(TEMPLATE_VARS.len() as u64) as usize];
                let r = RULE_VARS[rng.next_below(RULE_VARS.len() as u64) as usize];
                e.bindings.push((t.to_owned(), r.to_owned()));
            }
        }
        // Change or drop the return object.
        7 => {
            spec.return_object = if rng.next_bool() {
                Some(TEMPLATE_VARS[rng.next_below(TEMPLATE_VARS.len() as u64) as usize].to_owned())
            } else {
                None
            };
        }
        // Point at a different method (possibly one without a chain, or
        // out of range — the driver treats unresolvable specs as inert).
        _ => {
            spec.method = rng.next_below(6) as usize;
        }
    }
}

fn non_empty_entry<'s>(
    spec: &'s mut TemplateSpec,
    rng: &mut dyn RandomSource,
) -> Option<&'s mut SpecEntry> {
    if spec.entries.is_empty() {
        None
    } else {
        let i = rng.next_below(spec.entries.len() as u64) as usize;
        spec.entries.get_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devharness::rng::Xoshiro256;

    #[test]
    fn byte_mutation_is_deterministic_and_bounded() {
        let base = rules::RULE_SOURCES[0].1;
        let a = mutate_rule_source(base, &mut Xoshiro256::seed_from_u64(3));
        let b = mutate_rule_source(base, &mut Xoshiro256::seed_from_u64(3));
        assert_eq!(a, b);
        for seed in 0..50 {
            let m = mutate_rule_source(base, &mut Xoshiro256::seed_from_u64(seed));
            assert!(m.len() <= (1 << 20) + 32);
        }
    }

    #[test]
    fn pack_mutation_is_deterministic_and_never_breaks_the_decoder() {
        let base = rules::open(rules::PackSource::Embedded)
            .unwrap()
            .to_bytes()
            .unwrap();
        let a = mutate_pack_bytes(&base, &mut Xoshiro256::seed_from_u64(7));
        let b = mutate_pack_bytes(&base, &mut Xoshiro256::seed_from_u64(7));
        assert_eq!(a, b);
        for seed in 0..50 {
            let m = mutate_pack_bytes(&base, &mut Xoshiro256::seed_from_u64(seed));
            let _ = rules::open_bytes(&m); // typed result either way, never a panic
        }
    }

    #[test]
    fn template_mutation_yields_buildable_or_inert_specs() {
        let cases = usecases::all_use_cases();
        let pool: Vec<&str> = rules::RULE_SOURCES.iter().map(|(n, _)| *n).collect();
        for seed in 0..50 {
            let spec = mutate_template_spec(&cases, &pool, &mut Xoshiro256::seed_from_u64(seed));
            let _ = spec.build(&cases); // must never panic
        }
    }

    #[test]
    fn spec_extraction_matches_the_template_chain() {
        let cases = usecases::all_use_cases();
        let spec = spec_from_use_case(&cases[0]);
        assert!(!spec.entries.is_empty());
        let rebuilt = spec.build(&cases).unwrap();
        assert_eq!(
            rebuilt.methods[spec.method].chain,
            cases[0].template.methods[spec.method].chain
        );
    }
}
