//! Automatic input minimization.
//!
//! A crashing input is shrunk by greedy chunk removal: repeatedly try
//! deleting a contiguous chunk (halving chunk sizes down to one unit)
//! and keep the deletion whenever the reduced input still reproduces the
//! *same* crash fingerprint. Rule inputs are minimized over lines first,
//! then characters; template inputs over their directive lines; pack
//! inputs over their raw bytes. The process is deterministic —
//! candidates are tried in a fixed order and acceptance depends only on
//! the reproduction callback.

use crate::input::FuzzInput;

/// Upper bound on reproduction attempts per minimization, so a
/// pathological input cannot stall the fuzz loop.
const MAX_ATTEMPTS: usize = 2_000;

/// Minimizes `input` while `reproduces` keeps returning `true` (meaning:
/// the candidate still triggers the same crash fingerprint). Returns the
/// smallest reproducing input found.
pub fn minimize(input: &FuzzInput, mut reproduces: impl FnMut(&FuzzInput) -> bool) -> FuzzInput {
    let mut attempts = 0usize;
    match input {
        FuzzInput::Rule(src) => {
            let lines: Vec<String> = src.lines().map(str::to_owned).collect();
            let lines = shrink_units(lines, &mut attempts, |cand| {
                reproduces(&FuzzInput::Rule(cand.join("\n")))
            });
            let chars: Vec<char> = lines.join("\n").chars().collect();
            let chars = shrink_units(chars, &mut attempts, |cand| {
                reproduces(&FuzzInput::Rule(cand.iter().collect()))
            });
            FuzzInput::Rule(chars.iter().collect())
        }
        FuzzInput::Template(_) => {
            let body: Vec<String> = input
                .encode()
                .lines()
                .skip(1) // header
                .map(str::to_owned)
                .collect();
            let body = shrink_units(body, &mut attempts, |cand| {
                let text = format!(
                    "{} template\n{}",
                    crate::input::CORPUS_MAGIC,
                    cand.join("\n")
                );
                match FuzzInput::decode(&text) {
                    Ok(decoded) => reproduces(&decoded),
                    Err(_) => false, // e.g. dropped the `base` line
                }
            });
            let text = format!(
                "{} template\n{}",
                crate::input::CORPUS_MAGIC,
                body.join("\n")
            );
            FuzzInput::decode(&text).unwrap_or_else(|_| input.clone())
        }
        FuzzInput::Pack(bytes) => {
            let bytes = shrink_units(bytes.clone(), &mut attempts, |cand| {
                reproduces(&FuzzInput::Pack(cand.to_vec()))
            });
            FuzzInput::Pack(bytes)
        }
    }
}

/// Greedy delta-debugging over a unit vector: chunk sizes halve from
/// `len/2` down to 1; at each size every aligned chunk is tried once.
fn shrink_units<T: Clone>(
    mut units: Vec<T>,
    attempts: &mut usize,
    mut keep: impl FnMut(&[T]) -> bool,
) -> Vec<T> {
    let mut chunk = (units.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < units.len() {
            if *attempts >= MAX_ATTEMPTS {
                return units;
            }
            *attempts += 1;
            let end = (start + chunk).min(units.len());
            let mut candidate = units.clone();
            candidate.drain(start..end);
            if keep(&candidate) {
                units = candidate; // chunk removed; retry same offset
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            return units;
        }
        chunk /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_crashing_core() {
        let noise: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let input = FuzzInput::Rule(format!("{noise}TRIGGER\n{noise}"));
        let min = minimize(&input, |cand| match cand {
            FuzzInput::Rule(s) => s.contains("TRIGGER"),
            _ => false,
        });
        assert_eq!(min, FuzzInput::Rule("TRIGGER".to_owned()));
    }

    #[test]
    fn character_pass_trims_within_the_line() {
        let input = FuzzInput::Rule("prefix TRIGGER suffix".to_owned());
        let min = minimize(&input, |cand| match cand {
            FuzzInput::Rule(s) => s.contains("TRIGGER"),
            _ => false,
        });
        assert_eq!(min, FuzzInput::Rule("TRIGGER".to_owned()));
    }

    #[test]
    fn pack_minimization_shrinks_to_the_crashing_bytes() {
        let mut bytes = vec![0u8; 64];
        bytes[40] = 0xEE;
        let input = FuzzInput::Pack(bytes);
        let min = minimize(&input, |cand| match cand {
            FuzzInput::Pack(b) => b.contains(&0xEE),
            _ => false,
        });
        assert_eq!(min, FuzzInput::Pack(vec![0xEE]));
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged_in_spirit() {
        // If nothing reproduces, shrinking keeps failing and the original
        // survives (no unit removal is ever accepted).
        let input = FuzzInput::Rule("a\nb\nc".to_owned());
        let min = minimize(&input, |_| false);
        assert_eq!(min, input);
    }

    #[test]
    fn template_minimization_drops_irrelevant_directives() {
        let text =
            "cognicrypt-fuzz/1 template\nbase 9\nmethod 0\nrule A\nrule B\nrule C\nreturn key\n";
        let input = FuzzInput::decode(text).unwrap();
        let min = minimize(&input, |cand| match cand {
            FuzzInput::Template(spec) => spec.entries.iter().any(|e| e.rule == "B"),
            _ => false,
        });
        match min {
            FuzzInput::Template(spec) => {
                assert_eq!(spec.entries.len(), 1);
                assert_eq!(spec.entries[0].rule, "B");
                assert_eq!(spec.return_object, None);
            }
            _ => panic!("kind changed"),
        }
    }
}
