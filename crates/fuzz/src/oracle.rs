//! Differential oracles.
//!
//! Beyond "never panic", every input is checked against the properties
//! the paper's pipeline promises:
//!
//! 1. **Round trip** — `parse → print → parse` is the identity on rule
//!    semantics, and a second print is byte-identical (`crysl`).
//! 2. **State machine** — the minimized DFA accepts every enumerated
//!    generation path; the DFA of the *unrolled* `ORDER` accepts exactly
//!    the enumerated path set; minimization is a fixpoint and preserves
//!    the accepted language (`statemachine`).
//! 3. **Generated code** — whenever generation succeeds, the emitted Java
//!    parses, type-checks, and is misuse-free under `sast`.
//! 4. **Engine determinism** — warm vs. cold engines and 1 vs. N worker
//!    threads produce byte-identical output (or identical errors).
//! 5. **Pack decoding** — hostile `.crpack` bytes are rejected with a
//!    typed error, never a panic, and any *accepted* pack re-encodes
//!    canonically: `to_bytes` is a byte-level fixpoint that preserves
//!    the decoded rule set (`rules::open_bytes`).

use std::collections::BTreeSet;

use cognicrypt_core::{GenEngine, Generator};
use crysl::ast::{OrderExpr, Rule};
use javamodel::typetable::{ClassDef, TypeTable};
use sast::{analyze_unit, AnalyzerOptions};
use statemachine::paths::{enumerate, unroll, PathLimit};
use statemachine::{Dfa, Nfa, StateMachineError};
use usecases::UseCase;

use crate::input::TemplateSpec;

/// Cap on DFA subset-construction size used by the fuzz oracles — far
/// above anything a real rule produces, low enough that hostile `ORDER`
/// expressions cannot blow up the fuzz run.
pub const DFA_FUZZ_STATE_LIMIT: usize = 4096;

/// A violated oracle: which property failed and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// Short oracle name — becomes part of the crash fingerprint.
    pub oracle: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl OracleFailure {
    fn new(oracle: &'static str, detail: impl Into<String>) -> Self {
        OracleFailure {
            oracle,
            detail: detail.into(),
        }
    }
}

/// Everything the oracles need, built once per fuzz session.
pub struct FuzzEnv {
    /// The shipped use cases (template-mutation scaffolds).
    pub cases: Vec<UseCase>,
    /// A warm engine over the shipped JCA rules.
    pub engine: GenEngine,
    /// A valid `.crpack` image of the shipped rules — the mutation base
    /// for the `pack` input family.
    pub pack_bytes: Vec<u8>,
}

impl FuzzEnv {
    /// Builds the environment from the shipped rule set and use cases.
    ///
    /// # Errors
    ///
    /// Returns the rule-set parse error message if the shipped rules are
    /// broken (a build defect, not a fuzz finding).
    pub fn new() -> Result<FuzzEnv, String> {
        let pack =
            rules::open(rules::PackSource::Embedded).map_err(|e| format!("shipped rules: {e}"))?;
        let pack_bytes = pack
            .to_bytes()
            .map_err(|e| format!("shipped rules do not pack: {e}"))?;
        let engine = GenEngine::builder()
            .rules(pack.rules)
            .type_table(javamodel::jca::jca_type_table())
            .build()
            .map_err(|e| format!("engine: {e}"))?;
        Ok(FuzzEnv {
            cases: usecases::all_use_cases(),
            engine,
            pack_bytes,
        })
    }
}

/// Runs the pack-decoder oracle on raw `.crpack` bytes. Rejection with
/// a typed error is the expected outcome for mutated bytes; an accepted
/// pack must re-encode canonically (oracle 5).
///
/// # Errors
///
/// Returns the first violated oracle.
pub fn check_pack(bytes: &[u8]) -> Result<(), OracleFailure> {
    let Ok(pack) = rules::open_bytes(bytes) else {
        return Ok(()); // typed rejection is the intended defense
    };
    let reencoded = pack.to_bytes().map_err(|e| {
        OracleFailure::new(
            "pack-reencode",
            format!("accepted pack fails to re-encode: {e}"),
        )
    })?;
    let reopened = rules::open_bytes(&reencoded).map_err(|e| {
        OracleFailure::new(
            "pack-reopen",
            format!("canonical re-encode does not decode: {e}"),
        )
    })?;
    if reopened.rules != pack.rules || reopened.version != pack.version {
        return Err(OracleFailure::new(
            "pack-roundtrip",
            "decode(to_bytes(pack)) changed the rule set or version",
        ));
    }
    let restable = reopened.to_bytes().map_err(|e| {
        OracleFailure::new("pack-reencode", format!("second re-encode failed: {e}"))
    })?;
    if restable != reencoded {
        return Err(OracleFailure::new(
            "pack-canonical",
            "to_bytes is not a byte-level fixpoint",
        ));
    }
    Ok(())
}

/// Runs the front-end oracles on arbitrary CrySL source. Sources that
/// fail to parse are fine (robustness is "reject, don't crash"); sources
/// that parse must satisfy oracles 1 and 2.
///
/// # Errors
///
/// Returns the first violated oracle.
pub fn check_rule(src: &str) -> Result<(), OracleFailure> {
    let Ok(rule) = crysl::parse_rule(src) else {
        return Ok(());
    };
    check_roundtrip(&rule)?;
    check_statemachine(&rule)
}

fn check_roundtrip(rule: &Rule) -> Result<(), OracleFailure> {
    let printed = crysl::printer::print_rule(rule);
    let reparsed = crysl::parse_rule(&printed).map_err(|e| {
        OracleFailure::new(
            "roundtrip-parse",
            format!("printed rule does not parse: {e}"),
        )
    })?;
    if reparsed != *rule {
        return Err(OracleFailure::new(
            "roundtrip-ast",
            format!("parse(print(rule)) differs for `{}`", rule.class_name),
        ));
    }
    let reprinted = crysl::printer::print_rule(&reparsed);
    if reprinted != printed {
        return Err(OracleFailure::new(
            "roundtrip-print",
            format!("print is not a fixpoint for `{}`", rule.class_name),
        ));
    }
    Ok(())
}

fn check_statemachine(rule: &Rule) -> Result<(), OracleFailure> {
    let nfa = Nfa::from_rule(rule).map_err(|e| {
        OracleFailure::new("nfa-build", format!("validated rule rejected by NFA: {e}"))
    })?;
    let dfa = match Dfa::try_from_nfa(&nfa, DFA_FUZZ_STATE_LIMIT) {
        Ok(dfa) => dfa,
        // Hitting the cap is the intended defense, not a finding.
        Err(StateMachineError::TooManyStates { .. }) => return Ok(()),
        Err(e) => {
            return Err(OracleFailure::new(
                "dfa-build",
                format!("subset construction failed: {e}"),
            ))
        }
    };
    let min = dfa.minimize();
    if min.state_count() > dfa.state_count() {
        return Err(OracleFailure::new(
            "minimize-grows",
            format!("{} -> {} states", dfa.state_count(), min.state_count()),
        ));
    }
    if min.minimize().state_count() != min.state_count() {
        return Err(OracleFailure::new(
            "minimize-fixpoint",
            format!("re-minimization changed {} states", min.state_count()),
        ));
    }

    let paths = match enumerate(rule, PathLimit::default()) {
        Ok(paths) => paths,
        // The enumeration cap is the intended defense.
        Err(StateMachineError::TooManyPaths { .. }) => return Ok(()),
        Err(e) => {
            return Err(OracleFailure::new(
                "path-enumeration",
                format!("validated rule has no path set: {e}"),
            ))
        }
    };
    for p in &paths {
        let word = p.iter().map(String::as_str);
        if !dfa.accepts(word.clone()) {
            return Err(OracleFailure::new(
                "dfa-rejects-path",
                format!("path {p:?} rejected by DFA"),
            ));
        }
        if !min.accepts(word) {
            return Err(OracleFailure::new(
                "min-rejects-path",
                format!("path {p:?} rejected by minimized DFA"),
            ));
        }
    }

    // Exactness: the unrolled ORDER denotes a finite language that must
    // equal the enumerated path set. (An absent ORDER means "any usage",
    // where enumeration answers with the declaration-order path instead —
    // exactness is not defined there.)
    if rule.order != OrderExpr::Empty {
        let mut unrolled = rule.clone();
        unrolled.order = unroll(&rule.order);
        let Ok(nfa_u) = Nfa::from_rule(&unrolled) else {
            return Ok(());
        };
        let Ok(dfa_u) = Dfa::try_from_nfa(&nfa_u, DFA_FUZZ_STATE_LIMIT) else {
            return Ok(());
        };
        let max_len = paths.iter().map(Vec::len).max().unwrap_or(0);
        if let Some(words) = accepted_words(&dfa_u, max_len + 1, paths.len() + 1) {
            let path_set: BTreeSet<Vec<String>> = paths.iter().cloned().collect();
            if words != path_set {
                return Err(OracleFailure::new(
                    "path-exactness",
                    format!(
                        "unrolled DFA accepts {} words, enumeration found {} paths for `{}`",
                        words.len(),
                        path_set.len(),
                        rule.class_name
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Depth-first enumeration of all words of length ≤ `max_len` the DFA
/// accepts; `None` if more than `cap` words exist (caller gives up).
fn accepted_words(dfa: &Dfa, max_len: usize, cap: usize) -> Option<BTreeSet<Vec<String>>> {
    fn dfs(
        dfa: &Dfa,
        state: usize,
        word: &mut Vec<String>,
        max_len: usize,
        cap: usize,
        out: &mut BTreeSet<Vec<String>>,
    ) -> bool {
        if dfa.is_accepting(state) {
            out.insert(word.clone());
            if out.len() > cap {
                return false;
            }
        }
        if word.len() == max_len {
            return true;
        }
        let edges: Vec<(String, usize)> = dfa
            .outgoing(state)
            .map(|(l, t)| (l.to_owned(), t))
            .collect();
        for (label, target) in edges {
            word.push(label);
            let ok = dfs(dfa, target, word, max_len, cap, out);
            word.pop();
            if !ok {
                return false;
            }
        }
        true
    }
    let mut out = BTreeSet::new();
    let mut word = Vec::new();
    dfs(dfa, dfa.start(), &mut word, max_len, cap, &mut out).then_some(out)
}

/// Runs the generation oracles on a template spec: generation must not
/// panic; successful output must parse, type-check and be misuse-free
/// (oracle 3); and warm/cold/parallel runs must agree byte-for-byte
/// (oracle 4).
///
/// # Errors
///
/// Returns the first violated oracle.
pub fn check_template(env: &FuzzEnv, spec: &TemplateSpec) -> Result<(), OracleFailure> {
    let Some(template) = spec.build(&env.cases) else {
        return Ok(()); // unresolvable base/method: inert input
    };

    let warm = env.engine.generate(&template);
    let again = env.engine.generate(&template);
    if outcome(&warm) != outcome(&again) {
        return Err(OracleFailure::new(
            "determinism-warm",
            "two warm runs of the same engine disagree",
        ));
    }
    let cold =
        Generator::new().generate_uncached(&template, env.engine.rules(), env.engine.table());
    if outcome(&warm) != outcome(&cold) {
        return Err(OracleFailure::new(
            "determinism-cold",
            format!(
                "warm `{}` vs cold `{}`",
                outcome_brief(&warm),
                outcome_brief(&cold)
            ),
        ));
    }

    let pair = [template.clone(), template.clone()];
    for threads in [1usize, 4] {
        for (slot, result) in env.engine.generate_batch(&pair, threads).iter().enumerate() {
            let batch_outcome = match result {
                Ok(g) => g.java_source.clone(),
                Err(e) => format!("error: {e}"),
            };
            if batch_outcome != outcome(&warm) {
                return Err(OracleFailure::new(
                    "determinism-batch",
                    format!("slot {slot} at {threads} threads diverges from the warm run"),
                ));
            }
        }
    }

    let Ok(generated) = warm else {
        return Ok(()); // clean rejection is a fine outcome
    };

    let mut table: TypeTable = env.engine.table().clone();
    table.add(ClassDef::new(template.class_name.clone()).ctor(vec![]));
    let reparsed = parse_generated(&generated.java_source, &table)?;
    javamodel::typecheck::check_unit(&reparsed, &table)
        .map_err(|e| OracleFailure::new("generated-typecheck", format!("generated Java: {e}")))?;
    let misuses = analyze_unit(
        &reparsed,
        env.engine.rules(),
        env.engine.table(),
        AnalyzerOptions::default(),
    );
    if !misuses.is_empty() {
        return Err(OracleFailure::new(
            "generated-misuse",
            format!("{} misuses, first: {}", misuses.len(), misuses[0]),
        ));
    }
    Ok(())
}

fn parse_generated(
    source: &str,
    table: &TypeTable,
) -> Result<javamodel::ast::CompilationUnit, OracleFailure> {
    javamodel::parser::parse_java(source, table)
        .map_err(|e| OracleFailure::new("generated-parse", format!("generated Java: {e}")))
}

fn outcome<E: std::fmt::Display>(r: &Result<cognicrypt_core::Generated, E>) -> String {
    match r {
        Ok(g) => g.java_source.clone(),
        Err(e) => format!("error: {e}"),
    }
}

fn outcome_brief<E: std::fmt::Display>(r: &Result<cognicrypt_core::Generated, E>) -> String {
    match r {
        Ok(g) => format!("ok ({} bytes)", g.java_source.len()),
        Err(e) => format!("error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::spec_from_use_case;

    #[test]
    fn shipped_rules_satisfy_the_front_end_oracles() {
        for (name, src) in rules::RULE_SOURCES {
            check_rule(src).unwrap_or_else(|f| panic!("{name}: {}: {}", f.oracle, f.detail));
        }
    }

    #[test]
    fn unparsable_source_is_not_a_finding() {
        check_rule("SPEC ???").unwrap();
        check_rule("").unwrap();
    }

    #[test]
    fn shipped_use_case_chains_satisfy_the_generation_oracles() {
        let env = FuzzEnv::new().unwrap();
        let spec = spec_from_use_case(&env.cases[10]); // hashing: smallest
        check_template(&env, &spec).unwrap_or_else(|f| panic!("{}: {}", f.oracle, f.detail));
    }

    #[test]
    fn the_shipped_pack_satisfies_the_pack_oracle() {
        let env = FuzzEnv::new().unwrap();
        check_pack(&env.pack_bytes).unwrap_or_else(|f| panic!("{}: {}", f.oracle, f.detail));
    }

    #[test]
    fn rejected_pack_bytes_are_not_a_finding() {
        check_pack(b"").unwrap();
        check_pack(b"CRPK but far too short").unwrap();
        let env = FuzzEnv::new().unwrap();
        let mut flipped = env.pack_bytes.clone();
        flipped[10] ^= 0xff;
        check_pack(&flipped).unwrap();
    }

    #[test]
    fn unresolvable_spec_is_inert() {
        let env = FuzzEnv::new().unwrap();
        let spec = TemplateSpec {
            base: 99,
            method: 0,
            entries: vec![],
            return_object: None,
        };
        check_template(&env, &spec).unwrap();
    }
}
