//! Fuzz inputs and the on-disk corpus format.
//!
//! Every input the fuzzer runs — generated, mutated, or replayed from the
//! committed corpus — is a [`FuzzInput`]. The corpus serialization is a
//! plain-text, line-oriented format so reproducers diff well and can be
//! minimized by removing lines:
//!
//! ```text
//! cognicrypt-fuzz/1 rule
//! SPEC javax.crypto.Example
//! ...raw CrySL source...
//! ```
//!
//! ```text
//! cognicrypt-fuzz/1 template
//! base 9
//! method 0
//! rule javax.crypto.spec.PBEKeySpec
//! bind pwd password
//! return key
//! ```
//!
//! A `rule` input is arbitrary CrySL source text (well-formed or hostile).
//! A `template` input rebuilds the fluent-API chain of one method of a
//! shipped use-case template from `rule`/`bind`/`return` directives, so a
//! reproducer is meaningful without serializing whole Java templates.
//! A `pack` input is a (usually mutated) `.crpack` binary rule-pack
//! image, hex-encoded in 64-character lines so reproducers stay
//! text-diffable:
//!
//! ```text
//! cognicrypt-fuzz/1 pack
//! 4352504b010000000e000000...
//! ```

use cognicrypt_core::template::{Binding, ChainEntry, GeneratorChain, Template};
use usecases::UseCase;

/// Magic first-line prefix of every corpus file.
pub const CORPUS_MAGIC: &str = "cognicrypt-fuzz/1";

/// One fuzz input: hostile CrySL source, a template-chain spec, or a
/// binary rule-pack image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzInput {
    /// Raw CrySL source text fed to the `crysl` front-end.
    Rule(String),
    /// A fluent-API chain spec applied to a shipped use-case template.
    Template(TemplateSpec),
    /// Raw `.crpack` bytes fed to the rule-pack decoder.
    Pack(Vec<u8>),
}

/// A serializable description of a fluent-API chain, grafted onto one
/// method of a base use-case template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSpec {
    /// Table-1 id of the use case whose template is the scaffold.
    pub base: u8,
    /// Index of the template method whose chain is replaced.
    pub method: usize,
    /// The chain entries, in `considerCrySLRule` order.
    pub entries: Vec<SpecEntry>,
    /// The `addReturnObject` variable, if any.
    pub return_object: Option<String>,
}

/// One `considerCrySLRule` entry of a [`TemplateSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEntry {
    /// Class name passed to `considerCrySLRule`.
    pub rule: String,
    /// `(template_var, rule_var)` bindings attached to this entry.
    pub bindings: Vec<(String, String)>,
}

impl TemplateSpec {
    /// Grafts the spec's chain onto its base template. Returns `None`
    /// when the base id or method index does not resolve — such a spec
    /// is simply uninteresting, not an error.
    pub fn build(&self, cases: &[UseCase]) -> Option<Template> {
        let base = cases.iter().find(|u| u.id == self.base)?;
        let mut template = base.template.clone();
        let method = template.methods.get_mut(self.method)?;
        method.chain = Some(GeneratorChain {
            entries: self
                .entries
                .iter()
                .map(|e| ChainEntry {
                    rule: e.rule.clone(),
                    bindings: e
                        .bindings
                        .iter()
                        .map(|(t, r)| Binding {
                            template_var: t.clone(),
                            rule_var: r.clone(),
                        })
                        .collect(),
                })
                .collect(),
            return_object: self.return_object.clone(),
        });
        Some(template)
    }
}

impl FuzzInput {
    /// The corpus kind tag (`rule`, `template` or `pack`).
    pub fn kind(&self) -> &'static str {
        match self {
            FuzzInput::Rule(_) => "rule",
            FuzzInput::Template(_) => "template",
            FuzzInput::Pack(_) => "pack",
        }
    }

    /// Serializes the input in corpus format (header line + body).
    pub fn encode(&self) -> String {
        match self {
            FuzzInput::Rule(src) => format!("{CORPUS_MAGIC} rule\n{src}"),
            FuzzInput::Pack(bytes) => {
                let mut out = format!("{CORPUS_MAGIC} pack\n");
                for chunk in bytes.chunks(32) {
                    for b in chunk {
                        out.push_str(&format!("{b:02x}"));
                    }
                    out.push('\n');
                }
                out
            }
            FuzzInput::Template(spec) => {
                let mut out = format!(
                    "{CORPUS_MAGIC} template\nbase {}\nmethod {}\n",
                    spec.base, spec.method
                );
                for e in &spec.entries {
                    out.push_str(&format!("rule {}\n", e.rule));
                    for (t, r) in &e.bindings {
                        out.push_str(&format!("bind {t} {r}\n"));
                    }
                }
                if let Some(r) = &spec.return_object {
                    out.push_str(&format!("return {r}\n"));
                }
                out
            }
        }
    }

    /// Parses a corpus file back into an input.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a missing/unknown header or a
    /// malformed `template` directive.
    pub fn decode(text: &str) -> Result<FuzzInput, String> {
        let (header, body) = match text.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (text, ""),
        };
        let kind = header
            .strip_prefix(CORPUS_MAGIC)
            .map(str::trim)
            .ok_or_else(|| format!("missing `{CORPUS_MAGIC}` header"))?;
        match kind {
            "rule" => Ok(FuzzInput::Rule(body.to_owned())),
            "template" => decode_template(body).map(FuzzInput::Template),
            "pack" => decode_pack(body).map(FuzzInput::Pack),
            other => Err(format!("unknown input kind `{other}`")),
        }
    }
}

fn decode_pack(body: &str) -> Result<Vec<u8>, String> {
    let digits: Vec<u8> = body.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !digits.len().is_multiple_of(2) {
        return Err(format!("pack hex has odd length {}", digits.len()));
    }
    let nibble = |d: u8| -> Result<u8, String> {
        match d {
            b'0'..=b'9' => Ok(d - b'0'),
            b'a'..=b'f' => Ok(d - b'a' + 10),
            b'A'..=b'F' => Ok(d - b'A' + 10),
            other => Err(format!("bad pack hex digit `{}`", other as char)),
        }
    };
    digits
        .chunks_exact(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

fn decode_template(body: &str) -> Result<TemplateSpec, String> {
    let mut spec = TemplateSpec {
        base: 0,
        method: 0,
        entries: Vec::new(),
        return_object: None,
    };
    let mut saw_base = false;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
        match op {
            "base" => {
                spec.base = rest.parse().map_err(|_| format!("bad base `{rest}`"))?;
                saw_base = true;
            }
            "method" => {
                spec.method = rest.parse().map_err(|_| format!("bad method `{rest}`"))?;
            }
            "rule" => spec.entries.push(SpecEntry {
                rule: rest.to_owned(),
                bindings: Vec::new(),
            }),
            "bind" => {
                let (t, r) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("bad bind `{rest}`"))?;
                spec.entries
                    .last_mut()
                    .ok_or("bind before any rule")?
                    .bindings
                    .push((t.to_owned(), r.to_owned()));
            }
            "return" => spec.return_object = Some(rest.to_owned()),
            other => return Err(format!("unknown template directive `{other}`")),
        }
    }
    if !saw_base {
        return Err("template spec is missing `base`".to_owned());
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_roundtrips_through_the_corpus_format() {
        let input = FuzzInput::Rule("SPEC X\nEVENTS a: f();\nORDER a".to_owned());
        let decoded = FuzzInput::decode(&input.encode()).unwrap();
        assert_eq!(input, decoded);
    }

    #[test]
    fn template_roundtrips_through_the_corpus_format() {
        let input = FuzzInput::Template(TemplateSpec {
            base: 9,
            method: 0,
            entries: vec![
                SpecEntry {
                    rule: "java.security.SecureRandom".into(),
                    bindings: vec![("salt".into(), "out".into())],
                },
                SpecEntry {
                    rule: "javax.crypto.spec.PBEKeySpec".into(),
                    bindings: vec![],
                },
            ],
            return_object: Some("key".into()),
        });
        let decoded = FuzzInput::decode(&input.encode()).unwrap();
        assert_eq!(input, decoded);
    }

    #[test]
    fn pack_roundtrips_through_the_corpus_format() {
        let bytes: Vec<u8> = (0u16..300).map(|b| (b % 251) as u8).collect();
        let input = FuzzInput::Pack(bytes);
        let encoded = input.encode();
        assert!(encoded.starts_with("cognicrypt-fuzz/1 pack\n"));
        let decoded = FuzzInput::decode(&encoded).unwrap();
        assert_eq!(input, decoded);

        let empty = FuzzInput::Pack(Vec::new());
        assert_eq!(FuzzInput::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FuzzInput::decode("not a corpus file").is_err());
        assert!(FuzzInput::decode("cognicrypt-fuzz/1 widget\n").is_err());
        assert!(FuzzInput::decode("cognicrypt-fuzz/1 template\nbind a b\n").is_err());
        assert!(FuzzInput::decode("cognicrypt-fuzz/1 template\nrule X\n").is_err());
        assert!(FuzzInput::decode("cognicrypt-fuzz/1 pack\nabc\n").is_err());
        assert!(FuzzInput::decode("cognicrypt-fuzz/1 pack\nzz\n").is_err());
    }

    #[test]
    fn build_grafts_the_chain_onto_the_base_template() {
        let cases = usecases::all_use_cases();
        let spec = TemplateSpec {
            base: 11,
            method: 0,
            entries: vec![SpecEntry {
                rule: "java.security.MessageDigest".into(),
                bindings: vec![],
            }],
            return_object: None,
        };
        let t = spec.build(&cases).unwrap();
        let chain = t.methods[0].chain.as_ref().unwrap();
        assert_eq!(chain.entries[0].rule, "java.security.MessageDigest");

        let bad = TemplateSpec {
            base: 99,
            ..spec.clone()
        };
        assert!(bad.build(&cases).is_none());
        let bad_method = TemplateSpec { method: 99, ..spec };
        assert!(bad_method.build(&cases).is_none());
    }
}
