//! Panic capture and crash fingerprinting.
//!
//! A crash is identified by its *panic site* (`file:line` of the
//! `panic!`/`unwrap` that fired), not by the input that triggered it, so
//! thousands of inputs hitting the same defect deduplicate to one crash
//! class. Capture works by installing a process-wide panic hook exactly
//! once; while a guarded run is active the hook records the panic into a
//! thread-local (same-thread panics) and a process-global slot (panics on
//! engine worker threads, which `scatter` contains before they reach us)
//! instead of printing to stderr — fuzz logs stay byte-deterministic.
//! Outside guarded runs the hook delegates to the previously installed
//! hook, so ordinary test failures keep their backtraces.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe, PanicHookInfo};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// A deduplicable crash: the panic site and its (first) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crash {
    /// Normalized `file:line` of the panic site — the dedup key.
    pub fingerprint: String,
    /// The panic payload, flattened to one line.
    pub message: String,
}

type Hook = Box<dyn Fn(&PanicHookInfo<'_>) + Send + Sync>;

static INSTALL: Once = Once::new();
static PREV_HOOK: OnceLock<Hook> = OnceLock::new();
static GUARDED: AtomicUsize = AtomicUsize::new(0);
static CROSS_THREAD: Mutex<Option<Crash>> = Mutex::new(None);

thread_local! {
    static LAST: RefCell<Option<Crash>> = const { RefCell::new(None) };
}

fn record(info: &PanicHookInfo<'_>) {
    let fingerprint = match info.location() {
        Some(loc) => format!("{}:{}", normalize_path(loc.file()), loc.line()),
        None => "unknown:0".to_owned(),
    };
    let payload = info.payload();
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned());
    let crash = Crash {
        fingerprint,
        message: flatten(&message),
    };
    LAST.with(|l| *l.borrow_mut() = Some(crash.clone()));
    let mut slot = CROSS_THREAD.lock().unwrap_or_else(|p| p.into_inner());
    slot.get_or_insert(crash);
}

/// Strips the machine-specific path prefix so fingerprints are stable
/// across checkouts: everything before the last `crates/` (or, failing
/// that, `src/`) component is dropped.
fn normalize_path(file: &str) -> String {
    let unified = file.replace('\\', "/");
    if let Some(i) = unified.rfind("crates/") {
        return unified[i..].to_owned();
    }
    if let Some(i) = unified.rfind("src/") {
        return unified[i..].to_owned();
    }
    unified
}

fn flatten(message: &str) -> String {
    let one_line: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    if one_line.len() > 160 {
        let mut cut = 160;
        while !one_line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &one_line[..cut])
    } else {
        one_line
    }
}

fn install() {
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        let _ = PREV_HOOK.set(prev);
        panic::set_hook(Box::new(|info| {
            if GUARDED.load(Ordering::SeqCst) > 0 {
                record(info);
            } else if let Some(prev) = PREV_HOOK.get() {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, capturing any panic — including panics on engine worker
/// threads that `scatter` contains before they can unwind into us — as a
/// fingerprinted [`Crash`]. Nested guarded runs are allowed.
pub fn run_guarded<R>(f: impl FnOnce() -> R) -> Result<R, Crash> {
    install();
    GUARDED.fetch_add(1, Ordering::SeqCst);
    LAST.with(|l| *l.borrow_mut() = None);
    *CROSS_THREAD.lock().unwrap_or_else(|p| p.into_inner()) = None;
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    GUARDED.fetch_sub(1, Ordering::SeqCst);
    let own = LAST.with(|l| l.borrow_mut().take());
    let cross = CROSS_THREAD
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take();
    match result {
        Ok(value) => match cross {
            // A worker thread panicked even though the call returned.
            Some(crash) => Err(crash),
            None => Ok(value),
        },
        Err(_) => Err(own.or(cross).unwrap_or(Crash {
            fingerprint: "unknown:0".to_owned(),
            message: "panic with no recorded site".to_owned(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_fingerprint_and_message() {
        let err = run_guarded(|| panic!("boom {}", 42)).unwrap_err();
        assert!(
            err.fingerprint.starts_with("crates/fuzz/src/crash.rs:"),
            "{}",
            err.fingerprint
        );
        assert_eq!(err.message, "boom 42");
    }

    #[test]
    fn success_passes_through() {
        assert_eq!(run_guarded(|| 7).unwrap(), 7);
    }

    #[test]
    fn same_site_same_fingerprint_different_messages() {
        let f = |n: u32| run_guarded(move || -> () { panic!("n = {n}") }).unwrap_err();
        let a = f(1);
        let b = f(2);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.message, b.message);
    }

    #[test]
    fn captures_worker_thread_panics_contained_by_the_caller() {
        let err = run_guarded(|| {
            // Simulates the engine's scatter: the worker panic never
            // unwinds into this thread.
            let handle = std::thread::spawn(|| panic!("worker died"));
            let _ = handle.join();
            "survived"
        })
        .unwrap_err();
        assert_eq!(err.message, "worker died");
    }

    #[test]
    fn messages_are_flattened_to_one_line() {
        let err = run_guarded(|| -> () { panic!("line one\nline two") }).unwrap_err();
        assert_eq!(err.message, "line one line two");
    }
}
