//! Grammar-based generation of valid-by-construction CrySL rules.
//!
//! The generator builds a [`Rule`] AST directly — objects, events,
//! aggregates, `ORDER`, constraints and predicates are drawn from the
//! seeded PRNG but always reference declared names, and aggregates only
//! reference earlier labels so they are acyclic by construction — then
//! prints it through `crysl::printer`. The produced source is the fuzz
//! input: it must tokenize, parse and validate, and the parsed rule must
//! survive the round-trip and state-machine oracles. Complexity (event
//! count, `ORDER` depth, constraint nesting) is tunable via
//! [`GrammarConfig`].

use crysl::ast::*;
use crysl::printer::print_rule;
use devharness::rng::RandomSource;

/// Tunable size/complexity knobs for generated rules.
#[derive(Debug, Clone, Copy)]
pub struct GrammarConfig {
    /// Maximum `OBJECTS` declarations.
    pub max_objects: usize,
    /// Maximum method events.
    pub max_events: usize,
    /// Maximum aggregate declarations.
    pub max_aggregates: usize,
    /// Maximum nesting depth of the `ORDER` expression.
    pub max_order_depth: usize,
    /// Maximum `CONSTRAINTS` entries.
    pub max_constraints: usize,
    /// Maximum nesting depth of a composite constraint.
    pub max_constraint_depth: usize,
    /// Maximum predicates per `REQUIRES`/`ENSURES`/`NEGATES` section.
    pub max_predicates: usize,
}

impl Default for GrammarConfig {
    fn default() -> Self {
        GrammarConfig {
            max_objects: 6,
            max_events: 8,
            max_aggregates: 2,
            max_order_depth: 4,
            max_constraints: 5,
            max_constraint_depth: 2,
            max_predicates: 3,
        }
    }
}

const TYPE_POOL: &[(&str, u8)] = &[
    ("int", 0),
    ("long", 0),
    ("boolean", 0),
    ("char", 1),
    ("byte", 1),
    ("byte", 2),
    ("java.lang.String", 0),
    ("java.security.Key", 0),
    ("javax.crypto.SecretKey", 0),
];

const PACKAGE_POOL: &[&str] = &["javax.crypto", "java.security", "de.fuzz.gen"];

const STR_CHARSET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghij0123456789/-_.";
/// Rarely-injected characters that exercise the printer's string escaping.
const STR_HOSTILE: &[u8] = b"\"\\\n";

fn pick<'a, T>(rng: &mut dyn RandomSource, items: &'a [T]) -> &'a T {
    &items[rng.next_below(items.len() as u64) as usize]
}

fn count(rng: &mut dyn RandomSource, max: usize) -> usize {
    if max == 0 {
        0
    } else {
        rng.next_below(max as u64 + 1) as usize
    }
}

fn gen_string(rng: &mut dyn RandomSource) -> String {
    let len = 1 + rng.next_below(12) as usize;
    let mut s = String::new();
    for _ in 0..len {
        // 1-in-32 draws inject a quote/backslash/newline.
        let c = if rng.next_below(32) == 0 {
            *pick(rng, STR_HOSTILE)
        } else {
            *pick(rng, STR_CHARSET)
        };
        s.push(c as char);
    }
    s
}

fn gen_literal(rng: &mut dyn RandomSource) -> Literal {
    match rng.next_below(6) {
        0 => Literal::Bool(rng.next_bool()),
        1 => Literal::Int(*pick(rng, &[0i64, 1, -1, 128, 10000, i64::MAX, i64::MIN])),
        2 | 3 => Literal::Int(rng.next_range_i64(-1_000_000, 1_000_000)),
        _ => Literal::Str(gen_string(rng)),
    }
}

/// Generates one valid-by-construction CrySL rule as source text.
pub fn gen_rule_source(rng: &mut dyn RandomSource, config: &GrammarConfig) -> String {
    print_rule(&gen_rule(rng, config))
}

/// Generates one valid-by-construction CrySL rule as an AST.
pub fn gen_rule(rng: &mut dyn RandomSource, config: &GrammarConfig) -> Rule {
    let simple = format!("Gen{}", rng.next_below(1000));
    let class_name = if rng.next_bool() {
        QualifiedName::new(format!("{}.{simple}", pick(rng, PACKAGE_POOL)))
    } else {
        QualifiedName::new(simple.clone())
    };

    let objects: Vec<ObjectDecl> = (0..count(rng, config.max_objects))
        .map(|i| {
            let (name, dims) = *pick(rng, TYPE_POOL);
            ObjectDecl {
                ty: TypeRef {
                    name: name.to_owned(),
                    array_dims: dims,
                },
                name: format!("o{i}"),
            }
        })
        .collect();

    let mut events: Vec<EventDecl> = Vec::new();
    let n_methods = 1 + count(rng, config.max_events.saturating_sub(1));
    for i in 0..n_methods {
        let method_name = if i == 0 && rng.next_bool() {
            simple.clone() // a constructor event
        } else {
            format!("m{i}")
        };
        let return_var = if !objects.is_empty() && rng.next_below(4) == 0 {
            Some(pick(rng, &objects).name.clone())
        } else {
            None
        };
        let params = (0..count(rng, 3))
            .map(|_| match rng.next_below(4) {
                0 => ParamPattern::Wildcard,
                1 => ParamPattern::This,
                _ if !objects.is_empty() => ParamPattern::Var(pick(rng, &objects).name.clone()),
                _ => ParamPattern::Wildcard,
            })
            .collect();
        events.push(EventDecl::Method(MethodEvent {
            label: format!("e{i}"),
            return_var,
            method_name,
            params,
        }));
    }
    // Aggregates reference only earlier labels, so they are acyclic.
    for i in 0..count(rng, config.max_aggregates) {
        let existing: Vec<String> = events.iter().map(|e| e.label().to_owned()).collect();
        let members = (0..1 + count(rng, 2))
            .map(|_| pick(rng, &existing).clone())
            .collect();
        events.push(EventDecl::Aggregate {
            label: format!("A{i}"),
            members,
        });
    }
    let labels: Vec<String> = events.iter().map(|e| e.label().to_owned()).collect();

    let order = if rng.next_below(5) == 0 {
        OrderExpr::Empty
    } else {
        gen_order(rng, &labels, config.max_order_depth)
    };

    let constraints = if objects.is_empty() {
        Vec::new()
    } else {
        (0..count(rng, config.max_constraints))
            .map(|_| gen_constraint(rng, &objects, config.max_constraint_depth))
            .collect()
    };

    let forbidden = (0..count(rng, 2))
        .map(|i| ForbiddenMethod {
            method_name: format!("bad{i}"),
            param_types: (0..count(rng, 2))
                .map(|_| {
                    let (name, dims) = *pick(rng, TYPE_POOL);
                    TypeRef {
                        name: name.to_owned(),
                        array_dims: dims,
                    }
                })
                .collect(),
            replacement: if rng.next_bool() {
                Some(pick(rng, &labels).clone())
            } else {
                None
            },
        })
        .collect();

    let gen_pred = |rng: &mut dyn RandomSource, i: usize| {
        let mut args = vec![if objects.is_empty() || rng.next_bool() {
            PredArg::This
        } else {
            PredArg::Var(pick(rng, &objects).name.clone())
        }];
        for _ in 0..count(rng, 2) {
            args.push(match rng.next_below(4) {
                0 => PredArg::Wildcard,
                1 => PredArg::Lit(gen_literal(rng)),
                _ if !objects.is_empty() => PredArg::Var(pick(rng, &objects).name.clone()),
                _ => PredArg::Wildcard,
            });
        }
        Predicate {
            name: format!("p{i}"),
            args,
        }
    };

    let requires = (0..count(rng, config.max_predicates))
        .map(|i| gen_pred(rng, i))
        .collect();
    let ensures = (0..count(rng, config.max_predicates))
        .map(|i| EnsuredPredicate {
            predicate: gen_pred(rng, i + 10),
            after: if rng.next_below(3) == 0 {
                Some(pick(rng, &labels).clone())
            } else {
                None
            },
        })
        .collect();
    let negates = (0..count(rng, config.max_predicates))
        .map(|i| gen_pred(rng, i + 20))
        .collect();

    Rule {
        class_name,
        objects,
        events,
        order,
        constraints,
        forbidden,
        requires,
        ensures,
        negates,
    }
}

/// Mass-produces `n` distinct valid rules as `(file-stem, source)`
/// pairs forming one coherent loadable pack: class names are
/// de-randomized to `de.fuzz.gen.Load<i>` so the set has no duplicate
/// SPECs regardless of seed. This is the pack-loader load-test input —
/// write the pairs into a directory as `<stem>.crysl` files, open it as
/// a [`rules::PackSource::SourceDir`], compile it to a `.crpack`, and
/// the whole front-end (lexer, parser, validator, ORDER pipeline, pack
/// codec) chews through grammar-generated bulk instead of the 16
/// hand-written JCA rules.
pub fn gen_rule_pack(seed: u64, n: usize, config: &GrammarConfig) -> Vec<(String, String)> {
    let mut rng = devharness::rng::Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut rule = gen_rule(&mut rng, config);
            rule.class_name = QualifiedName::new(format!("de.fuzz.gen.Load{i:04}"));
            (format!("Load{i:04}"), print_rule(&rule))
        })
        .collect()
}

fn gen_order(rng: &mut dyn RandomSource, labels: &[String], depth: usize) -> OrderExpr {
    if depth == 0 || rng.next_below(3) == 0 {
        return OrderExpr::Label(pick(rng, labels).clone());
    }
    match rng.next_below(5) {
        0 => OrderExpr::Seq(
            (0..2 + count(rng, 1))
                .map(|_| gen_order(rng, labels, depth - 1))
                .collect(),
        ),
        1 => OrderExpr::Alt(
            (0..2 + count(rng, 1))
                .map(|_| gen_order(rng, labels, depth - 1))
                .collect(),
        ),
        2 => OrderExpr::Opt(Box::new(gen_order(rng, labels, depth - 1))),
        3 => OrderExpr::Star(Box::new(gen_order(rng, labels, depth - 1))),
        _ => OrderExpr::Plus(Box::new(gen_order(rng, labels, depth - 1))),
    }
}

fn gen_constraint(rng: &mut dyn RandomSource, objects: &[ObjectDecl], depth: usize) -> Constraint {
    let var = |rng: &mut dyn RandomSource| pick(rng, objects).name.clone();
    if depth > 0 && rng.next_below(3) == 0 {
        let a = Box::new(gen_constraint(rng, objects, depth - 1));
        let b = Box::new(gen_constraint(rng, objects, depth - 1));
        return match rng.next_below(3) {
            0 => Constraint::And(a, b),
            1 => Constraint::Or(a, b),
            _ => Constraint::Implies {
                antecedent: a,
                consequent: b,
            },
        };
    }
    match rng.next_below(4) {
        0 => Constraint::In {
            var: var(rng),
            choices: (0..count(rng, 4)).map(|_| gen_literal(rng)).collect(),
        },
        1 => Constraint::Cmp {
            left: Atom::Var(var(rng)),
            op: *pick(
                rng,
                &[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ],
            ),
            right: if rng.next_bool() {
                Atom::Var(var(rng))
            } else {
                Atom::Lit(gen_literal(rng))
            },
        },
        2 => Constraint::InstanceOf {
            var: var(rng),
            java_type: QualifiedName::new("javax.crypto.SecretKey"),
        },
        _ => Constraint::NeverTypeOf {
            var: var(rng),
            java_type: QualifiedName::new("java.lang.String"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devharness::rng::Xoshiro256;

    #[test]
    fn generated_rules_parse_and_validate() {
        let config = GrammarConfig::default();
        for seed in 0..200 {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let src = gen_rule_source(&mut rng, &config);
            crysl::parse_rule(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n---\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = GrammarConfig::default();
        let a = gen_rule_source(&mut Xoshiro256::seed_from_u64(7), &config);
        let b = gen_rule_source(&mut Xoshiro256::seed_from_u64(7), &config);
        assert_eq!(a, b);
    }

    #[test]
    fn mass_generated_pack_loads_compiles_and_survives_the_binary_roundtrip() {
        // The pack-loader load test: 60 grammar-generated rules written
        // as a source directory must load, precompile every ORDER
        // artefact into a `.crpack`, and decode back identically.
        let files = gen_rule_pack(0x10AD, 60, &GrammarConfig::default());
        assert_eq!(files.len(), 60);
        let mut stems: Vec<&str> = files.iter().map(|(s, _)| s.as_str()).collect();
        stems.sort_unstable();
        stems.dedup();
        assert_eq!(stems.len(), 60, "file stems must be unique");

        let dir =
            std::env::temp_dir().join(format!("cognicrypt-grammar-pack-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (stem, source) in &files {
            std::fs::write(dir.join(format!("{stem}.crysl")), source).unwrap();
        }

        let pack = rules::open_uncached(rules::PackSource::SourceDir(dir.clone()))
            .unwrap_or_else(|e| panic!("generated pack fails to load: {e}"));
        assert_eq!(pack.rules.len(), 60);
        let bytes = pack.to_bytes().expect("every generated ORDER compiles");
        let reopened = rules::open_bytes(&bytes).expect("compiled pack decodes");
        assert_eq!(pack.rules, reopened.rules);
        assert_eq!(pack.pack_fingerprint(), reopened.pack_fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mass_generation_is_deterministic_and_seed_sensitive() {
        let config = GrammarConfig::default();
        let a = gen_rule_pack(1, 10, &config);
        let b = gen_rule_pack(1, 10, &config);
        let c = gen_rule_pack(2, 10, &config);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
