//! Deterministic fuzzing and robustness harness for the CrySL front-end
//! and the generation pipeline behind it.
//!
//! Everything is reproducible from a single `u64` seed: each iteration
//! derives its own PRNG stream, inputs come from four deterministic
//! sources (grammar-based generation of valid rules, byte/token mutation
//! of rule sources, structural mutation of fluent-API template chains,
//! byte mutation of compiled `.crpack` rule-pack images), and the run
//! log contains no timing, so two runs with the same seed
//! and budget are byte-identical — including the crash reproducers they
//! write.
//!
//! A *crash* is a panic anywhere in the pipeline (captured and
//! fingerprinted by panic site, see [`crash`]) **or** a violated
//! differential oracle (see [`oracle`] — fingerprinted as
//! `oracle:<name>`). Crashes deduplicate by fingerprint; the first input
//! per fingerprint is minimized ([`minimize`]) and written to the corpus
//! directory as `crash-<fingerprint-slug>.txt`. Corpus files replay
//! before the budget loop, so committed reproducers act as regression
//! gates (`--budget 0` = replay only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod grammar;
pub mod input;
pub mod minimize;
pub mod mutate;
pub mod oracle;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use devharness::rng::{RandomSource, Xoshiro256};

use crate::crash::{run_guarded, Crash};
use crate::grammar::GrammarConfig;
use crate::input::FuzzInput;
pub use crate::oracle::FuzzEnv;

/// Odd constant (golden-ratio based) spacing the per-iteration seeds.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fuzz session: replay the corpus, then run `budget` fresh inputs.
#[derive(Debug, Clone, Default)]
pub struct FuzzConfig {
    /// Number of fresh inputs to generate and execute.
    pub budget: usize,
    /// Master seed; every derived input is a pure function of it.
    pub seed: u64,
    /// Corpus directory: replayed before the budget loop, and the
    /// destination for new crash reproducers.
    pub corpus: Option<PathBuf>,
}

/// One deduplicated crash class found during a session.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Panic-site (`file:line`) or oracle (`oracle:<name>`) fingerprint.
    pub fingerprint: String,
    /// The panic message or oracle mismatch description.
    pub message: String,
    /// The minimized reproducer.
    pub minimized: FuzzInput,
    /// Where the input came from (`replay:<file>` or `iter:<n>`).
    pub origin: String,
    /// Reproducer file written this session, if any.
    pub written: Option<PathBuf>,
}

/// The outcome of a fuzz session.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Inputs executed from the corpus.
    pub replayed: usize,
    /// Fresh inputs executed from the budget loop.
    pub executed: usize,
    /// Corpus files that failed to decode (`(file, error)`).
    pub decode_errors: Vec<(String, String)>,
    /// Deduplicated crashes, in discovery order.
    pub crashes: Vec<CrashReport>,
    /// The deterministic session log (no timing, byte-identical across
    /// runs with the same seed/budget/corpus).
    pub log: String,
}

impl FuzzReport {
    /// True when the session found no crashes and the corpus was clean.
    pub fn is_clean(&self) -> bool {
        self.crashes.is_empty() && self.decode_errors.is_empty()
    }
}

/// Executes one input against the oracles, capturing panics and oracle
/// violations as [`Crash`]es.
///
/// # Errors
///
/// Returns the crash (panic or violated oracle) the input triggers.
pub fn execute_input(env: &FuzzEnv, input: &FuzzInput) -> Result<(), Crash> {
    let outcome = run_guarded(|| match input {
        FuzzInput::Rule(src) => oracle::check_rule(src),
        FuzzInput::Template(spec) => oracle::check_template(env, spec),
        FuzzInput::Pack(bytes) => oracle::check_pack(bytes),
    })?;
    outcome.map_err(|f| Crash {
        fingerprint: format!("oracle:{}", f.oracle),
        message: f.detail,
    })
}

/// Derives the PRNG for budget iteration `i` of a session with `seed`.
pub fn iteration_rng(seed: u64, i: usize) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed.wrapping_add((i as u64 + 1).wrapping_mul(SEED_STRIDE)))
}

/// Generates the input for budget iteration `i`: 30% grammar-generated
/// valid rules, 30% mutated rule sources, 20% mutated template chains,
/// 20% mutated rule-pack images.
pub fn iteration_input(env: &FuzzEnv, seed: u64, i: usize) -> FuzzInput {
    let mut rng = iteration_rng(seed, i);
    let config = GrammarConfig::default();
    match rng.next_below(10) {
        0..=2 => FuzzInput::Rule(grammar::gen_rule_source(&mut rng, &config)),
        3..=5 => {
            // Mutate a shipped rule or a freshly generated one.
            let base = if rng.next_bool() {
                let sources = rules::RULE_SOURCES;
                sources[rng.next_below(sources.len() as u64) as usize]
                    .1
                    .to_owned()
            } else {
                grammar::gen_rule_source(&mut rng, &config)
            };
            FuzzInput::Rule(mutate::mutate_rule_source(&base, &mut rng))
        }
        6..=7 => {
            let pool: Vec<&str> = rules::RULE_SOURCES.iter().map(|(n, _)| *n).collect();
            FuzzInput::Template(mutate::mutate_template_spec(&env.cases, &pool, &mut rng))
        }
        _ => FuzzInput::Pack(mutate::mutate_pack_bytes(&env.pack_bytes, &mut rng)),
    }
}

/// Runs a full fuzz session: corpus replay, budget loop, dedup,
/// minimization, reproducer writing.
///
/// # Errors
///
/// Returns a message when the environment cannot be built or the corpus
/// directory cannot be read/written. Crashes found by fuzzing are *not*
/// errors — they are reported in the [`FuzzReport`].
pub fn run(config: &FuzzConfig) -> Result<FuzzReport, String> {
    let env = FuzzEnv::new()?;
    let mut report = FuzzReport::default();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();

    let _ = writeln!(
        report.log,
        "fuzz: seed={} budget={} corpus={}",
        config.seed,
        config.budget,
        config
            .corpus
            .as_ref()
            .map_or_else(|| "-".to_owned(), |p| p.display().to_string())
    );

    // Phase 1: replay the committed corpus, sorted by file name so the
    // order (and thus the log) is deterministic.
    if let Some(dir) = &config.corpus {
        for (name, text) in read_corpus(dir)? {
            match FuzzInput::decode(&text) {
                Ok(input) => {
                    report.replayed += 1;
                    if let Err(crash) = execute_input(&env, &input) {
                        record_crash(
                            &mut report,
                            &mut seen,
                            &env,
                            crash,
                            input,
                            format!("replay:{name}"),
                            None, // never rewrite replayed files
                        );
                    }
                }
                Err(e) => {
                    let _ = writeln!(report.log, "corpus: {name}: undecodable: {e}");
                    report.decode_errors.push((name, e));
                }
            }
        }
        let _ = writeln!(report.log, "replayed {} corpus inputs", report.replayed);
    }

    // Phase 2: the budget loop.
    for i in 0..config.budget {
        let input = iteration_input(&env, config.seed, i);
        report.executed += 1;
        if let Err(crash) = execute_input(&env, &input) {
            record_crash(
                &mut report,
                &mut seen,
                &env,
                crash,
                input,
                format!("iter:{i}"),
                config.corpus.as_deref(),
            );
        }
    }

    let _ = writeln!(
        report.log,
        "done: {} executed, {} replayed, {} crash classes, {} undecodable corpus files",
        report.executed,
        report.replayed,
        report.crashes.len(),
        report.decode_errors.len()
    );
    Ok(report)
}

fn record_crash(
    report: &mut FuzzReport,
    seen: &mut BTreeMap<String, usize>,
    env: &FuzzEnv,
    crash: Crash,
    input: FuzzInput,
    origin: String,
    corpus: Option<&std::path::Path>,
) {
    if let Some(&idx) = seen.get(&crash.fingerprint) {
        let _ = writeln!(
            report.log,
            "crash {} ({origin}): duplicate of #{idx}",
            crash.fingerprint
        );
        return;
    }
    let fingerprint = crash.fingerprint.clone();
    let minimized = minimize::minimize(
        &input,
        |cand| matches!(execute_input(env, cand), Err(c) if c.fingerprint == fingerprint),
    );
    let _ = writeln!(
        report.log,
        "crash {} ({origin}): {} [minimized {} -> {} bytes]",
        crash.fingerprint,
        crash.message,
        input.encode().len(),
        minimized.encode().len()
    );
    let written = corpus.and_then(|dir| {
        let path = dir.join(format!("crash-{}.txt", slug(&crash.fingerprint)));
        if path.exists() {
            None // an earlier session already committed this class
        } else {
            std::fs::write(&path, minimized.encode()).ok()?;
            let _ = writeln!(report.log, "  wrote {}", path.display());
            Some(path)
        }
    });
    seen.insert(crash.fingerprint.clone(), report.crashes.len());
    report.crashes.push(CrashReport {
        fingerprint: crash.fingerprint,
        message: crash.message,
        minimized,
        origin,
        written,
    });
}

fn read_corpus(dir: &std::path::Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("corpus dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("corpus dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "txt") {
            let name = entry.file_name().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("corpus file {}: {e}", path.display()))?;
            files.push((name, text));
        }
    }
    files.sort();
    Ok(files)
}

fn slug(fingerprint: &str) -> String {
    fingerprint
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_byte_deterministic() {
        let config = FuzzConfig {
            budget: 40,
            seed: 11,
            corpus: None,
        };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.crashes.len(), b.crashes.len());
        for (x, y) in a.crashes.iter().zip(&b.crashes) {
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.minimized, y.minimized);
        }
    }

    #[test]
    fn oracle_violations_are_fingerprinted_as_oracles() {
        let env = FuzzEnv::new().unwrap();
        // A rule that cannot round-trip would surface as oracle:roundtrip-*;
        // a clean rule passes.
        execute_input(
            &env,
            &FuzzInput::Rule("SPEC X\nEVENTS a: f();\nORDER a".to_owned()),
        )
        .unwrap();
    }

    #[test]
    fn zero_budget_without_corpus_is_a_clean_noop() {
        let report = run(&FuzzConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.executed, 0);
    }
}
