//! SHA-512 as specified in FIPS 180-4 (the 64-bit sibling of SHA-256).
//!
//! As with [`crate::sha256`], the round constants (first 64 bits of the
//! fractional parts of the cube roots of the first 80 primes) and the
//! initial state (square roots of the first 8 primes) are derived at
//! first use with integer arithmetic rather than hard-coded.

use std::sync::OnceLock;

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 64;
const BLOCK_LEN: usize = 128;

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

fn primes(count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut n = 2;
    while out.len() < count {
        if is_prime(n) {
            out.push(n);
        }
        n += 1;
    }
    out
}

/// First 64 bits of the fractional part of the k-th root of `p`: binary
/// search on the fraction f such that (root + f/2^64)^k ≈ p, done in
/// integer arithmetic. For k ∈ {2, 3} and p < 410 the intermediate
/// (root·2^64 + f)^k stays inside u256, which we emulate with u128 pairs
/// via a helper big-multiply on 64-bit limbs.
fn frac_root_bits64(p: u64, k: u32) -> u64 {
    let mut int_root = 1u64;
    while (int_root + 1).pow(k) <= p {
        int_root += 1;
    }
    // Compare (int_root*2^64 + f)^k against p * 2^(64k) using 512-bit
    // arithmetic on 64-bit limbs (little-endian limb order).
    let target = {
        // p << 64k as limbs
        let mut t = vec![0u64; 8];
        let shift_limbs = k as usize; // 64k bits = k limbs
        t[shift_limbs] = p;
        t
    };
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 64;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let x = [mid as u64, int_root + ((mid >> 64) as u64)]; // x = int_root·2^64 + mid
        let mut acc = vec![1u64, 0, 0, 0, 0, 0, 0, 0];
        for _ in 0..k {
            acc = limb_mul(&acc, &x);
        }
        if limb_le(&acc, &target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u64
}

/// Multiplies an 8-limb number by a 2-limb number, truncating to 8 limbs
/// (overflow cannot occur for the magnitudes used here).
fn limb_mul(a: &[u64], b: &[u64; 2]) -> Vec<u64> {
    let mut out = vec![0u64; 8];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if bj == 0 || i + j >= 8 {
                continue;
            }
            let prod = u128::from(ai) * u128::from(bj);
            let mut carry = prod as u64;
            let mut k = i + j;
            let mut high = (prod >> 64) as u64;
            while (carry != 0 || high != 0) && k < 8 {
                let (sum, c1) = out[k].overflowing_add(carry);
                out[k] = sum;
                carry = high + u64::from(c1);
                high = 0;
                k += 1;
            }
        }
    }
    out
}

fn limb_le(a: &[u64], b: &[u64]) -> bool {
    for i in (0..8).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    true
}

fn k_constants() -> &'static [u64; 80] {
    static K: OnceLock<[u64; 80]> = OnceLock::new();
    K.get_or_init(|| {
        let ps = primes(80);
        let mut k = [0u64; 80];
        for (i, p) in ps.iter().enumerate() {
            k[i] = frac_root_bits64(*p, 3);
        }
        k
    })
}

fn h_init() -> [u64; 8] {
    static H: OnceLock<[u64; 8]> = OnceLock::new();
    *H.get_or_init(|| {
        let ps = primes(8);
        let mut h = [0u64; 8];
        for (i, p) in ps.iter().enumerate() {
            h[i] = frac_root_bits64(*p, 2);
        }
        h
    })
}

/// An incremental SHA-512 hasher.
#[derive(Debug, Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: Vec<u8>,
    length_bits: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha512 {
            state: h_init(),
            buffer: Vec::with_capacity(BLOCK_LEN),
            length_bits: 0,
        }
    }

    /// Feeds more input.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u128) * 8);
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = self.buffer[..BLOCK_LEN].try_into().expect("block size");
            self.compress(&block);
            self.buffer.drain(..BLOCK_LEN);
        }
    }

    /// Finalizes and returns the 64-byte digest.
    pub fn finish(mut self) -> [u8; DIGEST_LEN] {
        let len_bits = self.length_bits;
        self.buffer.push(0x80);
        while self.buffer.len() % BLOCK_LEN != 112 {
            self.buffer.push(0);
        }
        let mut tail = std::mem::take(&mut self.buffer);
        tail.extend_from_slice(&len_bits.to_be_bytes());
        for chunk in tail.chunks_exact(BLOCK_LEN) {
            let block: [u8; BLOCK_LEN] = chunk.try_into().expect("block size");
            self.compress(&block);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let k = k_constants();
        let mut w = [0u64; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u64::from_be_bytes(block[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let big_s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-512.
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha512::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA512 (RFC 2104 over the 128-byte block size).
pub fn hmac_sha512(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let kd = digest(key);
        key_block[..DIGEST_LEN].copy_from_slice(&kd);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finish();
    let mut outer = Sha512::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// PBKDF2 with HMAC-SHA512 (RFC 8018).
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn pbkdf2_hmac_sha512(password: &[u8], salt: &[u8], iterations: u32, dk_len: usize) -> Vec<u8> {
    assert!(iterations > 0, "iteration count must be positive");
    let mut out = Vec::with_capacity(dk_len);
    let mut block_index: u32 = 1;
    while out.len() < dk_len {
        let mut block_input = salt.to_vec();
        block_input.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha512(password, &block_input);
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha512(password, &u);
            for (ti, ui) in t.iter_mut().zip(&u) {
                *ti ^= ui;
            }
        }
        let take = (dk_len - out.len()).min(t.len());
        out.extend_from_slice(&t[..take]);
        block_index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn derived_constants_match_fips() {
        assert_eq!(k_constants()[0], 0x428a2f98d728ae22);
        assert_eq!(k_constants()[79], 0x6c44198c4a475817);
        assert_eq!(h_init()[0], 0x6a09e667f3bcc908);
        assert_eq!(h_init()[7], 0x5be0cd19137e2179);
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
    }

    #[test]
    fn rfc4231_hmac_case_2() {
        assert_eq!(
            hex(&hmac_sha512(b"Jefe", b"what do ya want for nothing?")),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        let mut h = Sha512::new();
        for chunk in data.chunks(111) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), digest(&data));
    }

    #[test]
    fn pbkdf2_sha512_lengths_and_determinism() {
        let a = pbkdf2_hmac_sha512(b"password", b"salt", 10, 16);
        let b = pbkdf2_hmac_sha512(b"password", b"salt", 10, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_ne!(a, pbkdf2_hmac_sha512(b"password", b"pepper", 10, 16));
        assert_eq!(pbkdf2_hmac_sha512(b"p", b"s", 2, 100).len(), 100);
    }
}
