//! ChaCha20 stream cipher and Poly1305 one-time authenticator, composed
//! into the ChaCha20-Poly1305 AEAD (RFC 8439).
//!
//! Unlike the reduced-size RSA, this is the real construction: the block
//! function, the Poly1305 field arithmetic, and the AEAD framing all
//! follow RFC 8439 and are checked against its test vectors below.

use crate::error::CryptoError;

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20-Poly1305 nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha20 block function: 20 rounds over the "expand 32-byte k"
/// initial state, producing 64 bytes of keystream.
fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for (i, word) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes(word.try_into().expect("4-byte word"));
    }
    state[12] = counter;
    for (i, word) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes(word.try_into().expect("4-byte word"));
    }
    let initial = state;
    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for (i, (s, init)) in state.iter().zip(&initial).enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.wrapping_add(*init).to_le_bytes());
    }
    out
}

/// XORs `data` with the ChaCha20 keystream starting at `counter`
/// (encryption and decryption are the same operation).
pub fn chacha20_xor(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(64).enumerate() {
        let block = chacha20_block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter().zip(&block) {
            out.push(b ^ k);
        }
    }
    out
}

/// Poly1305 over 2^130 - 5, with 26-bit limbs so every partial product
/// fits in a `u64` (the "donna" layout).
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; TAG_LEN] {
    // r is clamped per RFC 8439 §2.5.
    let t0 = u32::from_le_bytes(key[0..4].try_into().expect("4 bytes"));
    let t1 = u32::from_le_bytes(key[4..8].try_into().expect("4 bytes"));
    let t2 = u32::from_le_bytes(key[8..12].try_into().expect("4 bytes"));
    let t3 = u32::from_le_bytes(key[12..16].try_into().expect("4 bytes"));
    let r0 = u64::from(t0) & 0x03ff_ffff;
    let r1 = u64::from((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03;
    let r2 = u64::from((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff;
    let r3 = u64::from((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff;
    let r4 = u64::from(t3 >> 8) & 0x000f_ffff;
    let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

    let (mut h0, mut h1, mut h2, mut h3, mut h4) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for chunk in msg.chunks(16) {
        // Append the 0x01 byte, then split into 26-bit limbs.
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1;
        let b0 = u64::from(u32::from_le_bytes(block[0..4].try_into().expect("4")));
        let b1 = u64::from(u32::from_le_bytes(block[4..8].try_into().expect("4")));
        let b2 = u64::from(u32::from_le_bytes(block[8..12].try_into().expect("4")));
        let b3 = u64::from(u32::from_le_bytes(block[12..16].try_into().expect("4")));
        let b4 = u64::from(block[16]);
        h0 += b0 & 0x03ff_ffff;
        h1 += ((b0 >> 26) | (b1 << 6)) & 0x03ff_ffff;
        h2 += ((b1 >> 20) | (b2 << 12)) & 0x03ff_ffff;
        h3 += ((b2 >> 14) | (b3 << 18)) & 0x03ff_ffff;
        h4 += (b3 >> 8) | (b4 << 24);

        // h *= r, with the 2^130 ≡ 5 reduction folded into the products.
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry propagation back to 26-bit limbs.
        let mut c = d0 >> 26;
        h0 = d0 & 0x03ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        h1 = d1 & 0x03ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        h2 = d2 & 0x03ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        h3 = d3 & 0x03ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        h4 = d4 & 0x03ff_ffff;
        h0 += c * 5;
        h1 += h0 >> 26;
        h0 &= 0x03ff_ffff;
    }

    // Full carry, then compute h + -p and select the reduced value.
    let mut c = h1 >> 26;
    h1 &= 0x03ff_ffff;
    h2 += c;
    c = h2 >> 26;
    h2 &= 0x03ff_ffff;
    h3 += c;
    c = h3 >> 26;
    h3 &= 0x03ff_ffff;
    h4 += c;
    c = h4 >> 26;
    h4 &= 0x03ff_ffff;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= 0x03ff_ffff;
    h1 += c;

    let mut g0 = h0 + 5;
    c = g0 >> 26;
    g0 &= 0x03ff_ffff;
    let mut g1 = h1 + c;
    c = g1 >> 26;
    g1 &= 0x03ff_ffff;
    let mut g2 = h2 + c;
    c = g2 >> 26;
    g2 &= 0x03ff_ffff;
    let mut g3 = h3 + c;
    c = g3 >> 26;
    g3 &= 0x03ff_ffff;
    let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

    let mask = (g4 >> 63).wrapping_sub(1); // all-ones when h >= p
    h0 = (h0 & !mask) | (g0 & mask);
    h1 = (h1 & !mask) | (g1 & mask);
    h2 = (h2 & !mask) | (g2 & mask);
    h3 = (h3 & !mask) | (g3 & mask);
    h4 = (h4 & !mask) | (g4 & 0x03ff_ffff & mask);

    // Serialize h and add s (the second key half) mod 2^128.
    let f0 = (h0 | (h1 << 26)) as u32 as u64
        + u64::from(u32::from_le_bytes(key[16..20].try_into().expect("4")));
    let f1 = ((h1 >> 6) | (h2 << 20)) as u32 as u64
        + u64::from(u32::from_le_bytes(key[20..24].try_into().expect("4")))
        + (f0 >> 32);
    let f2 = ((h2 >> 12) | (h3 << 14)) as u32 as u64
        + u64::from(u32::from_le_bytes(key[24..28].try_into().expect("4")))
        + (f1 >> 32);
    let f3 = ((h3 >> 18) | (h4 << 8)) as u32 as u64
        + u64::from(u32::from_le_bytes(key[28..32].try_into().expect("4")))
        + (f2 >> 32);

    let mut tag = [0u8; TAG_LEN];
    tag[0..4].copy_from_slice(&(f0 as u32).to_le_bytes());
    tag[4..8].copy_from_slice(&(f1 as u32).to_le_bytes());
    tag[8..12].copy_from_slice(&(f2 as u32).to_le_bytes());
    tag[12..16].copy_from_slice(&(f3 as u32).to_le_bytes());
    tag
}

fn check_key_nonce(
    key: &[u8],
    nonce: &[u8],
) -> Result<([u8; KEY_LEN], [u8; NONCE_LEN]), CryptoError> {
    let key: [u8; KEY_LEN] = key.try_into().map_err(|_| {
        CryptoError::InvalidKey(format!("ChaCha20 needs a 32-byte key, got {}", key.len()))
    })?;
    let nonce: [u8; NONCE_LEN] = nonce.try_into().map_err(|_| {
        CryptoError::InvalidParameter(format!(
            "ChaCha20-Poly1305 nonce must be 12 bytes, got {}",
            nonce.len()
        ))
    })?;
    Ok((key, nonce))
}

/// The Poly1305 input framing of RFC 8439 §2.8: aad and ciphertext each
/// zero-padded to 16 bytes, then their little-endian 64-bit lengths.
fn aead_mac(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut m = Vec::with_capacity(aad.len() + ciphertext.len() + 48);
    m.extend_from_slice(aad);
    m.resize(m.len().next_multiple_of(16), 0);
    m.extend_from_slice(ciphertext);
    m.resize(m.len().next_multiple_of(16), 0);
    m.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    m.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    poly1305(otk, &m)
}

/// ChaCha20-Poly1305 AEAD sealing. Returns `ciphertext || tag`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidKey`] / [`CryptoError::InvalidParameter`]
/// for a key that is not 32 bytes or a nonce that is not 12.
pub fn seal(
    key: &[u8],
    nonce: &[u8],
    aad: &[u8],
    plaintext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let (key, nonce) = check_key_nonce(key, nonce)?;
    let otk: [u8; 32] = chacha20_block(&key, 0, &nonce)[..32]
        .try_into()
        .expect("32 of 64 bytes");
    let mut out = chacha20_xor(&key, 1, &nonce, plaintext);
    let tag = aead_mac(&otk, aad, &out);
    out.extend_from_slice(&tag);
    Ok(out)
}

/// ChaCha20-Poly1305 AEAD opening of `ciphertext || tag`.
///
/// # Errors
///
/// As for [`seal`], plus [`CryptoError::BadCiphertext`] on a truncated
/// input or tag mismatch (checked in constant time before decrypting).
pub fn open(key: &[u8], nonce: &[u8], aad: &[u8], data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let (key, nonce) = check_key_nonce(key, nonce)?;
    if data.len() < TAG_LEN {
        return Err(CryptoError::BadCiphertext("missing Poly1305 tag".into()));
    }
    let (ciphertext, tag) = data.split_at(data.len() - TAG_LEN);
    let otk: [u8; 32] = chacha20_block(&key, 0, &nonce)[..32]
        .try_into()
        .expect("32 of 64 bytes");
    let expected = aead_mac(&otk, aad, ciphertext);
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(CryptoError::BadCiphertext("Poly1305 tag mismatch".into()));
    }
    Ok(chacha20_xor(&key, 1, &nonce, ciphertext))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn chacha20_block_matches_rfc8439_2_3_2() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            hex(&block[..16]),
            "10f1e7e4d13b5915500fdd1fa32071c4",
            "first 16 keystream bytes"
        );
    }

    #[test]
    fn poly1305_matches_rfc8439_2_5_2() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn aead_matches_rfc8439_2_8_2() {
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let out = seal(&key, &nonce, &aad, pt).unwrap();
        let (ct, tag) = out.split_at(out.len() - TAG_LEN);
        assert_eq!(hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(open(&key, &nonce, &aad, &out).unwrap(), pt);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 200] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = seal(&key, &nonce, b"aad", &pt).unwrap();
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(open(&key, &nonce, b"aad", &sealed).unwrap(), pt);
        }
    }

    #[test]
    fn tampering_and_wrong_aad_rejected() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let mut sealed = seal(&key, &nonce, b"aad", b"payload").unwrap();
        sealed[0] ^= 1;
        assert!(matches!(
            open(&key, &nonce, b"aad", &sealed),
            Err(CryptoError::BadCiphertext(_))
        ));
        let sealed = seal(&key, &nonce, b"aad", b"payload").unwrap();
        assert!(open(&key, &nonce, b"wrong", &sealed).is_err());
        assert!(open(&key, &nonce, b"aad", &[1, 2, 3]).is_err());
    }

    #[test]
    fn bad_key_and_nonce_sizes_rejected() {
        assert!(seal(&[0u8; 16], &[0u8; 12], &[], b"x").is_err());
        assert!(seal(&[0u8; 32], &[0u8; 16], &[], b"x").is_err());
    }
}
