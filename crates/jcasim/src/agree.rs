//! Key agreement primitives: finite-field Diffie-Hellman and elliptic-
//! curve Diffie-Hellman over deliberately small groups.
//!
//! Like the reduced-size RSA, these exist to exercise the same JCA code
//! paths (`KeyPairGenerator("DH"/"EC")` → `KeyAgreement` → shared
//! secret) with fast, dependency-free arithmetic — `u128` products over
//! 64-bit moduli — not to protect data. DESIGN.md records the
//! substitution.

use crate::error::CryptoError;
use crate::rng::SecureRandom;

/// The DH group modulus: the largest 64-bit prime, 2^64 - 59.
pub const DH_PRIME: u64 = 0xffff_ffff_ffff_ffc5;
/// The DH group generator.
pub const DH_GENERATOR: u64 = 5;

/// The EC field modulus: the Mersenne prime 2^61 - 1 (≡ 3 mod 4, so
/// square roots are a single exponentiation).
pub const EC_PRIME: u64 = (1 << 61) - 1;
/// Curve coefficient `a` in `y² = x³ + ax + b` (−3 mod p, NIST-style).
pub const EC_A: u64 = EC_PRIME - 3;
/// Curve coefficient `b`.
pub const EC_B: u64 = 7;

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) + u128::from(b)) % u128::from(m)) as u64
}

fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    add_mod(a, m - (b % m), m)
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Modular inverse via Fermat (the moduli are prime).
fn inv_mod(a: u64, m: u64) -> u64 {
    pow_mod(a, m - 2, m)
}

/// A point on the simulation curve; `None` is the point at infinity.
pub type EcPoint = Option<(u64, u64)>;

fn ec_add(p: EcPoint, q: EcPoint) -> EcPoint {
    let m = EC_PRIME;
    match (p, q) {
        (None, q) => q,
        (p, None) => p,
        (Some((x1, y1)), Some((x2, y2))) => {
            if x1 == x2 && add_mod(y1, y2, m) == 0 {
                return None;
            }
            let lambda = if x1 == x2 && y1 == y2 {
                // Tangent slope: (3x² + a) / 2y.
                let num = add_mod(mul_mod(3, mul_mod(x1, x1, m), m), EC_A, m);
                mul_mod(num, inv_mod(mul_mod(2, y1, m), m), m)
            } else {
                mul_mod(sub_mod(y2, y1, m), inv_mod(sub_mod(x2, x1, m), m), m)
            };
            let x3 = sub_mod(mul_mod(lambda, lambda, m), add_mod(x1, x2, m), m);
            let y3 = sub_mod(mul_mod(lambda, sub_mod(x1, x3, m), m), y1, m);
            Some((x3, y3))
        }
    }
}

fn ec_scalar_mul(scalar: u64, point: EcPoint) -> EcPoint {
    let mut acc = None;
    let mut addend = point;
    let mut k = scalar;
    while k > 0 {
        if k & 1 == 1 {
            acc = ec_add(acc, addend);
        }
        addend = ec_add(addend, addend);
        k >>= 1;
    }
    acc
}

/// The curve generator: the first `x` whose right-hand side is a square
/// (p ≡ 3 mod 4, so `rhs^((p+1)/4)` is the root when one exists).
pub fn ec_generator() -> (u64, u64) {
    let m = EC_PRIME;
    for x in 2u64.. {
        let rhs = add_mod(add_mod(pow_mod(x, 3, m), mul_mod(EC_A, x, m), m), EC_B, m);
        let y = pow_mod(rhs, (m + 1) / 4, m);
        if mul_mod(y, y, m) == rhs {
            return (x, y);
        }
    }
    unreachable!("roughly half of all x values yield a curve point")
}

/// A generated agreement key pair: the private scalar and the public
/// element (a group element for DH, a curve point for EC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementKeyPair {
    /// The private scalar.
    pub scalar: u64,
    /// The public value: `g^scalar mod p` for DH, the affine coordinates
    /// of `scalar·G` for EC.
    pub public: (u64, u64),
}

/// Generates a DH key pair in the 2^64 - 59 group.
pub fn dh_generate(rng: &mut SecureRandom) -> AgreementKeyPair {
    let scalar = 2 + rng.next_u64() % (DH_PRIME - 4);
    AgreementKeyPair {
        scalar,
        public: (pow_mod(DH_GENERATOR, scalar, DH_PRIME), 0),
    }
}

/// Generates an EC key pair on the simulation curve.
pub fn ec_generate(rng: &mut SecureRandom) -> AgreementKeyPair {
    let scalar = 2 + rng.next_u64() % (EC_PRIME - 4);
    let point = ec_scalar_mul(scalar, Some(ec_generator()))
        .expect("small scalars of a non-torsion generator never hit infinity here");
    AgreementKeyPair {
        scalar,
        public: point,
    }
}

/// Computes the DH shared secret `peer^scalar mod p`, big-endian.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidKey`] for a degenerate peer value
/// (0, 1, or p-1 — the classic small-subgroup confinement checks).
pub fn dh_shared_secret(scalar: u64, peer: u64) -> Result<Vec<u8>, CryptoError> {
    if peer <= 1 || peer >= DH_PRIME - 1 {
        return Err(CryptoError::InvalidKey(
            "degenerate DH peer public value".into(),
        ));
    }
    Ok(pow_mod(peer, scalar, DH_PRIME).to_be_bytes().to_vec())
}

/// Computes the ECDH shared secret: the x-coordinate of `scalar·peer`,
/// big-endian.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidKey`] when the peer point is not on the
/// curve or the product lands at infinity.
pub fn ec_shared_secret(scalar: u64, peer: (u64, u64)) -> Result<Vec<u8>, CryptoError> {
    let m = EC_PRIME;
    let (x, y) = (peer.0 % m, peer.1 % m);
    let rhs = add_mod(add_mod(pow_mod(x, 3, m), mul_mod(EC_A, x, m), m), EC_B, m);
    if mul_mod(y, y, m) != rhs {
        return Err(CryptoError::InvalidKey(
            "peer point not on the curve".into(),
        ));
    }
    match ec_scalar_mul(scalar, Some((x, y))) {
        Some((sx, _)) => Ok(sx.to_be_bytes().to_vec()),
        None => Err(CryptoError::InvalidKey(
            "ECDH product is the point at infinity".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement_commutes() {
        let mut rng = SecureRandom::from_seed(11);
        let alice = dh_generate(&mut rng);
        let bob = dh_generate(&mut rng);
        let s1 = dh_shared_secret(alice.scalar, bob.public.0).unwrap();
        let s2 = dh_shared_secret(bob.scalar, alice.public.0).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 8);
    }

    #[test]
    fn dh_rejects_degenerate_peers() {
        assert!(dh_shared_secret(42, 0).is_err());
        assert!(dh_shared_secret(42, 1).is_err());
        assert!(dh_shared_secret(42, DH_PRIME - 1).is_err());
    }

    #[test]
    fn generator_is_on_the_curve() {
        let (x, y) = ec_generator();
        let m = EC_PRIME;
        let rhs = add_mod(add_mod(pow_mod(x, 3, m), mul_mod(EC_A, x, m), m), EC_B, m);
        assert_eq!(mul_mod(y, y, m), rhs);
    }

    #[test]
    fn ec_agreement_commutes() {
        let mut rng = SecureRandom::from_seed(12);
        let alice = ec_generate(&mut rng);
        let bob = ec_generate(&mut rng);
        let s1 = ec_shared_secret(alice.scalar, bob.public).unwrap();
        let s2 = ec_shared_secret(bob.scalar, alice.public).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 8);
    }

    #[test]
    fn ec_rejects_off_curve_peer() {
        let (x, y) = ec_generator();
        assert!(ec_shared_secret(7, (x, y ^ 1)).is_err());
    }

    #[test]
    fn ec_point_arithmetic_is_a_group() {
        let g = Some(ec_generator());
        // 2G + 3G == 5G, and G + (-G) == infinity.
        let five = ec_add(ec_scalar_mul(2, g), ec_scalar_mul(3, g));
        assert_eq!(five, ec_scalar_mul(5, g));
        let (x, y) = ec_generator();
        assert_eq!(ec_add(g, Some((x, EC_PRIME - y))), None);
    }

    #[test]
    fn different_seeds_give_different_pairs() {
        let mut a = SecureRandom::from_seed(1);
        let mut b = SecureRandom::from_seed(2);
        assert_ne!(dh_generate(&mut a).scalar, dh_generate(&mut b).scalar);
    }
}
