//! HKDF (RFC 5869) over the crate's HMAC-SHA256 — the extract-then-
//! expand KDF the token and key-agreement use cases derive subkeys with.

use crate::error::CryptoError;
use crate::hmac::hmac_sha256;

/// HKDF-Extract: `PRK = HMAC-Hash(salt, IKM)`. An empty salt means the
/// RFC's "not provided" case (a hash-length block of zeros).
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    if salt.is_empty() {
        hmac_sha256(&[0u8; 32], ikm)
    } else {
        hmac_sha256(salt, ikm)
    }
}

/// HKDF-Expand: grows `prk` into `len` output bytes bound to `info`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] when `len` is zero or
/// exceeds the RFC's 255 × HashLen ceiling.
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
    if len == 0 || len > 255 * 32 {
        return Err(CryptoError::InvalidParameter(format!(
            "HKDF output length {len} outside 1..=8160"
        )));
    }
    let mut okm = Vec::with_capacity(len.next_multiple_of(32));
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut block = t.clone();
        block.extend_from_slice(info);
        block.push(counter);
        t = hmac_sha256(prk, &block).to_vec();
        okm.extend_from_slice(&t);
        counter = counter.wrapping_add(1);
    }
    okm.truncate(len);
    Ok(okm)
}

/// The full extract-then-expand pipeline.
///
/// # Errors
///
/// As for [`expand`].
pub fn derive(ikm: &[u8], salt: &[u8], info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn derive_is_extract_then_expand() {
        let okm = derive(b"input keying material", b"salt", b"ctx", 64).unwrap();
        assert_eq!(okm.len(), 64);
        assert_eq!(
            okm,
            expand(&extract(b"salt", b"input keying material"), b"ctx", 64).unwrap()
        );
    }

    #[test]
    fn empty_salt_matches_zero_block() {
        assert_eq!(extract(&[], b"ikm"), hmac_sha256(&[0u8; 32], b"ikm"));
    }

    #[test]
    fn output_length_bounds() {
        let prk = extract(b"s", b"ikm");
        assert!(expand(&prk, b"", 0).is_err());
        assert!(expand(&prk, b"", 255 * 32 + 1).is_err());
        assert_eq!(expand(&prk, b"", 255 * 32).unwrap().len(), 255 * 32);
    }

    #[test]
    fn distinct_info_separates_keys() {
        let prk = extract(b"salt", b"ikm");
        assert_ne!(
            expand(&prk, b"enc", 32).unwrap(),
            expand(&prk, b"mac", 32).unwrap()
        );
    }
}
