//! Block cipher modes of operation: CBC with PKCS#7 padding, CTR, and GCM
//! (CTR encryption with a GHASH authentication tag, NIST SP 800-38D).

use crate::aes::{Aes128, BLOCK_LEN};
use crate::error::CryptoError;

/// Applies PKCS#7 padding to a full-block multiple.
pub fn pkcs7_pad(data: &[u8], block_len: usize) -> Vec<u8> {
    let pad = block_len - (data.len() % block_len);
    let mut out = data.to_vec();
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Removes PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::BadCiphertext`] for empty input, impossible pad
/// lengths, or inconsistent padding bytes.
pub fn pkcs7_unpad(data: &[u8], block_len: usize) -> Result<Vec<u8>, CryptoError> {
    if data.is_empty() || !data.len().is_multiple_of(block_len) {
        return Err(CryptoError::BadCiphertext("bad padded length".into()));
    }
    let pad = *data.last().expect("non-empty") as usize;
    if pad == 0 || pad > block_len {
        return Err(CryptoError::BadCiphertext("bad padding value".into()));
    }
    let (body, padding) = data.split_at(data.len() - pad);
    if padding.iter().any(|&b| b as usize != pad) {
        return Err(CryptoError::BadCiphertext("inconsistent padding".into()));
    }
    Ok(body.to_vec())
}

/// AES-128-CBC encryption with PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if `iv` is not one block long.
pub fn cbc_encrypt(aes: &Aes128, iv: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let iv: [u8; BLOCK_LEN] = iv
        .try_into()
        .map_err(|_| CryptoError::InvalidParameter("IV must be 16 bytes".into()))?;
    let padded = pkcs7_pad(plaintext, BLOCK_LEN);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = iv;
    for chunk in padded.chunks_exact(BLOCK_LEN) {
        let mut block: [u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    Ok(out)
}

/// AES-128-CBC decryption with PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] for a bad IV and
/// [`CryptoError::BadCiphertext`] for bad lengths or padding.
pub fn cbc_decrypt(aes: &Aes128, iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let iv: [u8; BLOCK_LEN] = iv
        .try_into()
        .map_err(|_| CryptoError::InvalidParameter("IV must be 16 bytes".into()))?;
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::BadCiphertext(
            "ciphertext length not a block multiple".into(),
        ));
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = iv;
    for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
        let cblock: [u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
        let mut block = cblock;
        aes.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        out.extend_from_slice(&block);
        prev = cblock;
    }
    pkcs7_unpad(&out, BLOCK_LEN)
}

/// AES-128-CTR keystream transform (encryption and decryption are the same
/// operation). The 16-byte counter block is `nonce(12) || counter(4)`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if `nonce` is not 12 bytes.
pub fn ctr_transform(aes: &Aes128, nonce: &[u8], data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if nonce.len() != 12 {
        return Err(CryptoError::InvalidParameter(
            "CTR nonce must be 12 bytes".into(),
        ));
    }
    Ok(ctr_stream(aes, nonce, 1, data))
}

fn ctr_stream(aes: &Aes128, nonce: &[u8], initial_counter: u32, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter = initial_counter;
    for chunk in data.chunks(BLOCK_LEN) {
        let mut block = [0u8; BLOCK_LEN];
        block[..12].copy_from_slice(nonce);
        block[12..].copy_from_slice(&counter.to_be_bytes());
        aes.encrypt_block(&mut block);
        for (i, b) in chunk.iter().enumerate() {
            out.push(b ^ block[i]);
        }
        counter = counter.wrapping_add(1);
    }
    out
}

/// Multiplication in GF(2^128) with the GCM polynomial, per SP 800-38D.
fn ghash_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 != 0 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb != 0 {
            v ^= R;
        }
    }
    z
}

fn ghash(h: u128, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let mut y = 0u128;
    let mut absorb = |data: &[u8]| {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            y = ghash_mul(y ^ u128::from_be_bytes(block), h);
        }
    };
    absorb(aad);
    absorb(ciphertext);
    let lens = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    ghash_mul(y ^ lens, h)
}

/// Tag length for GCM (full 16 bytes).
pub const GCM_TAG_LEN: usize = 16;

/// AES-128-GCM encryption. Returns `ciphertext || tag`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if `nonce` is not 12 bytes
/// (the only length the JCA's default provider recommends).
pub fn gcm_encrypt(
    aes: &Aes128,
    nonce: &[u8],
    aad: &[u8],
    plaintext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if nonce.len() != 12 {
        return Err(CryptoError::InvalidParameter(
            "GCM nonce must be 12 bytes".into(),
        ));
    }
    let mut hblock = [0u8; 16];
    aes.encrypt_block(&mut hblock);
    let h = u128::from_be_bytes(hblock);

    let ciphertext = ctr_stream(aes, nonce, 2, plaintext);
    let s = ghash(h, aad, &ciphertext);

    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(nonce);
    j0[15] = 1;
    aes.encrypt_block(&mut j0);
    let tag = u128::from_be_bytes(j0) ^ s;

    let mut out = ciphertext;
    out.extend_from_slice(&tag.to_be_bytes());
    Ok(out)
}

/// AES-128-GCM decryption of `ciphertext || tag`.
///
/// # Errors
///
/// Returns [`CryptoError::BadCiphertext`] on tag mismatch or truncated
/// input, [`CryptoError::InvalidParameter`] for a bad nonce.
pub fn gcm_decrypt(
    aes: &Aes128,
    nonce: &[u8],
    aad: &[u8],
    data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if nonce.len() != 12 {
        return Err(CryptoError::InvalidParameter(
            "GCM nonce must be 12 bytes".into(),
        ));
    }
    if data.len() < GCM_TAG_LEN {
        return Err(CryptoError::BadCiphertext("missing GCM tag".into()));
    }
    let (ciphertext, tag) = data.split_at(data.len() - GCM_TAG_LEN);

    let mut hblock = [0u8; 16];
    aes.encrypt_block(&mut hblock);
    let h = u128::from_be_bytes(hblock);
    let s = ghash(h, aad, ciphertext);
    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(nonce);
    j0[15] = 1;
    aes.encrypt_block(&mut j0);
    let expected = (u128::from_be_bytes(j0) ^ s).to_be_bytes();

    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(CryptoError::BadCiphertext("GCM tag mismatch".into()));
    }
    Ok(ctr_stream(aes, nonce, 2, ciphertext))
}

/// AES-GCM-SIV-style misuse-resistant encryption. Returns
/// `ciphertext || tag`.
///
/// The synthetic IV follows the RFC 8452 *shape* — the tag is a PRF of
/// nonce, AAD and plaintext, and the CTR keystream is keyed off the tag
/// — but reuses this module's GHASH and AES-128-CTR instead of POLYVAL
/// and the per-nonce key derivation, keeping the simulation
/// dependency-free. Like the reduced RSA, DESIGN.md records the
/// substitution: deterministic under nonce reuse, authenticated, not
/// interoperable with real AES-GCM-SIV.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if `nonce` is not 12 bytes.
pub fn gcm_siv_encrypt(
    aes: &Aes128,
    nonce: &[u8],
    aad: &[u8],
    plaintext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let tag = gcm_siv_tag(aes, nonce, aad, plaintext)?;
    let mut out = siv_ctr(aes, &tag, plaintext);
    out.extend_from_slice(&tag);
    Ok(out)
}

/// AES-GCM-SIV-style decryption of `ciphertext || tag`: decrypt under
/// the tag-derived counter, then recompute and compare the tag in
/// constant time.
///
/// # Errors
///
/// Returns [`CryptoError::BadCiphertext`] on truncation or tag mismatch,
/// [`CryptoError::InvalidParameter`] for a bad nonce.
pub fn gcm_siv_decrypt(
    aes: &Aes128,
    nonce: &[u8],
    aad: &[u8],
    data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if data.len() < GCM_TAG_LEN {
        return Err(CryptoError::BadCiphertext("missing SIV tag".into()));
    }
    let (ciphertext, tag) = data.split_at(data.len() - GCM_TAG_LEN);
    let tag: [u8; GCM_TAG_LEN] = tag.try_into().expect("split_at leaves 16 bytes");
    let plaintext = siv_ctr(aes, &tag, ciphertext);
    let expected = gcm_siv_tag(aes, nonce, aad, &plaintext)?;
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(&tag) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(CryptoError::BadCiphertext("SIV tag mismatch".into()));
    }
    Ok(plaintext)
}

/// The synthetic IV: GHASH over AAD and *plaintext*, xored with the
/// nonce, top bit cleared, then encrypted.
fn gcm_siv_tag(
    aes: &Aes128,
    nonce: &[u8],
    aad: &[u8],
    plaintext: &[u8],
) -> Result<[u8; GCM_TAG_LEN], CryptoError> {
    if nonce.len() != 12 {
        return Err(CryptoError::InvalidParameter(
            "GCM-SIV nonce must be 12 bytes".into(),
        ));
    }
    let mut hblock = [0u8; 16];
    aes.encrypt_block(&mut hblock);
    let h = u128::from_be_bytes(hblock);
    let mut block = ghash(h, aad, plaintext).to_be_bytes();
    for (b, n) in block.iter_mut().zip(nonce) {
        *b ^= n;
    }
    block[0] &= 0x7f;
    aes.encrypt_block(&mut block);
    Ok(block)
}

/// CTR keystream keyed off the tag: the counter block is the tag with
/// its top bit forced, incrementing the low 32 bits per block.
fn siv_ctr(aes: &Aes128, tag: &[u8; GCM_TAG_LEN], data: &[u8]) -> Vec<u8> {
    let mut counter_block = *tag;
    counter_block[0] |= 0x80;
    let initial = u32::from_be_bytes(counter_block[12..].try_into().expect("4 bytes"));
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(BLOCK_LEN).enumerate() {
        let mut block = counter_block;
        block[12..].copy_from_slice(&initial.wrapping_add(i as u32).to_be_bytes());
        aes.encrypt_block(&mut block);
        for (b, k) in chunk.iter().zip(&block) {
            out.push(b ^ k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes128 {
        Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
    }

    #[test]
    fn pkcs7_roundtrip_all_lengths() {
        for len in 0..48 {
            let data: Vec<u8> = (0..len as u8).collect();
            let padded = pkcs7_pad(&data, BLOCK_LEN);
            assert_eq!(padded.len() % BLOCK_LEN, 0);
            assert!(padded.len() > data.len());
            assert_eq!(pkcs7_unpad(&padded, BLOCK_LEN).unwrap(), data);
        }
    }

    #[test]
    fn pkcs7_rejects_garbage() {
        assert!(pkcs7_unpad(&[], BLOCK_LEN).is_err());
        assert!(pkcs7_unpad(&[0u8; 16], BLOCK_LEN).is_err()); // pad byte 0
        let mut bad = pkcs7_pad(b"hello", BLOCK_LEN);
        bad[10] ^= 0xff; // corrupt a padding byte
        assert!(pkcs7_unpad(&bad, BLOCK_LEN).is_err());
        assert!(pkcs7_unpad(&[17u8; 16], BLOCK_LEN).is_err()); // pad > block
    }

    #[test]
    fn cbc_roundtrip() {
        let iv = [9u8; 16];
        for len in [0, 1, 15, 16, 17, 100] {
            let pt: Vec<u8> = (0..len as u8).collect();
            let ct = cbc_encrypt(&aes(), &iv, &pt).unwrap();
            assert_eq!(cbc_decrypt(&aes(), &iv, &ct).unwrap(), pt);
        }
    }

    #[test]
    fn cbc_wrong_iv_garbles() {
        let ct = cbc_encrypt(&aes(), &[1u8; 16], b"attack at dawn!!").unwrap();
        let wrong = cbc_decrypt(&aes(), &[2u8; 16], &ct);
        if let Ok(pt) = wrong {
            assert_ne!(pt, b"attack at dawn!!"); // padding failure is also acceptable
        }
    }

    #[test]
    fn cbc_rejects_bad_iv_and_length() {
        assert!(cbc_encrypt(&aes(), &[0u8; 8], b"x").is_err());
        assert!(cbc_decrypt(&aes(), &[0u8; 16], &[0u8; 15]).is_err());
    }

    #[test]
    fn ctr_roundtrip_and_symmetry() {
        let nonce = [3u8; 12];
        let pt = b"counter mode streams any length";
        let ct = ctr_transform(&aes(), &nonce, pt).unwrap();
        assert_eq!(ct.len(), pt.len());
        assert_eq!(ctr_transform(&aes(), &nonce, &ct).unwrap(), pt);
    }

    #[test]
    fn gcm_empty_vector() {
        // SP 800-38D test case 1: zero key, zero nonce, empty everything.
        let aes = Aes128::new(&[0u8; 16]);
        let out = gcm_encrypt(&aes, &[0u8; 12], &[], &[]).unwrap();
        let hex: String = out.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn gcm_roundtrip_with_aad() {
        let nonce = [5u8; 12];
        let ct = gcm_encrypt(&aes(), &nonce, b"header", b"secret payload").unwrap();
        assert_eq!(
            gcm_decrypt(&aes(), &nonce, b"header", &ct).unwrap(),
            b"secret payload"
        );
    }

    #[test]
    fn gcm_detects_tampering() {
        let nonce = [5u8; 12];
        let mut ct = gcm_encrypt(&aes(), &nonce, &[], b"payload").unwrap();
        ct[0] ^= 1;
        assert!(matches!(
            gcm_decrypt(&aes(), &nonce, &[], &ct),
            Err(CryptoError::BadCiphertext(_))
        ));
        // Wrong AAD also fails.
        let ct2 = gcm_encrypt(&aes(), &nonce, b"a", b"payload").unwrap();
        assert!(gcm_decrypt(&aes(), &nonce, b"b", &ct2).is_err());
    }

    #[test]
    fn gcm_rejects_short_input_and_bad_nonce() {
        assert!(gcm_decrypt(&aes(), &[0u8; 12], &[], &[1, 2, 3]).is_err());
        assert!(gcm_encrypt(&aes(), &[0u8; 11], &[], b"x").is_err());
    }

    #[test]
    fn gcm_siv_roundtrip_all_lengths() {
        let nonce = [6u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = gcm_siv_encrypt(&aes(), &nonce, b"hdr", &pt).unwrap();
            assert_eq!(ct.len(), pt.len() + GCM_TAG_LEN);
            assert_eq!(gcm_siv_decrypt(&aes(), &nonce, b"hdr", &ct).unwrap(), pt);
        }
    }

    #[test]
    fn gcm_siv_is_deterministic_and_message_bound() {
        // Nonce reuse leaks only message equality — the misuse-resistance
        // property the construction exists for.
        let nonce = [6u8; 12];
        let a = gcm_siv_encrypt(&aes(), &nonce, &[], b"same message").unwrap();
        let b = gcm_siv_encrypt(&aes(), &nonce, &[], b"same message").unwrap();
        assert_eq!(a, b);
        let c = gcm_siv_encrypt(&aes(), &nonce, &[], b"diff message").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gcm_siv_detects_tampering() {
        let nonce = [6u8; 12];
        let mut ct = gcm_siv_encrypt(&aes(), &nonce, b"aad", b"payload").unwrap();
        ct[0] ^= 1;
        assert!(matches!(
            gcm_siv_decrypt(&aes(), &nonce, b"aad", &ct),
            Err(CryptoError::BadCiphertext(_))
        ));
        let ct = gcm_siv_encrypt(&aes(), &nonce, b"aad", b"payload").unwrap();
        assert!(gcm_siv_decrypt(&aes(), &nonce, b"other", &ct).is_err());
        assert!(gcm_siv_decrypt(&aes(), &nonce, b"aad", &[1, 2]).is_err());
        assert!(gcm_siv_encrypt(&aes(), &[0u8; 4], &[], b"x").is_err());
    }
}
