//! The algorithm registry: maps JCA algorithm / transformation strings to
//! the primitive implementations, mirroring `getInstance` dispatch.

use crate::aes::Aes128;
use crate::agree;
use crate::chacha;
use crate::error::CryptoError;
use crate::hkdf;
use crate::hmac;
use crate::modes;
use crate::pbkdf2;
use crate::rng::SecureRandom;
use crate::rsa;
use crate::sha256;
use crate::sha512;

/// Key material held by runtime key objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyMaterial {
    /// A symmetric key (raw bytes) with its algorithm name.
    Secret {
        /// Raw key bytes.
        bytes: Vec<u8>,
        /// Algorithm name, e.g. `"AES"`.
        algorithm: String,
    },
    /// An RSA private key.
    Private(rsa::PrivateKey),
    /// An RSA public key.
    Public(rsa::PublicKey),
    /// A DH/EC key-agreement private scalar.
    AgreementPrivate {
        /// `"DH"` or `"EC"`.
        algorithm: String,
        /// The private scalar.
        scalar: u64,
    },
    /// A DH/EC key-agreement public value — a group element for DH
    /// (second coordinate 0), an affine curve point for EC.
    AgreementPublic {
        /// `"DH"` or `"EC"`.
        algorithm: String,
        /// The public value.
        point: (u64, u64),
    },
}

impl KeyMaterial {
    /// The encoded form (`Key.getEncoded()`); RSA keys encode their
    /// parameters big-endian.
    pub fn encoded(&self) -> Vec<u8> {
        match self {
            KeyMaterial::Secret { bytes, .. } => bytes.clone(),
            KeyMaterial::Private(k) => {
                let mut v = k.n.to_be_bytes().to_vec();
                v.extend_from_slice(&k.d.to_be_bytes());
                v
            }
            KeyMaterial::Public(k) => {
                let mut v = k.n.to_be_bytes().to_vec();
                v.extend_from_slice(&k.e.to_be_bytes());
                v
            }
            KeyMaterial::AgreementPrivate { scalar, .. } => scalar.to_be_bytes().to_vec(),
            KeyMaterial::AgreementPublic { point, .. } => {
                let mut v = point.0.to_be_bytes().to_vec();
                v.extend_from_slice(&point.1.to_be_bytes());
                v
            }
        }
    }

    /// The algorithm name (`Key.getAlgorithm()`).
    pub fn algorithm(&self) -> &str {
        match self {
            KeyMaterial::Secret { algorithm, .. } => algorithm,
            KeyMaterial::Private(_) | KeyMaterial::Public(_) => "RSA",
            KeyMaterial::AgreementPrivate { algorithm, .. }
            | KeyMaterial::AgreementPublic { algorithm, .. } => algorithm,
        }
    }
}

/// A generated key pair of any family — RSA for encrypt/sign chains,
/// DH/EC for agreement chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPairMaterial {
    /// The public half.
    pub public: KeyMaterial,
    /// The private half.
    pub private: KeyMaterial,
}

/// A parsed cipher transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transformation {
    /// `AES/CBC/PKCS5Padding`
    AesCbcPkcs5,
    /// `AES/CTR/NoPadding`
    AesCtr,
    /// `AES/GCM/NoPadding`
    AesGcm,
    /// `AES/GCM-SIV/NoPadding` (misuse-resistant AEAD, SIV-shaped
    /// simulation — see [`modes::gcm_siv_encrypt`])
    AesGcmSiv,
    /// `ChaCha20-Poly1305` (RFC 8439)
    ChaCha20Poly1305,
    /// `RSA/ECB/PKCS1Padding` (chunked textbook RSA in this simulation)
    RsaEcb,
}

impl Transformation {
    /// Parses a JCA transformation string.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown strings —
    /// including insecure ones like `AES/ECB/PKCS5Padding`, which this
    /// provider deliberately refuses to implement.
    pub fn parse(s: &str) -> Result<Transformation, CryptoError> {
        match s {
            "AES/CBC/PKCS5Padding" => Ok(Transformation::AesCbcPkcs5),
            "AES/CTR/NoPadding" => Ok(Transformation::AesCtr),
            "AES/GCM/NoPadding" => Ok(Transformation::AesGcm),
            "AES/GCM-SIV/NoPadding" => Ok(Transformation::AesGcmSiv),
            "ChaCha20-Poly1305" => Ok(Transformation::ChaCha20Poly1305),
            "RSA/ECB/PKCS1Padding" | "RSA" => Ok(Transformation::RsaEcb),
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// Whether the transformation needs an IV/nonce parameter.
    pub fn needs_iv(&self) -> bool {
        !matches!(self, Transformation::RsaEcb)
    }

    /// The IV/nonce length in bytes (0 when none is needed).
    pub fn iv_len(&self) -> usize {
        match self {
            Transformation::AesCbcPkcs5 => 16,
            Transformation::AesCtr
            | Transformation::AesGcm
            | Transformation::AesGcmSiv
            | Transformation::ChaCha20Poly1305 => 12,
            Transformation::RsaEcb => 0,
        }
    }
}

/// The simulated provider. All operations are stateless; stateful JCA
/// objects (ciphers, digests) live in the interpreter and call in here.
#[derive(Debug, Clone, Copy, Default)]
pub struct Provider;

impl Provider {
    /// Creates the provider.
    pub fn new() -> Self {
        Provider
    }

    /// `MessageDigest.getInstance(alg)` + `digest`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for digests other than
    /// SHA-256 (the only digest the shipped rules allow).
    pub fn digest(&self, algorithm: &str, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        match algorithm {
            "SHA-256" => Ok(sha256::digest(data).to_vec()),
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// `Mac.getInstance(alg)` + `doFinal`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown MACs.
    pub fn mac(&self, algorithm: &str, key: &[u8], data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        match algorithm {
            "HmacSHA256" => Ok(hmac::hmac_sha256(key, data).to_vec()),
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// `SecretKeyFactory.getInstance(alg).generateSecret(spec)` for the
    /// PBKDF2 family. `key_len_bits` comes from the `PBEKeySpec`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown KDFs and
    /// [`CryptoError::InvalidParameter`] for a zero iteration count or
    /// non-byte-aligned key length.
    pub fn derive_key(
        &self,
        algorithm: &str,
        password: &[u8],
        salt: &[u8],
        iterations: i64,
        key_len_bits: i64,
    ) -> Result<Vec<u8>, CryptoError> {
        let sha256_kdfs = ["PBKDF2WithHmacSHA256", "PBEWithHmacSHA256AndAES_128"];
        let sha512_kdfs = [
            "PBKDF2WithHmacSHA512",
            "PBEWithHmacSHA512AndAES_128",
            "PBEWithHmacSHA512AndAES_256",
        ];
        let use_sha512 = if sha256_kdfs.contains(&algorithm) {
            false
        } else if sha512_kdfs.contains(&algorithm) {
            true
        } else {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        };
        if iterations <= 0 {
            return Err(CryptoError::InvalidParameter(
                "iteration count must be positive".into(),
            ));
        }
        if key_len_bits <= 0 || key_len_bits % 8 != 0 {
            return Err(CryptoError::InvalidParameter(format!(
                "key length {key_len_bits} not a positive multiple of 8"
            )));
        }
        let dk_len = (key_len_bits / 8) as usize;
        Ok(if use_sha512 {
            sha512::pbkdf2_hmac_sha512(password, salt, iterations as u32, dk_len)
        } else {
            pbkdf2::pbkdf2_hmac_sha256(password, salt, iterations as u32, dk_len)
        })
    }

    /// `KeyGenerator.getInstance(alg)` + `init(bits)` + `generateKey()`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for generators other than
    /// AES and ChaCha20, and [`CryptoError::InvalidParameter`] for sizes
    /// other than AES-128 / ChaCha20-256 (the simulation implements one
    /// key size per family; the rules allow 128 and 256, and the
    /// generator picks the first listed preference).
    pub fn generate_key(
        &self,
        algorithm: &str,
        bits: i64,
        rng: &mut SecureRandom,
    ) -> Result<KeyMaterial, CryptoError> {
        let len = match (algorithm, bits) {
            ("AES", 128) => 16,
            ("ChaCha20", 256) => 32,
            ("AES" | "ChaCha20", _) => {
                return Err(CryptoError::InvalidParameter(format!(
                    "simulated provider implements AES-128 and ChaCha20-256 only, got {algorithm}-{bits}"
                )));
            }
            _ => return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned())),
        };
        let mut key = vec![0u8; len];
        rng.next_bytes(&mut key);
        Ok(KeyMaterial::Secret {
            bytes: key,
            algorithm: algorithm.to_owned(),
        })
    }

    /// `KeyPairGenerator.getInstance(alg)` + `initialize` +
    /// `generateKeyPair()` for RSA, DH and EC. Any requested size maps to
    /// the simulation's reduced-size groups.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for other algorithms.
    pub fn generate_key_pair(
        &self,
        algorithm: &str,
        _bits: i64,
        rng: &mut SecureRandom,
    ) -> Result<KeyPairMaterial, CryptoError> {
        match algorithm {
            "RSA" => {
                let kp = rsa::generate_key_pair(rng, 62)?;
                Ok(KeyPairMaterial {
                    public: KeyMaterial::Public(kp.public),
                    private: KeyMaterial::Private(kp.private),
                })
            }
            "DH" | "EC" => {
                let pair = if algorithm == "DH" {
                    agree::dh_generate(rng)
                } else {
                    agree::ec_generate(rng)
                };
                Ok(KeyPairMaterial {
                    public: KeyMaterial::AgreementPublic {
                        algorithm: algorithm.to_owned(),
                        point: pair.public,
                    },
                    private: KeyMaterial::AgreementPrivate {
                        algorithm: algorithm.to_owned(),
                        scalar: pair.scalar,
                    },
                })
            }
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// `KeyAgreement.getInstance(alg)` + `init(priv)` + `doPhase(peer)` +
    /// `generateSecret()`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for agreements other than
    /// DH/ECDH and [`CryptoError::InvalidKey`] when the key roles or
    /// families do not match the agreement.
    pub fn key_agreement(
        &self,
        algorithm: &str,
        private: &KeyMaterial,
        peer: &KeyMaterial,
    ) -> Result<Vec<u8>, CryptoError> {
        let family = match algorithm {
            "DH" => "DH",
            "ECDH" => "EC",
            other => return Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        };
        let scalar = match private {
            KeyMaterial::AgreementPrivate { algorithm, scalar } if algorithm == family => *scalar,
            _ => {
                return Err(CryptoError::InvalidKey(format!(
                    "{algorithm} agreement needs a {family} private key"
                )));
            }
        };
        let point = match peer {
            KeyMaterial::AgreementPublic { algorithm, point } if algorithm == family => *point,
            _ => {
                return Err(CryptoError::InvalidKey(format!(
                    "{algorithm} agreement needs a {family} peer public key"
                )));
            }
        };
        if family == "DH" {
            agree::dh_shared_secret(scalar, point.0)
        } else {
            agree::ec_shared_secret(scalar, point)
        }
    }

    /// `KDF.getInstance(alg).deriveData(...)` — HKDF-SHA256.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown KDFs and
    /// [`CryptoError::InvalidParameter`] for out-of-range output lengths.
    pub fn hkdf(
        &self,
        algorithm: &str,
        ikm: &[u8],
        salt: &[u8],
        info: &[u8],
        len_bytes: i64,
    ) -> Result<Vec<u8>, CryptoError> {
        if algorithm != "HKDF-SHA256" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        if len_bytes <= 0 {
            return Err(CryptoError::InvalidParameter(
                "HKDF output length must be positive".into(),
            ));
        }
        hkdf::derive(ikm, salt, info, len_bytes as usize)
    }

    /// Cipher encryption under `transformation`.
    ///
    /// # Errors
    ///
    /// Propagates key/IV validation errors from the mode implementations;
    /// RSA encryption requires a public key, AES a 16-byte secret key.
    pub fn encrypt(
        &self,
        transformation: Transformation,
        key: &KeyMaterial,
        iv: Option<&[u8]>,
        plaintext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match transformation {
            Transformation::AesCbcPkcs5 => {
                let aes = self.aes_key(key)?;
                modes::cbc_encrypt(&aes, self.require_iv(iv, 16)?, plaintext)
            }
            Transformation::AesCtr => {
                let aes = self.aes_key(key)?;
                modes::ctr_transform(&aes, self.require_iv(iv, 12)?, plaintext)
            }
            Transformation::AesGcm => {
                let aes = self.aes_key(key)?;
                modes::gcm_encrypt(&aes, self.require_iv(iv, 12)?, &[], plaintext)
            }
            Transformation::AesGcmSiv => {
                let aes = self.aes_key(key)?;
                modes::gcm_siv_encrypt(&aes, self.require_iv(iv, 12)?, &[], plaintext)
            }
            Transformation::ChaCha20Poly1305 => chacha::seal(
                self.chacha_key(key)?,
                self.require_iv(iv, 12)?,
                &[],
                plaintext,
            ),
            Transformation::RsaEcb => match key {
                KeyMaterial::Public(pk) => Ok(rsa::encrypt(pk, plaintext)),
                _ => Err(CryptoError::InvalidKey(
                    "RSA encryption needs a public key".into(),
                )),
            },
        }
    }

    /// Cipher decryption under `transformation`.
    ///
    /// # Errors
    ///
    /// As for [`Provider::encrypt`], plus [`CryptoError::BadCiphertext`]
    /// for padding/tag failures.
    pub fn decrypt(
        &self,
        transformation: Transformation,
        key: &KeyMaterial,
        iv: Option<&[u8]>,
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match transformation {
            Transformation::AesCbcPkcs5 => {
                let aes = self.aes_key(key)?;
                modes::cbc_decrypt(&aes, self.require_iv(iv, 16)?, ciphertext)
            }
            Transformation::AesCtr => {
                let aes = self.aes_key(key)?;
                modes::ctr_transform(&aes, self.require_iv(iv, 12)?, ciphertext)
            }
            Transformation::AesGcm => {
                let aes = self.aes_key(key)?;
                modes::gcm_decrypt(&aes, self.require_iv(iv, 12)?, &[], ciphertext)
            }
            Transformation::AesGcmSiv => {
                let aes = self.aes_key(key)?;
                modes::gcm_siv_decrypt(&aes, self.require_iv(iv, 12)?, &[], ciphertext)
            }
            Transformation::ChaCha20Poly1305 => chacha::open(
                self.chacha_key(key)?,
                self.require_iv(iv, 12)?,
                &[],
                ciphertext,
            ),
            Transformation::RsaEcb => match key {
                KeyMaterial::Private(sk) => rsa::decrypt(sk, ciphertext),
                _ => Err(CryptoError::InvalidKey(
                    "RSA decryption needs a private key".into(),
                )),
            },
        }
    }

    /// `Signature.getInstance("SHA256withRSA")` signing.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] / [`CryptoError::InvalidKey`]
    /// for unknown algorithms or non-private keys.
    pub fn sign(
        &self,
        algorithm: &str,
        key: &KeyMaterial,
        data: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if algorithm != "SHA256withRSA" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        match key {
            KeyMaterial::Private(sk) => Ok(rsa::sign(sk, data)),
            _ => Err(CryptoError::InvalidKey(
                "signing needs a private key".into(),
            )),
        }
    }

    /// `Signature` verification.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] / [`CryptoError::InvalidKey`]
    /// for unknown algorithms or non-public keys.
    pub fn verify(
        &self,
        algorithm: &str,
        key: &KeyMaterial,
        data: &[u8],
        signature: &[u8],
    ) -> Result<bool, CryptoError> {
        if algorithm != "SHA256withRSA" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        match key {
            KeyMaterial::Public(pk) => Ok(rsa::verify(pk, data, signature)),
            _ => Err(CryptoError::InvalidKey(
                "verification needs a public key".into(),
            )),
        }
    }

    fn chacha_key<'a>(&self, key: &'a KeyMaterial) -> Result<&'a [u8], CryptoError> {
        match key {
            KeyMaterial::Secret { bytes, .. } if bytes.len() == 32 => Ok(bytes),
            KeyMaterial::Secret { bytes, .. } => Err(CryptoError::InvalidKey(format!(
                "ChaCha20-Poly1305 needs a 32-byte key, got {}",
                bytes.len()
            ))),
            _ => Err(CryptoError::InvalidKey(
                "ChaCha20-Poly1305 needs a secret key".into(),
            )),
        }
    }

    fn aes_key(&self, key: &KeyMaterial) -> Result<Aes128, CryptoError> {
        match key {
            KeyMaterial::Secret { bytes, .. } if bytes.len() == 16 => Ok(Aes128::new(bytes)),
            KeyMaterial::Secret { bytes, .. } => Err(CryptoError::InvalidKey(format!(
                "AES-128 needs a 16-byte key, got {}",
                bytes.len()
            ))),
            _ => Err(CryptoError::InvalidKey("AES needs a secret key".into())),
        }
    }

    fn require_iv<'a>(&self, iv: Option<&'a [u8]>, len: usize) -> Result<&'a [u8], CryptoError> {
        match iv {
            Some(v) if v.len() == len => Ok(v),
            Some(v) => Err(CryptoError::InvalidParameter(format!(
                "IV must be {len} bytes, got {}",
                v.len()
            ))),
            None => Err(CryptoError::InvalidParameter("missing IV".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret(bytes: &[u8]) -> KeyMaterial {
        KeyMaterial::Secret {
            bytes: bytes.to_vec(),
            algorithm: "AES".into(),
        }
    }

    #[test]
    fn transformation_parsing() {
        assert_eq!(
            Transformation::parse("AES/CBC/PKCS5Padding").unwrap(),
            Transformation::AesCbcPkcs5
        );
        assert_eq!(
            Transformation::parse("AES/GCM/NoPadding").unwrap(),
            Transformation::AesGcm
        );
        // ECB is refused — there is no secure way to use it.
        assert!(Transformation::parse("AES/ECB/PKCS5Padding").is_err());
        assert!(Transformation::parse("DES/CBC/PKCS5Padding").is_err());
    }

    #[test]
    fn digest_dispatch() {
        let p = Provider::new();
        assert_eq!(p.digest("SHA-256", b"abc").unwrap().len(), 32);
        assert!(matches!(
            p.digest("MD5", b"abc"),
            Err(CryptoError::NoSuchAlgorithm(_))
        ));
    }

    #[test]
    fn derive_key_matches_pbkdf2() {
        let p = Provider::new();
        let dk = p
            .derive_key("PBKDF2WithHmacSHA256", b"password", b"salt", 1, 256)
            .unwrap();
        assert_eq!(
            dk,
            crate::pbkdf2::pbkdf2_hmac_sha256(b"password", b"salt", 1, 32)
        );
        assert!(p.derive_key("PBKDF1", b"p", b"s", 1, 128).is_err());
        assert!(p
            .derive_key("PBKDF2WithHmacSHA256", b"p", b"s", 0, 128)
            .is_err());
        assert!(p
            .derive_key("PBKDF2WithHmacSHA256", b"p", b"s", 1, 127)
            .is_err());
    }

    #[test]
    fn aes_cipher_roundtrip_through_provider() {
        let p = Provider::new();
        let key = secret(&[1u8; 16]);
        for (t, ivlen) in [
            (Transformation::AesCbcPkcs5, 16usize),
            (Transformation::AesCtr, 12),
            (Transformation::AesGcm, 12),
        ] {
            let iv = vec![7u8; ivlen];
            let ct = p.encrypt(t, &key, Some(&iv), b"hello world").unwrap();
            assert_eq!(p.decrypt(t, &key, Some(&iv), &ct).unwrap(), b"hello world");
        }
    }

    #[test]
    fn rsa_through_provider() {
        let p = Provider::new();
        let mut rng = SecureRandom::from_seed(9);
        let kp = p.generate_key_pair("RSA", 2048, &mut rng).unwrap();
        let public = kp.public;
        let private = kp.private;
        let ct = p
            .encrypt(Transformation::RsaEcb, &public, None, b"wrapped key!")
            .unwrap();
        assert_eq!(
            p.decrypt(Transformation::RsaEcb, &private, None, &ct)
                .unwrap(),
            b"wrapped key!"
        );
        // Key-role confusion is rejected.
        assert!(p
            .encrypt(Transformation::RsaEcb, &private, None, b"x")
            .is_err());
        assert!(p
            .decrypt(Transformation::RsaEcb, &public, None, &ct)
            .is_err());

        let sig = p.sign("SHA256withRSA", &private, b"msg").unwrap();
        assert!(p.verify("SHA256withRSA", &public, b"msg", &sig).unwrap());
        assert!(!p.verify("SHA256withRSA", &public, b"other", &sig).unwrap());
    }

    #[test]
    fn keygen_constraints() {
        let p = Provider::new();
        let mut rng = SecureRandom::new();
        let k = p.generate_key("AES", 128, &mut rng).unwrap();
        assert_eq!(k.encoded().len(), 16);
        assert_eq!(k.algorithm(), "AES");
        assert!(p.generate_key("DES", 56, &mut rng).is_err());
        assert!(p.generate_key("AES", 192, &mut rng).is_err());
    }

    #[test]
    fn wrong_key_sizes_rejected() {
        let p = Provider::new();
        let bad = secret(&[1u8; 8]);
        assert!(p
            .encrypt(Transformation::AesCbcPkcs5, &bad, Some(&[0u8; 16]), b"x")
            .is_err());
        let good = secret(&[1u8; 16]);
        assert!(p
            .encrypt(Transformation::AesCbcPkcs5, &good, Some(&[0u8; 8]), b"x")
            .is_err());
        assert!(p
            .encrypt(Transformation::AesCbcPkcs5, &good, None, b"x")
            .is_err());
    }

    #[test]
    fn mac_dispatch() {
        let p = Provider::new();
        let tag = p.mac("HmacSHA256", b"key", b"data").unwrap();
        assert_eq!(tag.len(), 32);
        assert!(p.mac("HmacMD5", b"key", b"data").is_err());
    }

    #[test]
    fn chacha20_keygen_and_aead_roundtrip() {
        let p = Provider::new();
        let mut rng = SecureRandom::new();
        let key = p.generate_key("ChaCha20", 256, &mut rng).unwrap();
        assert_eq!(key.encoded().len(), 32);
        assert_eq!(key.algorithm(), "ChaCha20");
        assert!(p.generate_key("ChaCha20", 128, &mut rng).is_err());

        let iv = [3u8; 12];
        let ct = p
            .encrypt(Transformation::ChaCha20Poly1305, &key, Some(&iv), b"msg")
            .unwrap();
        assert_eq!(
            p.decrypt(Transformation::ChaCha20Poly1305, &key, Some(&iv), &ct)
                .unwrap(),
            b"msg"
        );
        // An AES-length key is rejected for the ChaCha transformation.
        let short = secret(&[1u8; 16]);
        assert!(p
            .encrypt(Transformation::ChaCha20Poly1305, &short, Some(&iv), b"m")
            .is_err());
    }

    #[test]
    fn gcm_siv_through_provider_is_deterministic() {
        let p = Provider::new();
        let key = secret(&[1u8; 16]);
        let iv = [4u8; 12];
        let a = p
            .encrypt(Transformation::AesGcmSiv, &key, Some(&iv), b"payload")
            .unwrap();
        let b = p
            .encrypt(Transformation::AesGcmSiv, &key, Some(&iv), b"payload")
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            p.decrypt(Transformation::AesGcmSiv, &key, Some(&iv), &a)
                .unwrap(),
            b"payload"
        );
    }

    #[test]
    fn key_agreement_through_provider() {
        let p = Provider::new();
        let mut rng = SecureRandom::from_seed(21);
        for (family, agreement) in [("DH", "DH"), ("EC", "ECDH")] {
            let alice = p.generate_key_pair(family, 2048, &mut rng).unwrap();
            let bob = p.generate_key_pair(family, 2048, &mut rng).unwrap();
            let s1 = p
                .key_agreement(agreement, &alice.private, &bob.public)
                .unwrap();
            let s2 = p
                .key_agreement(agreement, &bob.private, &alice.public)
                .unwrap();
            assert_eq!(s1, s2, "{agreement}");
        }
        // Family mixups are typed errors.
        let dh = p.generate_key_pair("DH", 2048, &mut rng).unwrap();
        let ec = p.generate_key_pair("EC", 256, &mut rng).unwrap();
        assert!(p.key_agreement("ECDH", &dh.private, &ec.public).is_err());
        assert!(p.key_agreement("DH", &dh.private, &ec.public).is_err());
        assert!(p.key_agreement("X448", &dh.private, &dh.public).is_err());
    }

    #[test]
    fn hkdf_dispatch() {
        let p = Provider::new();
        let okm = p.hkdf("HKDF-SHA256", b"ikm", b"salt", b"info", 32).unwrap();
        assert_eq!(okm.len(), 32);
        assert_eq!(
            okm,
            crate::hkdf::derive(b"ikm", b"salt", b"info", 32).unwrap()
        );
        assert!(p.hkdf("HKDF-SHA512", b"i", b"s", b"", 32).is_err());
        assert!(p.hkdf("HKDF-SHA256", b"i", b"s", b"", 0).is_err());
    }
}
