//! The algorithm registry: maps JCA algorithm / transformation strings to
//! the primitive implementations, mirroring `getInstance` dispatch.

use crate::aes::Aes128;
use crate::error::CryptoError;
use crate::hmac;
use crate::modes;
use crate::pbkdf2;
use crate::rng::SecureRandom;
use crate::rsa;
use crate::sha256;
use crate::sha512;

/// Key material held by runtime key objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyMaterial {
    /// A symmetric key (raw bytes) with its algorithm name.
    Secret {
        /// Raw key bytes.
        bytes: Vec<u8>,
        /// Algorithm name, e.g. `"AES"`.
        algorithm: String,
    },
    /// An RSA private key.
    Private(rsa::PrivateKey),
    /// An RSA public key.
    Public(rsa::PublicKey),
}

impl KeyMaterial {
    /// The encoded form (`Key.getEncoded()`); RSA keys encode their
    /// parameters big-endian.
    pub fn encoded(&self) -> Vec<u8> {
        match self {
            KeyMaterial::Secret { bytes, .. } => bytes.clone(),
            KeyMaterial::Private(k) => {
                let mut v = k.n.to_be_bytes().to_vec();
                v.extend_from_slice(&k.d.to_be_bytes());
                v
            }
            KeyMaterial::Public(k) => {
                let mut v = k.n.to_be_bytes().to_vec();
                v.extend_from_slice(&k.e.to_be_bytes());
                v
            }
        }
    }

    /// The algorithm name (`Key.getAlgorithm()`).
    pub fn algorithm(&self) -> &str {
        match self {
            KeyMaterial::Secret { algorithm, .. } => algorithm,
            KeyMaterial::Private(_) | KeyMaterial::Public(_) => "RSA",
        }
    }
}

/// A parsed cipher transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transformation {
    /// `AES/CBC/PKCS5Padding`
    AesCbcPkcs5,
    /// `AES/CTR/NoPadding`
    AesCtr,
    /// `AES/GCM/NoPadding`
    AesGcm,
    /// `RSA/ECB/PKCS1Padding` (chunked textbook RSA in this simulation)
    RsaEcb,
}

impl Transformation {
    /// Parses a JCA transformation string.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown strings —
    /// including insecure ones like `AES/ECB/PKCS5Padding`, which this
    /// provider deliberately refuses to implement.
    pub fn parse(s: &str) -> Result<Transformation, CryptoError> {
        match s {
            "AES/CBC/PKCS5Padding" => Ok(Transformation::AesCbcPkcs5),
            "AES/CTR/NoPadding" => Ok(Transformation::AesCtr),
            "AES/GCM/NoPadding" => Ok(Transformation::AesGcm),
            "RSA/ECB/PKCS1Padding" | "RSA" => Ok(Transformation::RsaEcb),
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// Whether the transformation needs an IV/nonce parameter.
    pub fn needs_iv(&self) -> bool {
        matches!(
            self,
            Transformation::AesCbcPkcs5 | Transformation::AesCtr | Transformation::AesGcm
        )
    }

    /// The IV/nonce length in bytes (0 when none is needed).
    pub fn iv_len(&self) -> usize {
        match self {
            Transformation::AesCbcPkcs5 => 16,
            Transformation::AesCtr | Transformation::AesGcm => 12,
            Transformation::RsaEcb => 0,
        }
    }
}

/// The simulated provider. All operations are stateless; stateful JCA
/// objects (ciphers, digests) live in the interpreter and call in here.
#[derive(Debug, Clone, Copy, Default)]
pub struct Provider;

impl Provider {
    /// Creates the provider.
    pub fn new() -> Self {
        Provider
    }

    /// `MessageDigest.getInstance(alg)` + `digest`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for digests other than
    /// SHA-256 (the only digest the shipped rules allow).
    pub fn digest(&self, algorithm: &str, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        match algorithm {
            "SHA-256" => Ok(sha256::digest(data).to_vec()),
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// `Mac.getInstance(alg)` + `doFinal`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown MACs.
    pub fn mac(&self, algorithm: &str, key: &[u8], data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        match algorithm {
            "HmacSHA256" => Ok(hmac::hmac_sha256(key, data).to_vec()),
            other => Err(CryptoError::NoSuchAlgorithm(other.to_owned())),
        }
    }

    /// `SecretKeyFactory.getInstance(alg).generateSecret(spec)` for the
    /// PBKDF2 family. `key_len_bits` comes from the `PBEKeySpec`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for unknown KDFs and
    /// [`CryptoError::InvalidParameter`] for a zero iteration count or
    /// non-byte-aligned key length.
    pub fn derive_key(
        &self,
        algorithm: &str,
        password: &[u8],
        salt: &[u8],
        iterations: i64,
        key_len_bits: i64,
    ) -> Result<Vec<u8>, CryptoError> {
        let sha256_kdfs = ["PBKDF2WithHmacSHA256", "PBEWithHmacSHA256AndAES_128"];
        let sha512_kdfs = [
            "PBKDF2WithHmacSHA512",
            "PBEWithHmacSHA512AndAES_128",
            "PBEWithHmacSHA512AndAES_256",
        ];
        let use_sha512 = if sha256_kdfs.contains(&algorithm) {
            false
        } else if sha512_kdfs.contains(&algorithm) {
            true
        } else {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        };
        if iterations <= 0 {
            return Err(CryptoError::InvalidParameter(
                "iteration count must be positive".into(),
            ));
        }
        if key_len_bits <= 0 || key_len_bits % 8 != 0 {
            return Err(CryptoError::InvalidParameter(format!(
                "key length {key_len_bits} not a positive multiple of 8"
            )));
        }
        let dk_len = (key_len_bits / 8) as usize;
        Ok(if use_sha512 {
            sha512::pbkdf2_hmac_sha512(password, salt, iterations as u32, dk_len)
        } else {
            pbkdf2::pbkdf2_hmac_sha256(password, salt, iterations as u32, dk_len)
        })
    }

    /// `KeyGenerator.getInstance(alg)` + `init(bits)` + `generateKey()`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for non-AES generators and
    /// [`CryptoError::InvalidParameter`] for key sizes other than 128
    /// (this simulation implements AES-128 only; the rules allow 128 and
    /// 256, and the generator picks the first listed preference).
    pub fn generate_key(
        &self,
        algorithm: &str,
        bits: i64,
        rng: &mut SecureRandom,
    ) -> Result<KeyMaterial, CryptoError> {
        if algorithm != "AES" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        if bits != 128 {
            return Err(CryptoError::InvalidParameter(format!(
                "simulated provider implements AES-128 only, got {bits}"
            )));
        }
        let mut key = vec![0u8; 16];
        rng.next_bytes(&mut key);
        Ok(KeyMaterial::Secret {
            bytes: key,
            algorithm: "AES".into(),
        })
    }

    /// `KeyPairGenerator.getInstance("RSA")` + `initialize` +
    /// `generateKeyPair()`. Any requested size maps to the simulation's
    /// reduced-size keys.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] for algorithms other than
    /// RSA.
    pub fn generate_key_pair(
        &self,
        algorithm: &str,
        _bits: i64,
        rng: &mut SecureRandom,
    ) -> Result<rsa::KeyPair, CryptoError> {
        if algorithm != "RSA" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        rsa::generate_key_pair(rng, 62)
    }

    /// Cipher encryption under `transformation`.
    ///
    /// # Errors
    ///
    /// Propagates key/IV validation errors from the mode implementations;
    /// RSA encryption requires a public key, AES a 16-byte secret key.
    pub fn encrypt(
        &self,
        transformation: Transformation,
        key: &KeyMaterial,
        iv: Option<&[u8]>,
        plaintext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match transformation {
            Transformation::AesCbcPkcs5 => {
                let aes = self.aes_key(key)?;
                modes::cbc_encrypt(&aes, self.require_iv(iv, 16)?, plaintext)
            }
            Transformation::AesCtr => {
                let aes = self.aes_key(key)?;
                modes::ctr_transform(&aes, self.require_iv(iv, 12)?, plaintext)
            }
            Transformation::AesGcm => {
                let aes = self.aes_key(key)?;
                modes::gcm_encrypt(&aes, self.require_iv(iv, 12)?, &[], plaintext)
            }
            Transformation::RsaEcb => match key {
                KeyMaterial::Public(pk) => Ok(rsa::encrypt(pk, plaintext)),
                _ => Err(CryptoError::InvalidKey(
                    "RSA encryption needs a public key".into(),
                )),
            },
        }
    }

    /// Cipher decryption under `transformation`.
    ///
    /// # Errors
    ///
    /// As for [`Provider::encrypt`], plus [`CryptoError::BadCiphertext`]
    /// for padding/tag failures.
    pub fn decrypt(
        &self,
        transformation: Transformation,
        key: &KeyMaterial,
        iv: Option<&[u8]>,
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match transformation {
            Transformation::AesCbcPkcs5 => {
                let aes = self.aes_key(key)?;
                modes::cbc_decrypt(&aes, self.require_iv(iv, 16)?, ciphertext)
            }
            Transformation::AesCtr => {
                let aes = self.aes_key(key)?;
                modes::ctr_transform(&aes, self.require_iv(iv, 12)?, ciphertext)
            }
            Transformation::AesGcm => {
                let aes = self.aes_key(key)?;
                modes::gcm_decrypt(&aes, self.require_iv(iv, 12)?, &[], ciphertext)
            }
            Transformation::RsaEcb => match key {
                KeyMaterial::Private(sk) => rsa::decrypt(sk, ciphertext),
                _ => Err(CryptoError::InvalidKey(
                    "RSA decryption needs a private key".into(),
                )),
            },
        }
    }

    /// `Signature.getInstance("SHA256withRSA")` signing.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] / [`CryptoError::InvalidKey`]
    /// for unknown algorithms or non-private keys.
    pub fn sign(
        &self,
        algorithm: &str,
        key: &KeyMaterial,
        data: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if algorithm != "SHA256withRSA" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        match key {
            KeyMaterial::Private(sk) => Ok(rsa::sign(sk, data)),
            _ => Err(CryptoError::InvalidKey(
                "signing needs a private key".into(),
            )),
        }
    }

    /// `Signature` verification.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::NoSuchAlgorithm`] / [`CryptoError::InvalidKey`]
    /// for unknown algorithms or non-public keys.
    pub fn verify(
        &self,
        algorithm: &str,
        key: &KeyMaterial,
        data: &[u8],
        signature: &[u8],
    ) -> Result<bool, CryptoError> {
        if algorithm != "SHA256withRSA" {
            return Err(CryptoError::NoSuchAlgorithm(algorithm.to_owned()));
        }
        match key {
            KeyMaterial::Public(pk) => Ok(rsa::verify(pk, data, signature)),
            _ => Err(CryptoError::InvalidKey(
                "verification needs a public key".into(),
            )),
        }
    }

    fn aes_key(&self, key: &KeyMaterial) -> Result<Aes128, CryptoError> {
        match key {
            KeyMaterial::Secret { bytes, .. } if bytes.len() == 16 => Ok(Aes128::new(bytes)),
            KeyMaterial::Secret { bytes, .. } => Err(CryptoError::InvalidKey(format!(
                "AES-128 needs a 16-byte key, got {}",
                bytes.len()
            ))),
            _ => Err(CryptoError::InvalidKey("AES needs a secret key".into())),
        }
    }

    fn require_iv<'a>(&self, iv: Option<&'a [u8]>, len: usize) -> Result<&'a [u8], CryptoError> {
        match iv {
            Some(v) if v.len() == len => Ok(v),
            Some(v) => Err(CryptoError::InvalidParameter(format!(
                "IV must be {len} bytes, got {}",
                v.len()
            ))),
            None => Err(CryptoError::InvalidParameter("missing IV".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret(bytes: &[u8]) -> KeyMaterial {
        KeyMaterial::Secret {
            bytes: bytes.to_vec(),
            algorithm: "AES".into(),
        }
    }

    #[test]
    fn transformation_parsing() {
        assert_eq!(
            Transformation::parse("AES/CBC/PKCS5Padding").unwrap(),
            Transformation::AesCbcPkcs5
        );
        assert_eq!(
            Transformation::parse("AES/GCM/NoPadding").unwrap(),
            Transformation::AesGcm
        );
        // ECB is refused — there is no secure way to use it.
        assert!(Transformation::parse("AES/ECB/PKCS5Padding").is_err());
        assert!(Transformation::parse("DES/CBC/PKCS5Padding").is_err());
    }

    #[test]
    fn digest_dispatch() {
        let p = Provider::new();
        assert_eq!(p.digest("SHA-256", b"abc").unwrap().len(), 32);
        assert!(matches!(
            p.digest("MD5", b"abc"),
            Err(CryptoError::NoSuchAlgorithm(_))
        ));
    }

    #[test]
    fn derive_key_matches_pbkdf2() {
        let p = Provider::new();
        let dk = p
            .derive_key("PBKDF2WithHmacSHA256", b"password", b"salt", 1, 256)
            .unwrap();
        assert_eq!(
            dk,
            crate::pbkdf2::pbkdf2_hmac_sha256(b"password", b"salt", 1, 32)
        );
        assert!(p.derive_key("PBKDF1", b"p", b"s", 1, 128).is_err());
        assert!(p
            .derive_key("PBKDF2WithHmacSHA256", b"p", b"s", 0, 128)
            .is_err());
        assert!(p
            .derive_key("PBKDF2WithHmacSHA256", b"p", b"s", 1, 127)
            .is_err());
    }

    #[test]
    fn aes_cipher_roundtrip_through_provider() {
        let p = Provider::new();
        let key = secret(&[1u8; 16]);
        for (t, ivlen) in [
            (Transformation::AesCbcPkcs5, 16usize),
            (Transformation::AesCtr, 12),
            (Transformation::AesGcm, 12),
        ] {
            let iv = vec![7u8; ivlen];
            let ct = p.encrypt(t, &key, Some(&iv), b"hello world").unwrap();
            assert_eq!(p.decrypt(t, &key, Some(&iv), &ct).unwrap(), b"hello world");
        }
    }

    #[test]
    fn rsa_through_provider() {
        let p = Provider::new();
        let mut rng = SecureRandom::from_seed(9);
        let kp = p.generate_key_pair("RSA", 2048, &mut rng).unwrap();
        let public = KeyMaterial::Public(kp.public);
        let private = KeyMaterial::Private(kp.private);
        let ct = p
            .encrypt(Transformation::RsaEcb, &public, None, b"wrapped key!")
            .unwrap();
        assert_eq!(
            p.decrypt(Transformation::RsaEcb, &private, None, &ct)
                .unwrap(),
            b"wrapped key!"
        );
        // Key-role confusion is rejected.
        assert!(p
            .encrypt(Transformation::RsaEcb, &private, None, b"x")
            .is_err());
        assert!(p
            .decrypt(Transformation::RsaEcb, &public, None, &ct)
            .is_err());

        let sig = p.sign("SHA256withRSA", &private, b"msg").unwrap();
        assert!(p.verify("SHA256withRSA", &public, b"msg", &sig).unwrap());
        assert!(!p.verify("SHA256withRSA", &public, b"other", &sig).unwrap());
    }

    #[test]
    fn keygen_constraints() {
        let p = Provider::new();
        let mut rng = SecureRandom::new();
        let k = p.generate_key("AES", 128, &mut rng).unwrap();
        assert_eq!(k.encoded().len(), 16);
        assert_eq!(k.algorithm(), "AES");
        assert!(p.generate_key("DES", 56, &mut rng).is_err());
        assert!(p.generate_key("AES", 192, &mut rng).is_err());
    }

    #[test]
    fn wrong_key_sizes_rejected() {
        let p = Provider::new();
        let bad = secret(&[1u8; 8]);
        assert!(p
            .encrypt(Transformation::AesCbcPkcs5, &bad, Some(&[0u8; 16]), b"x")
            .is_err());
        let good = secret(&[1u8; 16]);
        assert!(p
            .encrypt(Transformation::AesCbcPkcs5, &good, Some(&[0u8; 8]), b"x")
            .is_err());
        assert!(p
            .encrypt(Transformation::AesCbcPkcs5, &good, None, b"x")
            .is_err());
    }

    #[test]
    fn mac_dispatch() {
        let p = Provider::new();
        let tag = p.mac("HmacSHA256", b"key", b"data").unwrap();
        assert_eq!(tag.len(), 32);
        assert!(p.mac("HmacMD5", b"key", b"data").is_err());
    }
}
