//! The `SecureRandom` stand-in: a deterministic, seedable PRNG.
//!
//! Benchmarks and tests need reproducible randomness, so the default
//! construction seeds from a fixed value; callers that want entropy can
//! seed from the OS through [`SecureRandom::from_entropy`]. The backing
//! generator is the workspace's in-repo `devharness` xoshiro256** — this
//! simulates `java.security.SecureRandom`'s *interface*, it does not
//! claim cryptographic strength.

use devharness::rng::{RandomSource, Xoshiro256};

/// A drop-in for `java.security.SecureRandom`.
#[derive(Debug, Clone)]
pub struct SecureRandom {
    rng: Xoshiro256,
}

impl Default for SecureRandom {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureRandom {
    /// Creates a deterministic instance (fixed seed) — the default for
    /// reproducible experiments.
    pub fn new() -> Self {
        SecureRandom {
            rng: Xoshiro256::seed_from_u64(0x0c09_71c9_7f9e_2020),
        }
    }

    /// Creates an instance seeded from a caller-provided seed.
    pub fn from_seed(seed: u64) -> Self {
        SecureRandom {
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Creates an instance seeded from operating-system entropy.
    pub fn from_entropy() -> Self {
        SecureRandom {
            rng: Xoshiro256::from_entropy(),
        }
    }

    /// Fills `out` with random bytes (`SecureRandom.nextBytes`).
    pub fn next_bytes(&mut self, out: &mut [u8]) {
        self.rng.fill_bytes(out);
    }

    /// A uniform value in `[0, bound)` (`SecureRandom.nextInt(bound)`).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not positive, matching the JCA's
    /// `IllegalArgumentException`.
    pub fn next_int(&mut self, bound: i32) -> i32 {
        assert!(bound > 0, "bound must be positive");
        self.rng.next_below(bound as u64) as i32
    }

    /// A uniform `u64` (used by the RSA key generator).
    pub fn next_u64(&mut self) -> u64 {
        RandomSource::next_u64(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_default() {
        let mut a = SecureRandom::new();
        let mut b = SecureRandom::new();
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.next_bytes(&mut ba);
        b.next_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SecureRandom::from_seed(1);
        let mut b = SecureRandom::from_seed(2);
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.next_bytes(&mut ba);
        b.next_bytes(&mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn next_int_in_range() {
        let mut r = SecureRandom::new();
        for _ in 0..100 {
            let v = r.next_int(10);
            assert!((0..10).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_int_rejects_nonpositive_bound() {
        SecureRandom::new().next_int(0);
    }

    #[test]
    fn bytes_look_random() {
        let mut r = SecureRandom::new();
        let mut buf = [0u8; 256];
        r.next_bytes(&mut buf);
        // Not all equal — a sanity check, not a statistical test.
        assert!(buf.iter().any(|&b| b != buf[0]));
    }
}
