//! AES-128 block cipher (FIPS 197).
//!
//! The S-box is derived at first use from its mathematical definition
//! (multiplicative inverse in GF(2^8) followed by the affine transform)
//! instead of a hard-coded table; the key schedule and rounds follow the
//! spec directly. Verified against the FIPS 197 Appendix C vector.

use std::sync::OnceLock;

/// Block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key length in bytes.
pub const KEY_LEN: usize = 16;
const ROUNDS: usize = 10;

/// Multiplication in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0), via exponentiation to
/// the 254th power.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8)*
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static BOXES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    BOXES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv = [0u8; 256];
        for i in 0..256u16 {
            let x = gf_inv(i as u8);
            // Affine transform: b ^= rotl(b,1..4) ^ 0x63
            let s = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            sbox[i as usize] = s;
            inv[s as usize] = i as u8;
        }
        (sbox, inv)
    })
}

fn sub_byte(b: u8) -> u8 {
    sboxes().0[b as usize]
}

fn inv_sub_byte(b: u8) -> u8 {
    sboxes().1[b as usize]
}

/// An expanded AES-128 key (11 round keys).
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands a 16-byte key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not exactly 16 bytes; callers go through
    /// [`crate::provider`], which validates lengths and returns
    /// [`crate::CryptoError::InvalidKey`] instead.
    pub fn new(key: &[u8]) -> Aes128 {
        assert_eq!(key.len(), KEY_LEN, "AES-128 key must be 16 bytes");
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sub_byte(*b);
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[ROUNDS]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..ROUNDS).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

// State layout: byte i of the block is state[i]; column c is bytes 4c..4c+4,
// row r within a column is offset r (FIPS "column-major" order).

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sub_byte(*b);
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = inv_sub_byte(*b);
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = old[((c + r) % 4) * 4 + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[((c + r) % 4) * 4 + r] = old[c * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("4 bytes");
        state[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("4 bytes");
        state[c * 4] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[c * 4 + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[c * 4 + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[c * 4 + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_spot_checks() {
        // Known S-box values from the spec.
        assert_eq!(sub_byte(0x00), 0x63);
        assert_eq!(sub_byte(0x01), 0x7c);
        assert_eq!(sub_byte(0x53), 0xed);
        assert_eq!(sub_byte(0xff), 0x16);
        // Inverse box round-trips.
        for b in 0..=255u8 {
            assert_eq!(inv_sub_byte(sub_byte(b)), b);
        }
    }

    #[test]
    fn gf_math() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS 197 example
        assert_eq!(gf_mul(gf_inv(0x53), 0x53), 1);
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let aes = Aes128::new(&key);
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        aes.decrypt_block(&mut block);
        let expected: Vec<u8> = vec![
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        assert_eq!(block.to_vec(), expected);
    }

    #[test]
    fn decrypt_inverts_encrypt_for_many_blocks() {
        let aes = Aes128::new(&[7u8; 16]);
        for seed in 0..64u8 {
            let mut block = [seed; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_add(i as u8).wrapping_mul(31);
            }
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    #[should_panic(expected = "16 bytes")]
    fn wrong_key_length_panics() {
        Aes128::new(&[0u8; 15]);
    }
}
