//! HMAC-SHA256 (RFC 2104).

use crate::sha256::{digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes HMAC-SHA256 of `data` under `key`.
///
/// Keys longer than the block size are hashed first, per the RFC.
///
/// # Example
///
/// ```
/// let tag = jcasim::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let kd = digest(key);
        key_block[..DIGEST_LEN].copy_from_slice(&kd);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finish();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time tag comparison (length must match).
pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, data);
    if tag.len() != expected.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        // Key = 0x0b * 20, Data = "Hi There"
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_long_key() {
        // Case 6: 131-byte key of 0xaa, hashed-key path.
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"msg");
        assert!(verify(b"k", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify(b"k", b"msg", &bad));
        assert!(!verify(b"k", b"msg", &tag[..31]));
        assert!(!verify(b"other", b"msg", &tag));
    }
}
