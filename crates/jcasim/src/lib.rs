//! A simulated Java Cryptography Architecture provider.
//!
//! The paper's generated code runs against the JDK's default JCA provider.
//! This crate is the Rust substitute: pure-Rust implementations of the
//! primitives the use-case corpus exercises — SHA-256, HMAC-SHA256,
//! PBKDF2, HKDF, AES-128 in CBC/CTR/GCM/GCM-SIV modes with PKCS#7
//! padding, ChaCha20-Poly1305, a reduced-size RSA (for hybrid/asymmetric
//! encryption and signing), small-group DH/ECDH key agreement, and a
//! deterministic CSPRNG standing in for `SecureRandom`.
//!
//! The [`provider`] module maps JCA algorithm strings
//! (`"PBKDF2WithHmacSHA256"`, `"AES/CBC/PKCS5Padding"`, …) to these
//! implementations, exactly the dispatch `getInstance` performs in Java.
//!
//! Security note: the RSA implementation uses deliberately small key sizes
//! (u128 arithmetic) so key generation stays fast in tests; it exists to
//! exercise the same code paths as the paper's experiments, not to protect
//! data. DESIGN.md records this substitution.

pub mod aes;
pub mod agree;
pub mod chacha;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod modes;
pub mod pbkdf2;
pub mod provider;
pub mod rng;
pub mod rsa;
pub mod sha256;
pub mod sha512;

pub use error::CryptoError;
pub use provider::Provider;
