//! PBKDF2 with HMAC-SHA256 (RFC 8018).

use crate::hmac::hmac_sha256;

/// Derives `dk_len` bytes of key material from `password` and `salt` with
/// `iterations` rounds of PBKDF2-HMAC-SHA256.
///
/// # Panics
///
/// Panics if `iterations` is zero (the JCA throws
/// `IllegalArgumentException` for the same input).
///
/// # Example
///
/// ```
/// let key = jcasim::pbkdf2::pbkdf2_hmac_sha256(b"password", b"salt", 1000, 16);
/// assert_eq!(key.len(), 16);
/// ```
pub fn pbkdf2_hmac_sha256(password: &[u8], salt: &[u8], iterations: u32, dk_len: usize) -> Vec<u8> {
    assert!(iterations > 0, "iteration count must be positive");
    let mut out = Vec::with_capacity(dk_len);
    let mut block_index: u32 = 1;
    while out.len() < dk_len {
        let mut block_input = salt.to_vec();
        block_input.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha256(password, &block_input);
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha256(password, &u);
            for (ti, ui) in t.iter_mut().zip(&u) {
                *ti ^= ui;
            }
        }
        let take = (dk_len - out.len()).min(t.len());
        out.extend_from_slice(&t[..take]);
        block_index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn known_vector_one_iteration() {
        // Widely published PBKDF2-HMAC-SHA256 vector.
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 1, 32);
        assert_eq!(
            hex(&dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"
        );
    }

    #[test]
    fn known_vector_4096_iterations() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 4096, 32);
        assert_eq!(
            hex(&dk),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"
        );
    }

    #[test]
    fn multi_block_output() {
        // 40 bytes needs two HMAC blocks.
        let dk = pbkdf2_hmac_sha256(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            40,
        );
        assert_eq!(
            hex(&dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1c635518c7dac47e9"
        );
    }

    #[test]
    fn output_length_is_exact() {
        for len in [1, 16, 31, 32, 33, 64, 65] {
            assert_eq!(pbkdf2_hmac_sha256(b"p", b"s", 2, len).len(), len);
        }
    }

    #[test]
    fn different_salts_differ() {
        let a = pbkdf2_hmac_sha256(b"p", b"salt-a", 100, 32);
        let b = pbkdf2_hmac_sha256(b"p", b"salt-b", 100, 32);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "iteration count")]
    fn zero_iterations_panics() {
        pbkdf2_hmac_sha256(b"p", b"s", 0, 16);
    }
}
