//! SHA-256 as specified in FIPS 180-4.
//!
//! The round constants are the standard FIPS values (the first 32 bits of
//! the fractional parts of the cube roots of the first 64 primes); the
//! initial hash state derives from square roots of the first 8 primes.
//! Rather than hard-coding the tables, we derive them at first use with
//! integer arithmetic — both a compactness win and a self-check that the
//! implementation matches the spec's construction.

use std::sync::OnceLock;

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 32;

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

fn primes(count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut n = 2;
    while out.len() < count {
        if is_prime(n) {
            out.push(n);
        }
        n += 1;
    }
    out
}

/// First 32 bits of the fractional part of the k-th root of `p`, computed
/// with pure integer arithmetic (binary search on x/2^32 such that
/// (x/2^32 + floor(root))^k ≈ p).
fn frac_root_bits(p: u64, k: u32) -> u32 {
    // integer floor of the k-th root
    let mut int_root = 1u64;
    while (int_root + 1).pow(k) <= p {
        int_root += 1;
    }
    // binary search the 32 fractional bits: find largest f in [0, 2^32)
    // with (int_root * 2^32 + f)^k <= p * 2^(32k), using u128 checks.
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 32;
    let target = (p as u128) << (32 * k as usize);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let x = ((int_root as u128) << 32) + mid;
        // x^k may exceed u128 for k=3 and 40-bit x? x < 2^35, x^3 < 2^105 — fits.
        let mut acc: u128 = 1;
        let mut overflow = false;
        for _ in 0..k {
            match acc.checked_mul(x) {
                Some(v) => acc = v,
                None => {
                    overflow = true;
                    break;
                }
            }
        }
        if !overflow && acc <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

fn k_constants() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let ps = primes(64);
        let mut k = [0u32; 64];
        for (i, p) in ps.iter().enumerate() {
            k[i] = frac_root_bits(*p, 3);
        }
        k
    })
}

fn h_init() -> [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    *H.get_or_init(|| {
        let ps = primes(8);
        let mut h = [0u32; 8];
        for (i, p) in ps.iter().enumerate() {
            h[i] = frac_root_bits(*p, 2);
        }
        h
    })
}

/// An incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// let mut h = jcasim::sha256::Sha256::new();
/// h.update(b"abc");
/// let d = h.finish();
/// assert_eq!(d[0], 0xba);
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: Vec<u8>,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: h_init(),
            buffer: Vec::with_capacity(64),
            length_bits: 0,
        }
    }

    /// Feeds more input.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= 64 {
            let block: [u8; 64] = self.buffer[..64].try_into().expect("block is 64 bytes");
            self.compress(&block);
            self.buffer.drain(..64);
        }
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; DIGEST_LEN] {
        let len_bits = self.length_bits;
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        let padded = std::mem::take(&mut self.buffer);
        let mut final_input = padded;
        final_input.extend_from_slice(&len_bits.to_be_bytes());
        for chunk in final_input.chunks_exact(64) {
            let block: [u8; 64] = chunk.try_into().expect("chunk is 64 bytes");
            self.compress(&block);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = k_constants();
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn derived_constants_match_fips() {
        // Spot-check spec values: K[0], K[63], H[0], H[7].
        assert_eq!(k_constants()[0], 0x428a2f98);
        assert_eq!(k_constants()[63], 0xc67178f2);
        assert_eq!(h_init()[0], 0x6a09e667);
        assert_eq!(h_init()[7], 0x5be0cd19);
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), digest(&data));
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
