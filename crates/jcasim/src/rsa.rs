//! A reduced-size RSA implementation for hybrid/asymmetric encryption and
//! signing experiments.
//!
//! The paper's use cases run RSA-2048 on the JDK provider. Arbitrary-
//! precision arithmetic is out of scope for this reproduction, so keys are
//! generated from two random primes below 2^62 (modulus < 2^124, fitting
//! u128 arithmetic). Data larger than the modulus is processed in chunks.
//! The substitution is recorded in DESIGN.md; the *API shape* — key pair
//! generation, encrypt-with-public / decrypt-with-private, sign-with-
//! private / verify-with-public over a SHA-256 digest — matches the JCA
//! behaviour the generator targets.

use crate::error::CryptoError;
use crate::rng::SecureRandom;
use crate::sha256;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus.
    pub n: u128,
    /// Public exponent.
    pub e: u128,
}

/// An RSA private key `(n, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey {
    /// Modulus.
    pub n: u128,
    /// Private exponent.
    pub d: u128,
}

/// An RSA key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half.
    pub public: PublicKey,
    /// The private half.
    pub private: PrivateKey,
}

fn mul_mod(a: u128, b: u128, m: u128) -> u128 {
    // Schoolbook double-and-add to avoid overflow (m < 2^124, so a+a fits
    // only if we reduce each step; use 128-bit safe addition chain).
    let mut result = 0u128;
    let mut a = a % m;
    let mut b = b;
    while b > 0 {
        if b & 1 == 1 {
            result = add_mod(result, a, m);
        }
        a = add_mod(a, a, m);
        b >>= 1;
    }
    result
}

fn add_mod(a: u128, b: u128, m: u128) -> u128 {
    // a, b < m <= 2^124 so a + b cannot overflow u128.
    let s = a + b;
    if s >= m {
        s - m
    } else {
        s
    }
}

fn pow_mod(base: u128, mut exp: u128, m: u128) -> u128 {
    let mut result = 1u128 % m;
    let mut base = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod(result, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    result
}

/// Deterministic Miller–Rabin, valid for all n < 3.3 × 10^24 with the
/// standard witness set.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a as u128, d as u128, n as u128) as u64;
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x as u128, x as u128, n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

fn mod_inverse(a: u128, m: u128) -> Option<u128> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(x.rem_euclid(m as i128) as u128)
}

fn random_prime(rng: &mut SecureRandom, bits: u32) -> u64 {
    loop {
        let mut candidate = rng.next_u64() >> (64 - bits);
        candidate |= 1; // odd
        candidate |= 1 << (bits - 1); // full bit length
        if is_prime(candidate) {
            return candidate;
        }
    }
}

/// Public exponent used by all generated keys (F4).
pub const PUBLIC_EXPONENT: u128 = 65537;

/// Generates a key pair with two primes of `bits` bits each (default
/// callers pass 62, giving a ~124-bit modulus).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if `bits` is outside `[16, 62]`.
pub fn generate_key_pair(rng: &mut SecureRandom, bits: u32) -> Result<KeyPair, CryptoError> {
    if !(16..=62).contains(&bits) {
        return Err(CryptoError::InvalidParameter(format!(
            "prime size {bits} outside supported range [16, 62]"
        )));
    }
    loop {
        let p = random_prime(rng, bits) as u128;
        let q = random_prime(rng, bits) as u128;
        if p == q {
            continue;
        }
        let n = p * q;
        let phi = (p - 1) * (q - 1);
        let Some(d) = mod_inverse(PUBLIC_EXPONENT, phi) else {
            continue;
        };
        return Ok(KeyPair {
            public: PublicKey {
                n,
                e: PUBLIC_EXPONENT,
            },
            private: PrivateKey { n, d },
        });
    }
}

/// Number of plaintext bytes per chunk for modulus `n` (one byte less than
/// the modulus size so every chunk value is below `n`).
fn chunk_len(n: u128) -> usize {
    ((128 - n.leading_zeros()) as usize - 1) / 8
}

/// Number of ciphertext bytes per chunk (full modulus size, rounded up).
fn cipher_chunk_len(n: u128) -> usize {
    ((128 - n.leading_zeros()) as usize).div_ceil(8)
}

/// Encrypts `data` under the public key, chunking as needed. The first
/// byte of the output records the length of the final plaintext chunk so
/// decryption can strip zero-padding.
pub fn encrypt(key: &PublicKey, data: &[u8]) -> Vec<u8> {
    let pt_len = chunk_len(key.n).max(1);
    let ct_len = cipher_chunk_len(key.n);
    let mut out = vec![(data.len() % pt_len) as u8];
    for chunk in data.chunks(pt_len) {
        let mut buf = [0u8; 16];
        buf[16 - chunk.len()..].copy_from_slice(chunk);
        let m = u128::from_be_bytes(buf);
        let c = pow_mod(m, key.e, key.n);
        out.extend_from_slice(&c.to_be_bytes()[16 - ct_len..]);
    }
    out
}

/// Decrypts data produced by [`encrypt`].
///
/// # Errors
///
/// Returns [`CryptoError::BadCiphertext`] for truncated or malformed input.
pub fn decrypt(key: &PrivateKey, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if data.is_empty() {
        return Err(CryptoError::BadCiphertext("empty RSA ciphertext".into()));
    }
    let pt_len = chunk_len(key.n).max(1);
    let ct_len = cipher_chunk_len(key.n);
    let (head, body) = data.split_at(1);
    let last_len = head[0] as usize;
    if body.len() % ct_len != 0 {
        return Err(CryptoError::BadCiphertext(
            "RSA ciphertext length mismatch".into(),
        ));
    }
    let chunks: Vec<&[u8]> = body.chunks(ct_len).collect();
    let mut out = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        let mut buf = [0u8; 16];
        buf[16 - chunk.len()..].copy_from_slice(chunk);
        let c = u128::from_be_bytes(buf);
        if c >= key.n {
            return Err(CryptoError::BadCiphertext("chunk exceeds modulus".into()));
        }
        let m = pow_mod(c, key.d, key.n);
        let bytes = m.to_be_bytes();
        let is_last = i == chunks.len() - 1;
        let take = if is_last && last_len != 0 {
            last_len
        } else {
            pt_len
        };
        out.extend_from_slice(&bytes[16 - take..]);
    }
    Ok(out)
}

/// Signs `data`: RSA-decrypt-style exponentiation over the SHA-256 digest
/// (hash-then-sign, as `"SHA256withRSA"` does).
pub fn sign(key: &PrivateKey, data: &[u8]) -> Vec<u8> {
    let digest = sha256::digest(data);
    let as_private_op = PublicKey { n: key.n, e: key.d };
    encrypt(&as_private_op, &digest)
}

/// Verifies a signature produced by [`sign`].
pub fn verify(key: &PublicKey, data: &[u8], signature: &[u8]) -> bool {
    let as_public_op = PrivateKey { n: key.n, d: key.e };
    match decrypt(&as_public_op, signature) {
        Ok(recovered) => recovered == sha256::digest(data),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> KeyPair {
        generate_key_pair(&mut SecureRandom::from_seed(42), 62).unwrap()
    }

    #[test]
    fn primality_spot_checks() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael number
        assert!(!is_prime(1_000_000_008));
    }

    #[test]
    fn modular_arithmetic() {
        assert_eq!(pow_mod(2, 10, 1000), 24);
        assert_eq!(mul_mod(u128::MAX >> 8, 3, 1_000_000_007), {
            // cross-check with direct computation via remainder rules
            let a = (u128::MAX >> 8) % 1_000_000_007;
            (a * 3) % 1_000_000_007
        });
        assert_eq!(mod_inverse(3, 7), Some(5));
        assert_eq!(mod_inverse(2, 4), None);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keys();
        for data in [
            b"".as_slice(),
            b"k".as_slice(),
            b"a 16-byte aes key".as_slice(),
            &[0u8; 64],
            &(0..255u8).collect::<Vec<_>>(),
        ] {
            let ct = encrypt(&kp.public, data);
            assert_eq!(decrypt(&kp.private, &ct).unwrap(), data);
        }
    }

    #[test]
    fn decrypt_with_wrong_key_fails_or_garbles() {
        let kp1 = keys();
        let kp2 = generate_key_pair(&mut SecureRandom::from_seed(7), 62).unwrap();
        let ct = encrypt(&kp1.public, b"secret");
        if let Ok(pt) = decrypt(&kp2.private, &ct) {
            assert_ne!(pt, b"secret")
        }
    }

    #[test]
    fn sign_verify() {
        let kp = keys();
        let sig = sign(&kp.private, b"the message");
        assert!(verify(&kp.public, b"the message", &sig));
        assert!(!verify(&kp.public, b"another message", &sig));
        let mut tampered = sig.clone();
        tampered[3] ^= 1;
        assert!(!verify(&kp.public, b"the message", &tampered));
    }

    #[test]
    fn keygen_rejects_bad_sizes() {
        let mut rng = SecureRandom::new();
        assert!(generate_key_pair(&mut rng, 8).is_err());
        assert!(generate_key_pair(&mut rng, 63).is_err());
    }

    #[test]
    fn bad_ciphertext_is_rejected() {
        let kp = keys();
        assert!(decrypt(&kp.private, &[]).is_err());
        assert!(decrypt(&kp.private, &[5, 1, 2, 3]).is_err()); // bad chunking
    }

    #[test]
    fn distinct_keys_from_distinct_seeds() {
        let a = generate_key_pair(&mut SecureRandom::from_seed(1), 40).unwrap();
        let b = generate_key_pair(&mut SecureRandom::from_seed(2), 40).unwrap();
        assert_ne!(a.public.n, b.public.n);
    }
}
