//! Error type for the simulated provider.

use std::error::Error;
use std::fmt;

/// An error raised by the simulated JCA provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// `getInstance` received an algorithm/transformation string the
    /// provider does not implement (Java's `NoSuchAlgorithmException`).
    NoSuchAlgorithm(String),
    /// A key had the wrong length or type for the requested operation
    /// (Java's `InvalidKeyException`).
    InvalidKey(String),
    /// Ciphertext failed padding or tag verification
    /// (Java's `BadPaddingException` / `AEADBadTagException`).
    BadCiphertext(String),
    /// A parameter was out of range (`InvalidAlgorithmParameterException`).
    InvalidParameter(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::NoSuchAlgorithm(a) => write!(f, "no such algorithm: {a}"),
            CryptoError::InvalidKey(m) => write!(f, "invalid key: {m}"),
            CryptoError::BadCiphertext(m) => write!(f, "bad ciphertext: {m}"),
            CryptoError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl Error for CryptoError {}
