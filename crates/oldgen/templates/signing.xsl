<?xml version="1.0"?>
<!-- XSL template for "Digital Signing of Strings" (old-generator artefact). -->
<xsl:stylesheet>
<xsl:template name="imports">package de.crypto.cognicrypt;

import java.security.KeyPair;
import java.security.KeyPairGenerator;
import java.security.PrivateKey;
import java.security.PublicKey;
import java.security.Signature;
import java.security.NoSuchAlgorithmException;
import java.security.InvalidKeyException;
import java.security.SignatureException;

public class SecureSigner {
</xsl:template>
<xsl:template name="keyPair">
    public KeyPair generateKeyPair() throws NoSuchAlgorithmException {
        KeyPairGenerator keyPairGenerator = KeyPairGenerator.getInstance("RSA");
        keyPairGenerator.initialize(<xsl:value-of select="rsaKeySize"/>);
        return keyPairGenerator.generateKeyPair();
    }
</xsl:template>
<xsl:template name="sign">
    public byte[] sign(String data, PrivateKey privateKey)
            throws NoSuchAlgorithmException, InvalidKeyException, SignatureException {
        Signature signature = Signature.getInstance("<xsl:value-of select="signatureAlgorithm"/>");
        signature.initSign(privateKey);
        signature.update(data.getBytes());
        return signature.sign();
    }
</xsl:template>
<xsl:template name="verify">
    public boolean verify(String data, byte[] sig, PublicKey publicKey)
            throws NoSuchAlgorithmException, InvalidKeyException, SignatureException {
        Signature signature = Signature.getInstance("<xsl:value-of select="signatureAlgorithm"/>");
        signature.initVerify(publicKey);
        signature.update(data.getBytes());
        return signature.verify(sig);
    }
</xsl:template>
<xsl:template name="usage">
    public static void templateUsage(String data) throws Exception {
        SecureSigner signer = new SecureSigner();
        KeyPair keyPair = signer.generateKeyPair();
        byte[] sig = signer.sign(data, keyPair.getPrivate());
        boolean ok = signer.verify(data, sig, keyPair.getPublic());
    }
}
</xsl:template>
</xsl:stylesheet>
