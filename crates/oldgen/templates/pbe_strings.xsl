<?xml version="1.0"?>
<!-- XSL template for "PBE on Strings" (old-generator artefact). -->
<xsl:stylesheet>
<xsl:template name="imports">package de.crypto.cognicrypt;

import java.security.SecureRandom;
import java.security.NoSuchAlgorithmException;
import java.security.InvalidKeyException;
import java.security.InvalidAlgorithmParameterException;
import java.security.spec.InvalidKeySpecException;
import javax.crypto.Cipher;
import javax.crypto.SecretKey;
import javax.crypto.SecretKeyFactory;
import javax.crypto.BadPaddingException;
import javax.crypto.IllegalBlockSizeException;
import javax.crypto.NoSuchPaddingException;
import javax.crypto.spec.IvParameterSpec;
import javax.crypto.spec.PBEKeySpec;
import javax.crypto.spec.SecretKeySpec;

public class SecureStringEncryptor {
</xsl:template>
<xsl:template name="getKey">
    public SecretKey getKey(char[] pwd)
            throws NoSuchAlgorithmException, InvalidKeySpecException {
        byte[] salt = new byte[<xsl:value-of select="saltLength"/>];
        SecureRandom secureRandom = SecureRandom.getInstance("<xsl:value-of select="prng"/>");
        secureRandom.nextBytes(salt);
        PBEKeySpec pbeKeySpec = new PBEKeySpec(pwd, salt,
                <xsl:value-of select="iterations"/>, <xsl:value-of select="keySize"/>);
        SecretKeyFactory secretKeyFactory =
                SecretKeyFactory.getInstance("<xsl:value-of select="kdfAlgorithm"/>");
        SecretKey secretKey = secretKeyFactory.generateSecret(pbeKeySpec);
        byte[] keyMaterial = secretKey.getEncoded();
        SecretKeySpec encryptionKey =
                new SecretKeySpec(keyMaterial, "<xsl:value-of select="keyAlgorithm"/>");
        pbeKeySpec.clearPassword();
        return encryptionKey;
    }
</xsl:template>
<xsl:template name="encrypt">
    public byte[] encrypt(String data, SecretKey key)
            throws NoSuchAlgorithmException, NoSuchPaddingException,
            InvalidKeyException, InvalidAlgorithmParameterException,
            IllegalBlockSizeException, BadPaddingException {
        byte[] plainText = data.getBytes();
        byte[] ivBytes = new byte[<xsl:value-of select="ivLength"/>];
        SecureRandom secureRandom = SecureRandom.getInstance("<xsl:value-of select="prng"/>");
        secureRandom.nextBytes(ivBytes);
        IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("<xsl:value-of select="cipherTransformation"/>");
        cipher.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        byte[] cipherText = cipher.doFinal(plainText);
        byte[] framed = new byte[ivBytes.length + cipherText.length];
        System.arraycopy(ivBytes, 0, framed, 0, ivBytes.length);
        System.arraycopy(cipherText, 0, framed, ivBytes.length, cipherText.length);
        return framed;
    }
</xsl:template>
<xsl:template name="decrypt">
    public String decrypt(byte[] data, SecretKey key)
            throws NoSuchAlgorithmException, NoSuchPaddingException,
            InvalidKeyException, InvalidAlgorithmParameterException,
            IllegalBlockSizeException, BadPaddingException {
        byte[] ivBytes = new byte[<xsl:value-of select="ivLength"/>];
        System.arraycopy(data, 0, ivBytes, 0, ivBytes.length);
        byte[] encrypted = new byte[data.length - ivBytes.length];
        System.arraycopy(data, ivBytes.length, encrypted, 0, encrypted.length);
        IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("<xsl:value-of select="cipherTransformation"/>");
        cipher.init(Cipher.DECRYPT_MODE, key, ivSpec);
        byte[] decrypted = cipher.doFinal(encrypted);
        return new String(decrypted);
    }
</xsl:template>
<xsl:template name="usage">
    public static void templateUsage(char[] pwd, String data) throws Exception {
        SecureStringEncryptor enc = new SecureStringEncryptor();
        SecretKey key = enc.getKey(pwd);
        byte[] cipherText = enc.encrypt(data, key);
        String roundTrip = enc.decrypt(cipherText, key);
    }
}
</xsl:template>
</xsl:stylesheet>
