<?xml version="1.0"?>
<!-- XSL template for "Hybrid Byte-Array Encryption" (old-generator artefact). -->
<xsl:stylesheet>
<xsl:template name="imports">package de.crypto.cognicrypt;

import java.security.SecureRandom;
import java.security.KeyPair;
import java.security.KeyPairGenerator;
import java.security.PrivateKey;
import java.security.PublicKey;
import java.security.NoSuchAlgorithmException;
import java.security.InvalidKeyException;
import java.security.InvalidAlgorithmParameterException;
import javax.crypto.Cipher;
import javax.crypto.KeyGenerator;
import javax.crypto.SecretKey;
import javax.crypto.BadPaddingException;
import javax.crypto.IllegalBlockSizeException;
import javax.crypto.NoSuchPaddingException;
import javax.crypto.spec.IvParameterSpec;

public class HybridByteArrayEncryptor {
</xsl:template>
<xsl:template name="keyPair">
    public KeyPair generateKeyPair() throws NoSuchAlgorithmException {
        KeyPairGenerator keyPairGenerator = KeyPairGenerator.getInstance("RSA");
        keyPairGenerator.initialize(<xsl:value-of select="rsaKeySize"/>);
        return keyPairGenerator.generateKeyPair();
    }
</xsl:template>
<xsl:template name="sessionKey">
    public SecretKey generateSessionKey() throws NoSuchAlgorithmException {
        KeyGenerator keyGenerator =
                KeyGenerator.getInstance("<xsl:value-of select="sessionKeyAlgorithm"/>");
        keyGenerator.init(<xsl:value-of select="sessionKeySize"/>);
        return keyGenerator.generateKey();
    }
</xsl:template>
<xsl:template name="wrap">
    public byte[] wrapSessionKey(SecretKey sessionKey, PublicKey publicKey)
            throws NoSuchAlgorithmException, NoSuchPaddingException,
            InvalidKeyException, IllegalBlockSizeException {
        Cipher cipher = Cipher.getInstance("<xsl:value-of select="wrapTransformation"/>");
        cipher.init(Cipher.WRAP_MODE, publicKey);
        return cipher.wrap(sessionKey);
    }

    public SecretKey unwrapSessionKey(byte[] wrapped, PrivateKey privateKey)
            throws NoSuchAlgorithmException, NoSuchPaddingException,
            InvalidKeyException {
        Cipher cipher = Cipher.getInstance("<xsl:value-of select="wrapTransformation"/>");
        cipher.init(Cipher.UNWRAP_MODE, privateKey);
        return (SecretKey) cipher.unwrap(wrapped,
                "<xsl:value-of select="sessionKeyAlgorithm"/>", Cipher.SECRET_KEY);
    }
</xsl:template>
<xsl:template name="encrypt">
    public byte[] encryptData(byte[] plainData, SecretKey key)
            throws NoSuchAlgorithmException, NoSuchPaddingException,
            InvalidKeyException, InvalidAlgorithmParameterException,
            IllegalBlockSizeException, BadPaddingException {
        byte[] plainText = plainData;
        byte[] ivBytes = new byte[<xsl:value-of select="ivLength"/>];
        SecureRandom secureRandom = SecureRandom.getInstance("<xsl:value-of select="prng"/>");
        secureRandom.nextBytes(ivBytes);
        IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("<xsl:value-of select="dataTransformation"/>");
        cipher.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        byte[] cipherText = cipher.doFinal(plainText);
        byte[] framed = new byte[ivBytes.length + cipherText.length];
        System.arraycopy(ivBytes, 0, framed, 0, ivBytes.length);
        System.arraycopy(cipherText, 0, framed, ivBytes.length, cipherText.length);
        return framed;
    }
</xsl:template>
<xsl:template name="decrypt">
    public byte[] decryptData(byte[] data, SecretKey key)
            throws NoSuchAlgorithmException, NoSuchPaddingException,
            InvalidKeyException, InvalidAlgorithmParameterException,
            IllegalBlockSizeException, BadPaddingException {
        byte[] ivBytes = new byte[<xsl:value-of select="ivLength"/>];
        System.arraycopy(data, 0, ivBytes, 0, ivBytes.length);
        byte[] encrypted = new byte[data.length - ivBytes.length];
        System.arraycopy(data, ivBytes.length, encrypted, 0, encrypted.length);
        IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("<xsl:value-of select="dataTransformation"/>");
        cipher.init(Cipher.DECRYPT_MODE, key, ivSpec);
        byte[] decrypted = cipher.doFinal(encrypted);
        return decrypted;
    }
</xsl:template>
<xsl:template name="usage">
    public static void templateUsage(byte[] data) throws Exception {
        HybridByteArrayEncryptor enc = new HybridByteArrayEncryptor();
        KeyPair keyPair = enc.generateKeyPair();
        SecretKey sessionKey = enc.generateSessionKey();
        byte[] cipherText = enc.encryptData(data, sessionKey);
        byte[] wrapped = enc.wrapSessionKey(sessionKey, keyPair.getPublic());
        SecretKey recovered = enc.unwrapSessionKey(wrapped, keyPair.getPrivate());
        byte[] roundTrip = enc.decryptData(cipherText, recovered);
    }
}
</xsl:template>
</xsl:stylesheet>
