<?xml version="1.0"?>
<!-- XSL template for "Secure User-Password Storage" (old-generator artefact). -->
<xsl:stylesheet>
<xsl:template name="imports">package de.crypto.cognicrypt;

import java.security.SecureRandom;
import java.security.NoSuchAlgorithmException;
import java.security.spec.InvalidKeySpecException;
import java.util.Arrays;
import javax.crypto.SecretKey;
import javax.crypto.SecretKeyFactory;
import javax.crypto.spec.PBEKeySpec;

public class SecurePasswordStore {
</xsl:template>
<xsl:template name="createSalt">
    public byte[] createSalt() throws NoSuchAlgorithmException {
        byte[] salt = new byte[<xsl:value-of select="saltLength"/>];
        SecureRandom secureRandom = SecureRandom.getInstance("<xsl:value-of select="prng"/>");
        secureRandom.nextBytes(salt);
        return salt;
    }
</xsl:template>
<xsl:template name="hash">
    public byte[] hashPassword(char[] pwd, byte[] salt)
            throws NoSuchAlgorithmException, InvalidKeySpecException {
        PBEKeySpec pbeKeySpec = new PBEKeySpec(pwd, salt,
                <xsl:value-of select="iterations"/>, <xsl:value-of select="hashSize"/>);
        SecretKeyFactory secretKeyFactory =
                SecretKeyFactory.getInstance("<xsl:value-of select="kdfAlgorithm"/>");
        SecretKey secretKey = secretKeyFactory.generateSecret(pbeKeySpec);
        byte[] hash = secretKey.getEncoded();
        pbeKeySpec.clearPassword();
        return hash;
    }
</xsl:template>
<xsl:template name="verify">
    public boolean verifyPassword(char[] pwd, byte[] salt, byte[] expectedHash)
            throws NoSuchAlgorithmException, InvalidKeySpecException {
        byte[] hash = hashPassword(pwd, salt);
        return Arrays.equals(hash, expectedHash);
    }
</xsl:template>
<xsl:template name="usage">
    public static void templateUsage(char[] pwd) throws Exception {
        SecurePasswordStore store = new SecurePasswordStore();
        byte[] salt = store.createSalt();
        byte[] hash = store.hashPassword(pwd, salt);
        boolean ok = store.verifyPassword(pwd, salt, hash);
    }
}
</xsl:template>
</xsl:stylesheet>
