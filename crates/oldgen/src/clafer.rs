//! A miniature variability-modelling language in the spirit of Clafer,
//! with a backtracking solver.
//!
//! A model declares attributes with finite domains and implication
//! constraints between them:
//!
//! ```text
//! feature pbe {
//!     attr kdfAlgorithm in { "PBKDF2WithHmacSHA256", "PBEWithHmacSHA512AndAES_128" };
//!     attr iterations in { 10000, 50000 };
//!     attr keySize in { 128, 256 };
//!     constraint keySize == 256 => iterations == 50000;
//! }
//! ```
//!
//! [`Model::solve`] returns the lexicographically-first assignment
//! satisfying every constraint; the old generator feeds it into its XSL
//! templates. User pins (wizard answers) can fix attributes up front.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An attribute value: string or integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// A string option (algorithm names).
    Str(String),
    /// An integer option (key sizes, iteration counts).
    Int(i64),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(i) => write!(f, "{i}"),
        }
    }
}

/// `lhs op rhs` where each side is an attribute or literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Attribute name or literal on the left.
    pub left: Operand,
    /// `true` = equality, `false` = inequality.
    pub equals: bool,
    /// Attribute name or literal on the right.
    pub right: Operand,
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Attribute reference.
    Attr(String),
    /// Literal value.
    Lit(AttrValue),
}

/// A constraint: either a bare comparison or an implication between two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelConstraint {
    /// The comparison must hold.
    Holds(Comparison),
    /// If the antecedent holds, the consequent must too.
    Implies(Comparison, Comparison),
}

/// A parsed feature model.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// Feature name (diagnostics only).
    pub name: String,
    /// Attribute domains, in declaration order.
    pub attributes: Vec<(String, Vec<AttrValue>)>,
    /// Constraints.
    pub constraints: Vec<ModelConstraint>,
}

/// Parse/solve errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaferError {
    /// Syntax error with a description.
    Parse(String),
    /// No assignment satisfies the constraints (and pins).
    Unsatisfiable,
    /// A pinned attribute does not exist or the value is outside its
    /// domain.
    BadPin(String),
}

impl fmt::Display for ClaferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaferError::Parse(m) => write!(f, "clafer parse error: {m}"),
            ClaferError::Unsatisfiable => f.write_str("model is unsatisfiable"),
            ClaferError::BadPin(m) => write!(f, "bad pin: {m}"),
        }
    }
}

impl Error for ClaferError {}

impl Model {
    /// Parses a model from source text.
    ///
    /// # Errors
    ///
    /// [`ClaferError::Parse`] describing the first syntax problem.
    pub fn parse(source: &str) -> Result<Model, ClaferError> {
        let mut model = Model::default();
        let mut lines = source
            .lines()
            .map(|l| l.split("//").next().unwrap_or("").trim())
            .filter(|l| !l.is_empty());
        let header = lines
            .next()
            .ok_or_else(|| ClaferError::Parse("empty model".into()))?;
        let name = header
            .strip_prefix("feature ")
            .and_then(|r| r.strip_suffix('{'))
            .ok_or_else(|| ClaferError::Parse("expected `feature <name> {`".into()))?;
        model.name = name.trim().to_owned();
        for line in lines {
            if line == "}" {
                return Ok(model);
            }
            if let Some(rest) = line.strip_prefix("attr ") {
                let rest = rest
                    .strip_suffix(';')
                    .ok_or_else(|| ClaferError::Parse(format!("missing `;`: {line}")))?;
                let (attr, domain) = rest
                    .split_once(" in ")
                    .ok_or_else(|| ClaferError::Parse(format!("expected `in`: {line}")))?;
                let domain = domain
                    .trim()
                    .strip_prefix('{')
                    .and_then(|d| d.strip_suffix('}'))
                    .ok_or_else(|| ClaferError::Parse(format!("expected `{{…}}`: {line}")))?;
                let values: Result<Vec<AttrValue>, ClaferError> =
                    domain.split(',').map(|v| parse_value(v.trim())).collect();
                model.attributes.push((attr.trim().to_owned(), values?));
            } else if let Some(rest) = line.strip_prefix("constraint ") {
                let rest = rest
                    .strip_suffix(';')
                    .ok_or_else(|| ClaferError::Parse(format!("missing `;`: {line}")))?;
                model.constraints.push(parse_constraint(rest)?);
            } else {
                return Err(ClaferError::Parse(format!("unexpected line: {line}")));
            }
        }
        Err(ClaferError::Parse("missing closing `}`".into()))
    }

    /// Solves the model: first satisfying assignment in domain order,
    /// honouring `pins` (attribute → forced value).
    ///
    /// # Errors
    ///
    /// [`ClaferError::BadPin`] for unknown attributes or out-of-domain pin
    /// values; [`ClaferError::Unsatisfiable`] when no assignment works.
    pub fn solve(
        &self,
        pins: &BTreeMap<String, AttrValue>,
    ) -> Result<BTreeMap<String, AttrValue>, ClaferError> {
        for (k, v) in pins {
            let Some((_, domain)) = self.attributes.iter().find(|(n, _)| n == k) else {
                return Err(ClaferError::BadPin(format!("unknown attribute `{k}`")));
            };
            if !domain.contains(v) {
                return Err(ClaferError::BadPin(format!("`{v}` not in domain of `{k}`")));
            }
        }
        let mut assignment = BTreeMap::new();
        if self.backtrack(0, pins, &mut assignment) {
            Ok(assignment)
        } else {
            Err(ClaferError::Unsatisfiable)
        }
    }

    fn backtrack(
        &self,
        idx: usize,
        pins: &BTreeMap<String, AttrValue>,
        assignment: &mut BTreeMap<String, AttrValue>,
    ) -> bool {
        if idx == self.attributes.len() {
            return self.consistent(assignment, true);
        }
        let (name, domain) = &self.attributes[idx];
        let candidates: Vec<&AttrValue> = match pins.get(name) {
            Some(v) => vec![v],
            None => domain.iter().collect(),
        };
        for v in candidates {
            assignment.insert(name.clone(), v.clone());
            if self.consistent(assignment, false) && self.backtrack(idx + 1, pins, assignment) {
                return true;
            }
        }
        assignment.remove(name);
        false
    }

    /// Checks constraints; unassigned attributes make a constraint
    /// undecided (treated as satisfied unless `complete`).
    fn consistent(&self, assignment: &BTreeMap<String, AttrValue>, complete: bool) -> bool {
        self.constraints.iter().all(|c| {
            let verdict = match c {
                ModelConstraint::Holds(cmp) => eval_cmp(cmp, assignment),
                ModelConstraint::Implies(a, b) => match eval_cmp(a, assignment) {
                    Some(false) => Some(true),
                    Some(true) => eval_cmp(b, assignment),
                    None => None,
                },
            };
            match verdict {
                Some(ok) => ok,
                None => !complete,
            }
        })
    }
}

fn eval_cmp(c: &Comparison, assignment: &BTreeMap<String, AttrValue>) -> Option<bool> {
    let value = |o: &Operand| -> Option<AttrValue> {
        match o {
            Operand::Lit(v) => Some(v.clone()),
            Operand::Attr(a) => assignment.get(a).cloned(),
        }
    };
    let l = value(&c.left)?;
    let r = value(&c.right)?;
    Some(if c.equals { l == r } else { l != r })
}

fn parse_value(s: &str) -> Result<AttrValue, ClaferError> {
    if let Some(stripped) = s.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| ClaferError::Parse(format!("unterminated string: {s}")))?;
        Ok(AttrValue::Str(inner.to_owned()))
    } else {
        s.parse::<i64>()
            .map(AttrValue::Int)
            .map_err(|_| ClaferError::Parse(format!("bad value: {s}")))
    }
}

fn parse_operand(s: &str) -> Result<Operand, ClaferError> {
    let s = s.trim();
    if s.starts_with('"') || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        Ok(Operand::Lit(parse_value(s)?))
    } else {
        Ok(Operand::Attr(s.to_owned()))
    }
}

fn parse_comparison(s: &str) -> Result<Comparison, ClaferError> {
    let (left, equals, right) = if let Some((l, r)) = s.split_once("==") {
        (l, true, r)
    } else if let Some((l, r)) = s.split_once("!=") {
        (l, false, r)
    } else {
        return Err(ClaferError::Parse(format!("expected `==`/`!=`: {s}")));
    };
    Ok(Comparison {
        left: parse_operand(left)?,
        equals,
        right: parse_operand(right)?,
    })
}

fn parse_constraint(s: &str) -> Result<ModelConstraint, ClaferError> {
    if let Some((a, b)) = s.split_once("=>") {
        Ok(ModelConstraint::Implies(
            parse_comparison(a.trim())?,
            parse_comparison(b.trim())?,
        ))
    } else {
        Ok(ModelConstraint::Holds(parse_comparison(s.trim())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = r#"
        feature pbe {
            attr kdf in { "PBKDF2WithHmacSHA256", "PBEWithHmacSHA512AndAES_128" };
            attr iterations in { 10000, 50000 };
            attr keySize in { 128, 256 };
            constraint keySize == 256 => iterations == 50000;
        }
    "#;

    #[test]
    fn parses_and_solves_first_assignment() {
        let m = Model::parse(MODEL).unwrap();
        assert_eq!(m.name, "pbe");
        assert_eq!(m.attributes.len(), 3);
        let sol = m.solve(&BTreeMap::new()).unwrap();
        assert_eq!(sol["kdf"], AttrValue::Str("PBKDF2WithHmacSHA256".into()));
        assert_eq!(sol["iterations"], AttrValue::Int(10000));
        assert_eq!(sol["keySize"], AttrValue::Int(128));
    }

    #[test]
    fn pins_steer_the_solution_through_constraints() {
        let m = Model::parse(MODEL).unwrap();
        let pins = BTreeMap::from([("keySize".to_owned(), AttrValue::Int(256))]);
        let sol = m.solve(&pins).unwrap();
        // The implication forces the higher iteration count.
        assert_eq!(sol["iterations"], AttrValue::Int(50000));
    }

    #[test]
    fn bad_pins_are_rejected() {
        let m = Model::parse(MODEL).unwrap();
        assert!(matches!(
            m.solve(&BTreeMap::from([(
                "keySize".to_owned(),
                AttrValue::Int(512)
            )])),
            Err(ClaferError::BadPin(_))
        ));
        assert!(matches!(
            m.solve(&BTreeMap::from([("nope".to_owned(), AttrValue::Int(1))])),
            Err(ClaferError::BadPin(_))
        ));
    }

    #[test]
    fn unsatisfiable_model_is_detected() {
        let src = r#"
            feature broken {
                attr a in { 1, 2 };
                constraint a == 3;
            }
        "#;
        let m = Model::parse(src).unwrap();
        assert_eq!(m.solve(&BTreeMap::new()), Err(ClaferError::Unsatisfiable));
    }

    #[test]
    fn parse_errors() {
        assert!(Model::parse("").is_err());
        assert!(Model::parse("feature x {").is_err()); // no closing brace
        assert!(Model::parse("feature x {\n attr a in { 1 }\n}").is_err()); // missing ;
        assert!(Model::parse("feature x {\n bogus;\n}").is_err());
    }
}
