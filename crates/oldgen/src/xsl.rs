//! A miniature XSL transformation engine over the [`crate::xml`] model.
//!
//! Supported instructions (enough for the old generator's templates):
//!
//! * `<xsl:value-of select="attr"/>` — substitute a configuration value,
//! * `<xsl:if test="attr == 'lit'">…</xsl:if>` (also `!=`),
//! * `<xsl:choose><xsl:when test="…">…</xsl:when><xsl:otherwise>…</xsl:otherwise></xsl:choose>`,
//! * `<xsl:template name="…">` — the transformation root,
//! * everything else is copied to the output verbatim (text content).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::clafer::AttrValue;
use crate::xml::{Element, Node};

/// An XSL evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XslError {
    /// Description.
    pub message: String,
}

impl XslError {
    fn new(message: impl Into<String>) -> Self {
        XslError {
            message: message.into(),
        }
    }
}

impl fmt::Display for XslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xsl error: {}", self.message)
    }
}

impl Error for XslError {}

/// Applies the template rooted at `root` (an `xsl:stylesheet` or
/// `xsl:template`) to the configuration, producing text output.
///
/// # Errors
///
/// [`XslError`] for unknown instructions, unknown attributes in `select`,
/// or malformed `test` expressions.
pub fn apply(root: &Element, config: &BTreeMap<String, AttrValue>) -> Result<String, XslError> {
    let mut out = String::new();
    if root.name == "xsl:stylesheet" {
        for child in &root.children {
            if let Node::Element(e) = child {
                if e.name == "xsl:template" {
                    eval_children(e, config, &mut out)?;
                }
            }
        }
    } else {
        eval_children(root, config, &mut out)?;
    }
    Ok(out)
}

fn eval_children(
    e: &Element,
    config: &BTreeMap<String, AttrValue>,
    out: &mut String,
) -> Result<(), XslError> {
    for child in &e.children {
        eval_node(child, config, out)?;
    }
    Ok(())
}

fn eval_node(
    node: &Node,
    config: &BTreeMap<String, AttrValue>,
    out: &mut String,
) -> Result<(), XslError> {
    match node {
        Node::Text(t) => {
            out.push_str(t);
            Ok(())
        }
        Node::Element(e) => match e.name.as_str() {
            "xsl:value-of" => {
                let select = e
                    .attr("select")
                    .ok_or_else(|| XslError::new("value-of without select"))?;
                let value = config
                    .get(select)
                    .ok_or_else(|| XslError::new(format!("unknown attribute `{select}`")))?;
                out.push_str(&value.to_string());
                Ok(())
            }
            "xsl:if" => {
                let test = e
                    .attr("test")
                    .ok_or_else(|| XslError::new("if without test"))?;
                if eval_test(test, config)? {
                    eval_children(e, config, out)?;
                }
                Ok(())
            }
            "xsl:choose" => {
                for branch in &e.children {
                    if let Node::Element(b) = branch {
                        match b.name.as_str() {
                            "xsl:when" => {
                                let test = b
                                    .attr("test")
                                    .ok_or_else(|| XslError::new("when without test"))?;
                                if eval_test(test, config)? {
                                    eval_children(b, config, out)?;
                                    return Ok(());
                                }
                            }
                            "xsl:otherwise" => {
                                eval_children(b, config, out)?;
                                return Ok(());
                            }
                            other => {
                                return Err(XslError::new(format!(
                                    "unexpected `{other}` inside choose"
                                )))
                            }
                        }
                    }
                }
                Ok(())
            }
            other => Err(XslError::new(format!("unknown instruction `{other}`"))),
        },
    }
}

/// Evaluates `attr == 'lit'` / `attr != 'lit'` / `attr == 123`.
fn eval_test(test: &str, config: &BTreeMap<String, AttrValue>) -> Result<bool, XslError> {
    let (lhs, equals, rhs) = if let Some((l, r)) = test.split_once("==") {
        (l, true, r)
    } else if let Some((l, r)) = test.split_once("!=") {
        (l, false, r)
    } else {
        return Err(XslError::new(format!("bad test `{test}`")));
    };
    let attr = lhs.trim();
    let value = config
        .get(attr)
        .ok_or_else(|| XslError::new(format!("unknown attribute `{attr}`")))?;
    let rhs = rhs.trim();
    let expected = if let Some(stripped) = rhs.strip_prefix('\'') {
        AttrValue::Str(
            stripped
                .strip_suffix('\'')
                .ok_or_else(|| XslError::new(format!("unterminated literal in `{test}`")))?
                .to_owned(),
        )
    } else {
        AttrValue::Int(
            rhs.parse::<i64>()
                .map_err(|_| XslError::new(format!("bad literal in `{test}`")))?,
        )
    };
    let same = *value == expected;
    Ok(if equals { same } else { !same })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::parse;

    fn config() -> BTreeMap<String, AttrValue> {
        BTreeMap::from([
            ("alg".to_owned(), AttrValue::Str("AES".into())),
            ("keySize".to_owned(), AttrValue::Int(128)),
        ])
    }

    #[test]
    fn value_of_substitutes() {
        let t = parse(r#"<xsl:template name="t">key = <xsl:value-of select="alg"/>-<xsl:value-of select="keySize"/>;</xsl:template>"#).unwrap();
        assert_eq!(apply(&t, &config()).unwrap(), "key = AES-128;");
    }

    #[test]
    fn if_filters_output() {
        let t = parse(
            r#"<xsl:template name="t"><xsl:if test="keySize == 128">small</xsl:if><xsl:if test="keySize == 256">big</xsl:if></xsl:template>"#,
        )
        .unwrap();
        assert_eq!(apply(&t, &config()).unwrap(), "small");
    }

    #[test]
    fn choose_picks_first_matching_when() {
        let t = parse(
            r#"<xsl:template name="t"><xsl:choose><xsl:when test="alg == 'DES'">weak</xsl:when><xsl:when test="alg == 'AES'">strong</xsl:when><xsl:otherwise>other</xsl:otherwise></xsl:choose></xsl:template>"#,
        )
        .unwrap();
        assert_eq!(apply(&t, &config()).unwrap(), "strong");
    }

    #[test]
    fn otherwise_fires_when_nothing_matches() {
        let t = parse(
            r#"<xsl:template name="t"><xsl:choose><xsl:when test="alg == 'DES'">weak</xsl:when><xsl:otherwise>fallback</xsl:otherwise></xsl:choose></xsl:template>"#,
        )
        .unwrap();
        assert_eq!(apply(&t, &config()).unwrap(), "fallback");
    }

    #[test]
    fn stylesheet_concatenates_templates() {
        let t = parse(
            r#"<xsl:stylesheet><xsl:template name="a">A</xsl:template><xsl:template name="b">B</xsl:template></xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(apply(&t, &config()).unwrap(), "AB");
    }

    #[test]
    fn errors_for_unknown_select_and_bad_tests() {
        let t = parse(r#"<xsl:template name="t"><xsl:value-of select="nope"/></xsl:template>"#)
            .unwrap();
        assert!(apply(&t, &config()).is_err());
        let t2 =
            parse(r#"<xsl:template name="t"><xsl:if test="garbage">x</xsl:if></xsl:template>"#)
                .unwrap();
        assert!(apply(&t2, &config()).is_err());
        let t3 = parse(r#"<xsl:template name="t"><bogus/></xsl:template>"#).unwrap();
        assert!(apply(&t3, &config()).is_err());
    }
}
