//! A miniature XML parser, sufficient for the XSL-like templates.
//!
//! Supports elements, attributes (double-quoted), text nodes, comments and
//! self-closing tags. No entities beyond `&lt; &gt; &amp; &quot;`.

use std::error::Error;
use std::fmt;

/// An XML node: element or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with name, attributes and children.
    Element(Element),
    /// A text node (whitespace preserved).
    Text(String),
}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name, including any prefix (`xsl:value-of`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes.
    pub children: Vec<Node>,
}

impl Element {
    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// XML parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for XmlError {}

struct Parser<'a> {
    src: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.i,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.i..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b':' || c == b'-' || c == b'_')
        {
            self.i += 1;
        }
        if start == self.i {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.i]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.i += 1;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.i += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.i += 1;
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.i += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected `=`"));
                    }
                    self.i += 1;
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected `\"`"));
                    }
                    self.i += 1;
                    let start = self.i;
                    while self.peek().is_some_and(|c| c != b'"') {
                        self.i += 1;
                    }
                    if self.peek() != Some(b'"') {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = unescape(&String::from_utf8_lossy(&self.src[start..self.i]));
                    self.i += 1;
                    attributes.push((attr_name, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        let children = self.parse_children(&name)?;
        Ok(Element {
            name,
            attributes,
            children,
        })
    }

    fn parse_children(&mut self, parent: &str) -> Result<Vec<Node>, XmlError> {
        let mut children = Vec::new();
        loop {
            if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.i = end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.i += 2;
                let name = self.parse_name()?;
                if name != parent {
                    return Err(self.err(format!("mismatched close tag `{name}` vs `{parent}`")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>`"));
                }
                self.i += 1;
                return Ok(children);
            }
            match self.peek() {
                Some(b'<') => children.push(Node::Element(self.parse_element()?)),
                Some(_) => {
                    let start = self.i;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.i += 1;
                    }
                    let text = unescape(&String::from_utf8_lossy(&self.src[start..self.i]));
                    children.push(Node::Text(text));
                }
                None => return Err(self.err(format!("missing close tag for `{parent}`"))),
            }
        }
    }

    fn find(&self, needle: &str) -> Result<usize, XmlError> {
        self.src[self.i..]
            .windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|p| self.i + p)
            .ok_or_else(|| self.err(format!("`{needle}` not found")))
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&amp;", "&")
}

/// Parses a document and returns its root element. Leading/trailing
/// whitespace, comments and an optional `<?xml …?>` declaration are
/// skipped.
///
/// # Errors
///
/// [`XmlError`] with the byte offset of the first problem.
pub fn parse(source: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        src: source.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    if p.starts_with("<?xml") {
        let end = p.find("?>")?;
        p.i = end + 2;
        p.skip_ws();
    }
    while p.starts_with("<!--") {
        let end = p.find("-->")?;
        p.i = end + 3;
        p.skip_ws();
    }
    let root = p.parse_element()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let root = parse(
            r#"<?xml version="1.0"?>
            <!-- header -->
            <a x="1" y="two">
                text <b/> more
                <c z="&quot;q&quot;">inner</c>
            </a>"#,
        )
        .unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.attr("x"), Some("1"));
        assert_eq!(root.attr("y"), Some("two"));
        // text, <b/>, text, <c>, trailing whitespace text
        assert_eq!(root.children.len(), 5);
        match &root.children[3] {
            Node::Element(c) => {
                assert_eq!(c.attr("z"), Some("\"q\""));
                assert_eq!(c.children, vec![Node::Text("inner".into())]);
            }
            other => panic!("expected element, got {other:?}"),
        }
    }

    #[test]
    fn prefixed_names() {
        let root =
            parse(r#"<xsl:template name="t"><xsl:value-of select="x"/></xsl:template>"#).unwrap();
        assert_eq!(root.name, "xsl:template");
        match &root.children[0] {
            Node::Element(e) => assert_eq!(e.name, "xsl:value-of"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn escapes_in_text() {
        let root = parse("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>").unwrap();
        assert_eq!(root.children, vec![Node::Text("1 < 2 && 3 > 2".into())]);
    }

    #[test]
    fn error_cases() {
        assert!(parse("<a>").is_err()); // unclosed
        assert!(parse("<a></b>").is_err()); // mismatch
        assert!(parse("<a x=1></a>").is_err()); // unquoted attr
        assert!(parse("<a></a><b/>").is_err()); // two roots
        assert!(parse("no tags").is_err());
    }
}
