//! The eight use cases CogniCrypt_old-gen supports (paper Table 2 rows
//! 1, 2, 3, 5, 6, 7, 9, 10), each wired to its XSL template and Clafer
//! model.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::clafer::{AttrValue, ClaferError, Model};
use crate::xml;
use crate::xsl::{self, XslError};

/// An old-generator use case: Table 2 row, name, artefact sources.
#[derive(Debug, Clone)]
pub struct OldUseCase {
    /// Row number in the paper's Table 2 (matches Table 1 numbering).
    pub id: u8,
    /// Human-readable name.
    pub name: &'static str,
    /// XSL template source.
    pub xsl_source: &'static str,
    /// Clafer model source.
    pub clafer_source: &'static str,
}

/// Errors raised by the old generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OldGenError {
    /// The Clafer model failed to parse or solve.
    Clafer(ClaferError),
    /// The XSL template failed to parse.
    Xml(String),
    /// The XSL transformation failed.
    Xsl(XslError),
}

impl fmt::Display for OldGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OldGenError::Clafer(e) => write!(f, "old-gen: {e}"),
            OldGenError::Xml(e) => write!(f, "old-gen: {e}"),
            OldGenError::Xsl(e) => write!(f, "old-gen: {e}"),
        }
    }
}

impl Error for OldGenError {}

impl From<ClaferError> for OldGenError {
    fn from(e: ClaferError) -> Self {
        OldGenError::Clafer(e)
    }
}

impl From<XslError> for OldGenError {
    fn from(e: XslError) -> Self {
        OldGenError::Xsl(e)
    }
}

const PBE_MODEL: &str = include_str!("../models/pbe.clafer");
const HYBRID_MODEL: &str = include_str!("../models/hybrid.clafer");
const PASSWORD_MODEL: &str = include_str!("../models/password.clafer");
const SIGNING_MODEL: &str = include_str!("../models/signing.clafer");

/// The eight supported use cases, in Table 2 order.
pub fn old_gen_use_cases() -> Vec<OldUseCase> {
    vec![
        OldUseCase {
            id: 1,
            name: "PBE on Files",
            xsl_source: include_str!("../templates/pbe_files.xsl"),
            clafer_source: PBE_MODEL,
        },
        OldUseCase {
            id: 2,
            name: "PBE on Strings",
            xsl_source: include_str!("../templates/pbe_strings.xsl"),
            clafer_source: PBE_MODEL,
        },
        OldUseCase {
            id: 3,
            name: "PBE on Byte-Arrays",
            xsl_source: include_str!("../templates/pbe_bytes.xsl"),
            clafer_source: PBE_MODEL,
        },
        OldUseCase {
            id: 5,
            name: "Hybrid File Encryption",
            xsl_source: include_str!("../templates/hybrid_files.xsl"),
            clafer_source: HYBRID_MODEL,
        },
        OldUseCase {
            id: 6,
            name: "Hybrid String Encryption",
            xsl_source: include_str!("../templates/hybrid_strings.xsl"),
            clafer_source: HYBRID_MODEL,
        },
        OldUseCase {
            id: 7,
            name: "Hybrid Byte-Array Encryption",
            xsl_source: include_str!("../templates/hybrid_bytes.xsl"),
            clafer_source: HYBRID_MODEL,
        },
        OldUseCase {
            id: 9,
            name: "Secure User-Password Storage",
            xsl_source: include_str!("../templates/password.xsl"),
            clafer_source: PASSWORD_MODEL,
        },
        OldUseCase {
            id: 10,
            name: "Digital Signing of Strings",
            xsl_source: include_str!("../templates/signing.xsl"),
            clafer_source: SIGNING_MODEL,
        },
    ]
}

/// Runs the full old-generator pipeline for one use case: solve the
/// variability model (honouring wizard `pins`), then apply the XSL
/// template. Returns the generated Java source text.
///
/// Note what is *missing* compared to CogniCryptGEN: no type check, no
/// rule-compliance guarantee — the template text is trusted as-is, which
/// is exactly the maintenance hazard the paper describes (§6.2).
///
/// # Errors
///
/// [`OldGenError`] wrapping the Clafer/XML/XSL failure.
pub fn generate_use_case(
    uc: &OldUseCase,
    pins: &BTreeMap<String, AttrValue>,
) -> Result<String, OldGenError> {
    let model = Model::parse(uc.clafer_source)?;
    let config = model.solve(pins)?;
    let template = xml::parse(uc.xsl_source).map_err(|e| OldGenError::Xml(e.to_string()))?;
    Ok(xsl::apply(&template, &config)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_use_cases_generate() {
        for uc in old_gen_use_cases() {
            let out = generate_use_case(&uc, &BTreeMap::new())
                .unwrap_or_else(|e| panic!("use case {}: {e}", uc.id));
            assert!(out.contains("public class"), "use case {}", uc.id);
            assert!(!out.contains("xsl:"), "unexpanded instruction in {}", uc.id);
            assert!(!out.contains("<"), "leftover markup in {}", uc.id);
        }
    }

    #[test]
    fn pbe_template_substitutes_solved_configuration() {
        let uc = &old_gen_use_cases()[0];
        let out = generate_use_case(uc, &BTreeMap::new()).unwrap();
        assert!(
            out.contains("new PBEKeySpec(pwd, salt,\n                10000, 128)"),
            "{out}"
        );
        assert!(out.contains("SecretKeyFactory.getInstance(\"PBKDF2WithHmacSHA256\")"));
        assert!(out.contains("Cipher.getInstance(\"AES/CBC/PKCS5Padding\")"));
        assert!(out.contains("new byte[16]")); // CBC IV length from constraint
    }

    #[test]
    fn pins_propagate_into_generated_code() {
        let uc = &old_gen_use_cases()[0];
        let pins = BTreeMap::from([(
            "cipherTransformation".to_owned(),
            AttrValue::Str("AES/GCM/NoPadding".into()),
        )]);
        let out = generate_use_case(uc, &pins).unwrap();
        assert!(out.contains("Cipher.getInstance(\"AES/GCM/NoPadding\")"));
        // Constraint propagation: GCM forces the 12-byte nonce.
        assert!(out.contains("byte[] ivBytes = new byte[12];"), "{out}");
    }

    #[test]
    fn ids_match_table_2_rows() {
        let ids: Vec<u8> = old_gen_use_cases().iter().map(|u| u.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 5, 6, 7, 9, 10]);
    }

    #[test]
    fn artefact_sizes_are_in_the_paper_ballpark() {
        // Table 2: XSL 111–158 LoC, Clafer 43–117 LoC per use case. Our
        // artefacts are genuine re-implementations, so we assert the
        // order of magnitude, not the exact numbers.
        for uc in old_gen_use_cases() {
            let xsl_loc = uc
                .xsl_source
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count();
            let clafer_loc = uc
                .clafer_source
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count();
            assert!(xsl_loc >= 40, "use case {} XSL too small: {xsl_loc}", uc.id);
            assert!(
                clafer_loc >= 5,
                "use case {} model too small: {clafer_loc}",
                uc.id
            );
        }
    }
}
