//! CogniCrypt_old-gen — the XSL/Clafer baseline code generator.
//!
//! The paper compares CogniCryptGEN against CogniCrypt's previous
//! generator, which combines an algorithm model in the variability
//! language Clafer with hard-coded XSL code templates (RQ4, RQ5, §6.2).
//! This crate is a functional analogue:
//!
//! * [`clafer`] — a small feature/attribute model language with a
//!   backtracking constraint solver that picks secure algorithm
//!   configurations,
//! * [`xml`] + [`xsl`] — a miniature XSL transformation engine
//!   (`value-of`, `if`, `choose`) applied to code templates,
//! * [`usecases`] — the eight use cases the old generator supports, each
//!   an XSL template file plus a Clafer model file.
//!
//! Unlike CogniCryptGEN, nothing here is derived from CrySL rules: the
//! templates hard-code the API usage, which is exactly the maintenance
//! problem the paper's Table 2 quantifies.

pub mod clafer;
pub mod usecases;
pub mod xml;
pub mod xsl;

pub use clafer::{ClaferError, Model};
pub use usecases::{generate_use_case, old_gen_use_cases, OldUseCase};
pub use xsl::XslError;
