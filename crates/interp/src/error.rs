//! Interpreter error type.

use std::error::Error;
use std::fmt;

/// A runtime error raised while interpreting a program: unknown
/// class/method, dynamic type mismatch, or a crypto failure surfaced by
/// the simulated provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description of the failure.
    pub message: String,
}

impl InterpError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        InterpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl Error for InterpError {}

impl From<jcasim::CryptoError> for InterpError {
    fn from(e: jcasim::CryptoError) -> Self {
        InterpError::new(e.to_string())
    }
}
