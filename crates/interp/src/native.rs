//! Native dispatch: constructors, static calls, instance calls and static
//! fields of the modelled JCA classes.

use jcasim::provider::{KeyMaterial, Transformation};

use crate::base64;
use crate::error::InterpError;
use crate::value::{NativeState, Value};
use crate::Interpreter;

fn chars_to_utf8(chars: &[char]) -> Vec<u8> {
    chars.iter().collect::<String>().into_bytes()
}

/// `new C(args)` on a modelled class.
pub fn construct(
    _interp: &mut Interpreter<'_>,
    class: &str,
    args: Vec<Value>,
) -> Result<Value, InterpError> {
    match class {
        "javax.crypto.spec.PBEKeySpec" => {
            if args.len() != 4 {
                return Err(InterpError::new(
                    "PBEKeySpec needs (char[], byte[], int, int) — the one-argument \
                     constructor is forbidden by the rule set and not modelled",
                ));
            }
            let password = chars_to_utf8(&args[0].as_chars()?);
            let salt = args[1].as_bytes()?;
            let iterations = args[2].as_int()?;
            let key_length = args[3].as_int()?;
            Ok(Value::native(
                class,
                NativeState::PbeKeySpec {
                    password: Some(password),
                    salt,
                    iterations,
                    key_length,
                },
            ))
        }
        "javax.crypto.spec.SecretKeySpec" => {
            let bytes = args
                .first()
                .ok_or_else(|| InterpError::new("SecretKeySpec needs (byte[], String)"))?
                .as_bytes()?;
            let algorithm = args
                .get(1)
                .ok_or_else(|| InterpError::new("SecretKeySpec needs (byte[], String)"))?
                .as_str()?;
            Ok(Value::native(
                class,
                NativeState::Key(KeyMaterial::Secret { bytes, algorithm }),
            ))
        }
        "javax.crypto.spec.IvParameterSpec" => {
            let iv = args
                .first()
                .ok_or_else(|| InterpError::new("IvParameterSpec needs (byte[])"))?
                .as_bytes()?;
            Ok(Value::native(class, NativeState::IvParameterSpec(iv)))
        }
        "javax.crypto.spec.GCMParameterSpec" => {
            let tag_bits = args
                .first()
                .ok_or_else(|| InterpError::new("GCMParameterSpec needs (int, byte[])"))?
                .as_int()?;
            let iv = args
                .get(1)
                .ok_or_else(|| InterpError::new("GCMParameterSpec needs (int, byte[])"))?
                .as_bytes()?;
            Ok(Value::native(
                class,
                NativeState::GcmParameterSpec { tag_bits, iv },
            ))
        }
        "java.lang.String" => match args.first() {
            Some(Value::Bytes(b)) => Ok(Value::Str(
                String::from_utf8_lossy(&b.borrow()).into_owned(),
            )),
            Some(Value::Chars(c)) => Ok(Value::Str(c.borrow().iter().collect())),
            _ => Err(InterpError::new("String needs (byte[]) or (char[])")),
        },
        other => Err(InterpError::new(format!("cannot construct `{other}`"))),
    }
}

/// `C.m(args)` static dispatch.
pub fn invoke_static(
    interp: &mut Interpreter<'_>,
    class: &str,
    name: &str,
    args: Vec<Value>,
) -> Result<Value, InterpError> {
    match (class, name) {
        ("java.security.SecureRandom", "getInstance") => {
            let alg = args
                .first()
                .ok_or_else(|| InterpError::new("getInstance needs an algorithm"))?
                .as_str()?;
            if alg != "SHA1PRNG" {
                return Err(InterpError::new(format!("no such PRNG `{alg}`")));
            }
            let rng = interp.fresh_rng();
            Ok(Value::native(class, NativeState::SecureRandom(rng)))
        }
        ("javax.crypto.SecretKeyFactory", "getInstance") => {
            let algorithm = first_str(&args)?;
            Ok(Value::native(
                class,
                NativeState::SecretKeyFactory { algorithm },
            ))
        }
        ("javax.crypto.KeyGenerator", "getInstance") => {
            let algorithm = first_str(&args)?;
            Ok(Value::native(
                class,
                NativeState::KeyGenerator {
                    algorithm,
                    bits: 128,
                },
            ))
        }
        ("javax.crypto.Cipher", "getInstance") => {
            let transformation = Transformation::parse(&first_str(&args)?)?;
            Ok(Value::native(
                class,
                NativeState::Cipher {
                    transformation,
                    mode: None,
                    key: None,
                    iv: None,
                },
            ))
        }
        ("java.security.MessageDigest", "getInstance") => {
            let algorithm = first_str(&args)?;
            if algorithm != "SHA-256" {
                return Err(InterpError::new(format!("no such digest `{algorithm}`")));
            }
            Ok(Value::native(
                class,
                NativeState::MessageDigest {
                    algorithm,
                    buffer: Vec::new(),
                },
            ))
        }
        ("javax.crypto.Mac", "getInstance") => {
            let algorithm = first_str(&args)?;
            Ok(Value::native(
                class,
                NativeState::Mac {
                    algorithm,
                    key: None,
                },
            ))
        }
        ("java.security.Signature", "getInstance") => {
            let algorithm = first_str(&args)?;
            Ok(Value::native(
                class,
                NativeState::Signature {
                    algorithm,
                    sign_key: None,
                    verify_key: None,
                    buffer: Vec::new(),
                },
            ))
        }
        ("java.security.KeyPairGenerator", "getInstance") => {
            let algorithm = first_str(&args)?;
            Ok(Value::native(
                class,
                NativeState::KeyPairGenerator {
                    algorithm,
                    bits: 2048,
                },
            ))
        }
        ("javax.crypto.KeyAgreement", "getInstance") => {
            let algorithm = first_str(&args)?;
            if algorithm != "DH" && algorithm != "ECDH" {
                return Err(InterpError::new(format!(
                    "no such key agreement `{algorithm}`"
                )));
            }
            Ok(Value::native(
                class,
                NativeState::KeyAgreement {
                    algorithm,
                    private: None,
                    peer: None,
                },
            ))
        }
        ("javax.crypto.KDF", "getInstance") => {
            let algorithm = first_str(&args)?;
            if algorithm != "HKDF-SHA256" {
                return Err(InterpError::new(format!("no such KDF `{algorithm}`")));
            }
            Ok(Value::native(class, NativeState::Kdf { algorithm }))
        }
        ("java.nio.file.Files", "readAllBytes") => {
            let path = first_str(&args)?;
            Ok(Value::bytes(interp.read_file(&path)?))
        }
        ("java.nio.file.Files", "write") => {
            let path = first_str(&args)?;
            let data = args
                .get(1)
                .ok_or_else(|| InterpError::new("Files.write needs data"))?
                .as_bytes()?;
            interp.write_file(path, data);
            Ok(Value::Null)
        }
        ("java.util.Arrays", "equals") => {
            let a = args
                .first()
                .ok_or_else(|| InterpError::new("Arrays.equals needs two arrays"))?
                .as_bytes()?;
            let b = args
                .get(1)
                .ok_or_else(|| InterpError::new("Arrays.equals needs two arrays"))?
                .as_bytes()?;
            Ok(Value::Bool(a == b))
        }
        ("de.cognicrypt.util.ByteArrays", "concat") => {
            let mut a = args
                .first()
                .ok_or_else(|| InterpError::new("concat needs two arrays"))?
                .as_bytes()?;
            let b = args
                .get(1)
                .ok_or_else(|| InterpError::new("concat needs two arrays"))?
                .as_bytes()?;
            a.extend(b);
            Ok(Value::bytes(a))
        }
        ("de.cognicrypt.util.ByteArrays", "slice") => {
            let a = args
                .first()
                .ok_or_else(|| InterpError::new("slice needs an array"))?
                .as_bytes()?;
            let from = args
                .get(1)
                .ok_or_else(|| InterpError::new("slice needs bounds"))?
                .as_int()? as usize;
            let to = args
                .get(2)
                .ok_or_else(|| InterpError::new("slice needs bounds"))?
                .as_int()? as usize;
            if from > to || to > a.len() {
                return Err(InterpError::new("slice bounds out of range"));
            }
            Ok(Value::bytes(a[from..to].to_vec()))
        }
        ("de.cognicrypt.util.ByteArrays", "length") => {
            let a = args
                .first()
                .ok_or_else(|| InterpError::new("length needs an array"))?
                .as_bytes()?;
            Ok(Value::Int(a.len() as i64))
        }
        ("java.util.Base64", "encode") => {
            let data = args
                .first()
                .ok_or_else(|| InterpError::new("Base64.encode needs bytes"))?
                .as_bytes()?;
            Ok(Value::Str(base64::encode(&data)))
        }
        ("java.util.Base64", "decode") => {
            let text = first_str(&args)?;
            base64::decode(&text)
                .map(Value::bytes)
                .ok_or_else(|| InterpError::new("malformed Base64"))
        }
        other => Err(InterpError::new(format!(
            "no static method {}.{}",
            other.0, other.1
        ))),
    }
}

/// `Cipher.ENCRYPT_MODE` and friends.
pub fn static_field(class: &str, field: &str) -> Result<Value, InterpError> {
    match (class, field) {
        ("javax.crypto.Cipher", "ENCRYPT_MODE") => Ok(Value::Int(1)),
        ("javax.crypto.Cipher", "DECRYPT_MODE") => Ok(Value::Int(2)),
        ("javax.crypto.Cipher", "WRAP_MODE") => Ok(Value::Int(3)),
        ("javax.crypto.Cipher", "UNWRAP_MODE") => Ok(Value::Int(4)),
        ("javax.crypto.Cipher", "SECRET_KEY") => Ok(Value::Int(3)),
        ("javax.crypto.Cipher", "PRIVATE_KEY") => Ok(Value::Int(2)),
        ("javax.crypto.Cipher", "PUBLIC_KEY") => Ok(Value::Int(1)),
        _ => Err(InterpError::new(format!("no constant {class}.{field}"))),
    }
}

fn first_str(args: &[Value]) -> Result<String, InterpError> {
    args.first()
        .ok_or_else(|| InterpError::new("missing argument"))?
        .as_str()
}

fn key_material(v: &Value) -> Result<KeyMaterial, InterpError> {
    let obj = v.as_object()?;
    match &obj.borrow().state {
        NativeState::Key(k) => Ok(k.clone()),
        other => Err(InterpError::new(format!("expected a key, got {other:?}"))),
    }
}

fn param_iv(v: &Value) -> Result<Vec<u8>, InterpError> {
    let obj = v.as_object()?;
    match &obj.borrow().state {
        NativeState::IvParameterSpec(iv) => Ok(iv.clone()),
        NativeState::GcmParameterSpec { iv, .. } => Ok(iv.clone()),
        other => Err(InterpError::new(format!(
            "expected an AlgorithmParameterSpec, got {other:?}"
        ))),
    }
}

/// Instance-method dispatch.
pub fn invoke(
    interp: &mut Interpreter<'_>,
    receiver: Value,
    name: &str,
    args: Vec<Value>,
) -> Result<Value, InterpError> {
    // String methods dispatch on the value itself.
    if let Value::Str(s) = &receiver {
        return match name {
            "getBytes" => Ok(Value::bytes(s.clone().into_bytes())),
            "toCharArray" => Ok(Value::chars(s.chars().collect())),
            "length" => Ok(Value::Int(s.chars().count() as i64)),
            "equals" => Ok(Value::Bool(
                matches!(args.first(), Some(Value::Str(o)) if o == s),
            )),
            other => Err(InterpError::new(format!("no method String.{other}"))),
        };
    }
    let obj = receiver.as_object()?.clone();
    let class = obj.borrow().class.clone();
    let mut state = obj.borrow_mut();
    match (&mut state.state, name) {
        (NativeState::SecureRandom(rng), "nextBytes") => match args.first() {
            Some(Value::Bytes(b)) => {
                rng.next_bytes(&mut b.borrow_mut());
                Ok(Value::Null)
            }
            _ => Err(InterpError::new("nextBytes needs a byte[]")),
        },
        (NativeState::SecureRandom(rng), "nextInt") => {
            let bound = args
                .first()
                .ok_or_else(|| InterpError::new("nextInt needs a bound"))?
                .as_int()?;
            if bound <= 0 || bound > i64::from(i32::MAX) {
                return Err(InterpError::new("nextInt bound out of range"));
            }
            Ok(Value::Int(i64::from(rng.next_int(bound as i32))))
        }
        (NativeState::PbeKeySpec { password, .. }, "clearPassword") => {
            *password = None;
            Ok(Value::Null)
        }
        (NativeState::SecretKeyFactory { algorithm }, "generateSecret") => {
            let spec = args
                .first()
                .ok_or_else(|| InterpError::new("generateSecret needs a KeySpec"))?;
            let spec_obj = spec.as_object()?;
            let spec_state = spec_obj.borrow();
            match &spec_state.state {
                NativeState::PbeKeySpec {
                    password,
                    salt,
                    iterations,
                    key_length,
                } => {
                    let password = password.as_ref().ok_or_else(|| {
                        InterpError::new(
                            "password has been cleared (IllegalStateException in the JCA)",
                        )
                    })?;
                    let bytes = interp.provider().derive_key(
                        algorithm,
                        password,
                        salt,
                        *iterations,
                        *key_length,
                    )?;
                    Ok(Value::native(
                        "javax.crypto.SecretKey",
                        NativeState::Key(KeyMaterial::Secret {
                            bytes,
                            algorithm: "AES".to_owned(),
                        }),
                    ))
                }
                other => Err(InterpError::new(format!(
                    "unsupported KeySpec {other:?} for generateSecret"
                ))),
            }
        }
        (NativeState::Key(k), "getEncoded") => Ok(Value::bytes(k.encoded())),
        (NativeState::Key(k), "getAlgorithm") => Ok(Value::Str(k.algorithm().to_owned())),
        (NativeState::KeyGenerator { bits, .. }, "init") => {
            *bits = args
                .first()
                .ok_or_else(|| InterpError::new("init needs a key size"))?
                .as_int()?;
            Ok(Value::Null)
        }
        (NativeState::KeyGenerator { algorithm, bits }, "generateKey") => {
            let algorithm = algorithm.clone();
            let bits = *bits;
            drop(state);
            let mut rng = interp.fresh_rng();
            let key = interp.provider().generate_key(&algorithm, bits, &mut rng)?;
            Ok(Value::native(
                "javax.crypto.SecretKey",
                NativeState::Key(key),
            ))
        }
        (NativeState::Cipher { mode, key, iv, .. }, "init") => {
            let m = args
                .first()
                .ok_or_else(|| InterpError::new("Cipher.init needs a mode"))?
                .as_int()?;
            let k = key_material(
                args.get(1)
                    .ok_or_else(|| InterpError::new("Cipher.init needs a key"))?,
            )?;
            *mode = Some(m);
            *key = Some(k);
            *iv = match args.get(2) {
                Some(p) => Some(param_iv(p)?),
                None => None,
            };
            Ok(Value::Null)
        }
        (
            NativeState::Cipher {
                transformation,
                mode,
                key,
                iv,
            },
            "doFinal",
        ) => {
            let data = args
                .first()
                .ok_or_else(|| InterpError::new("doFinal needs data"))?
                .as_bytes()?;
            let t = *transformation;
            let m = mode.ok_or_else(|| InterpError::new("Cipher not initialized"))?;
            let k = key
                .clone()
                .ok_or_else(|| InterpError::new("Cipher not initialized"))?;
            let iv = iv.clone();
            drop(state);
            let out = match m {
                1 => interp.provider().encrypt(t, &k, iv.as_deref(), &data)?,
                2 => interp.provider().decrypt(t, &k, iv.as_deref(), &data)?,
                other => return Err(InterpError::new(format!("unsupported cipher mode {other}"))),
            };
            Ok(Value::bytes(out))
        }
        (
            NativeState::Cipher {
                transformation,
                mode,
                key,
                ..
            },
            "wrap",
        ) => {
            let t = *transformation;
            let m = mode.ok_or_else(|| InterpError::new("Cipher not initialized"))?;
            if m != 3 {
                return Err(InterpError::new("wrap requires WRAP_MODE (3)"));
            }
            let k = key
                .clone()
                .ok_or_else(|| InterpError::new("Cipher not initialized"))?;
            let to_wrap = key_material(
                args.first()
                    .ok_or_else(|| InterpError::new("wrap needs a key"))?,
            )?;
            drop(state);
            let out = interp.provider().encrypt(t, &k, None, &to_wrap.encoded())?;
            Ok(Value::bytes(out))
        }
        (
            NativeState::Cipher {
                transformation,
                mode,
                key,
                ..
            },
            "unwrap",
        ) => {
            let t = *transformation;
            let m = mode.ok_or_else(|| InterpError::new("Cipher not initialized"))?;
            if m != 4 {
                return Err(InterpError::new("unwrap requires UNWRAP_MODE (4)"));
            }
            let k = key
                .clone()
                .ok_or_else(|| InterpError::new("Cipher not initialized"))?;
            let wrapped = args
                .first()
                .ok_or_else(|| InterpError::new("unwrap needs wrapped bytes"))?
                .as_bytes()?;
            let alg = args
                .get(1)
                .ok_or_else(|| InterpError::new("unwrap needs an algorithm"))?
                .as_str()?;
            drop(state);
            let bytes = interp.provider().decrypt(t, &k, None, &wrapped)?;
            Ok(Value::native(
                "javax.crypto.SecretKey",
                NativeState::Key(KeyMaterial::Secret {
                    bytes,
                    algorithm: alg,
                }),
            ))
        }
        (NativeState::Cipher { iv, .. }, "getIV") => match iv {
            Some(v) => Ok(Value::bytes(v.clone())),
            None => Ok(Value::Null),
        },
        (NativeState::MessageDigest { buffer, .. }, "update") => {
            buffer.extend(
                args.first()
                    .ok_or_else(|| InterpError::new("update needs data"))?
                    .as_bytes()?,
            );
            Ok(Value::Null)
        }
        (NativeState::MessageDigest { algorithm, buffer }, "digest") => {
            if let Some(extra) = args.first() {
                buffer.extend(extra.as_bytes()?);
            }
            let data = std::mem::take(buffer);
            let algorithm = algorithm.clone();
            drop(state);
            Ok(Value::bytes(interp.provider().digest(&algorithm, &data)?))
        }
        (NativeState::Mac { key, .. }, "init") => {
            *key = Some(key_material(
                args.first()
                    .ok_or_else(|| InterpError::new("Mac.init needs a key"))?,
            )?);
            Ok(Value::Null)
        }
        (NativeState::Mac { algorithm, key }, "doFinal") => {
            let data = args
                .first()
                .ok_or_else(|| InterpError::new("doFinal needs data"))?
                .as_bytes()?;
            let k = key
                .clone()
                .ok_or_else(|| InterpError::new("Mac not initialized"))?;
            let key_bytes = match k {
                KeyMaterial::Secret { bytes, .. } => bytes,
                _ => return Err(InterpError::new("Mac needs a secret key")),
            };
            let algorithm = algorithm.clone();
            drop(state);
            Ok(Value::bytes(
                interp.provider().mac(&algorithm, &key_bytes, &data)?,
            ))
        }
        (
            NativeState::Signature {
                sign_key, buffer, ..
            },
            "initSign",
        ) => {
            let k = key_material(
                args.first()
                    .ok_or_else(|| InterpError::new("initSign needs a key"))?,
            )?;
            match k {
                KeyMaterial::Private(sk) => {
                    *sign_key = Some(sk);
                    buffer.clear();
                    Ok(Value::Null)
                }
                _ => Err(InterpError::new("initSign needs a private key")),
            }
        }
        (
            NativeState::Signature {
                verify_key, buffer, ..
            },
            "initVerify",
        ) => {
            let k = key_material(
                args.first()
                    .ok_or_else(|| InterpError::new("initVerify needs a key"))?,
            )?;
            match k {
                KeyMaterial::Public(pk) => {
                    *verify_key = Some(pk);
                    buffer.clear();
                    Ok(Value::Null)
                }
                _ => Err(InterpError::new("initVerify needs a public key")),
            }
        }
        (NativeState::Signature { buffer, .. }, "update") => {
            buffer.extend(
                args.first()
                    .ok_or_else(|| InterpError::new("update needs data"))?
                    .as_bytes()?,
            );
            Ok(Value::Null)
        }
        (
            NativeState::Signature {
                algorithm,
                sign_key,
                buffer,
                ..
            },
            "sign",
        ) => {
            let sk = sign_key.ok_or_else(|| InterpError::new("Signature not init for signing"))?;
            let data = std::mem::take(buffer);
            let algorithm = algorithm.clone();
            drop(state);
            Ok(Value::bytes(interp.provider().sign(
                &algorithm,
                &KeyMaterial::Private(sk),
                &data,
            )?))
        }
        (
            NativeState::Signature {
                algorithm,
                verify_key,
                buffer,
                ..
            },
            "verify",
        ) => {
            let pk = verify_key
                .ok_or_else(|| InterpError::new("Signature not init for verification"))?;
            let sig = args
                .first()
                .ok_or_else(|| InterpError::new("verify needs a signature"))?
                .as_bytes()?;
            let data = std::mem::take(buffer);
            let algorithm = algorithm.clone();
            drop(state);
            Ok(Value::Bool(interp.provider().verify(
                &algorithm,
                &KeyMaterial::Public(pk),
                &data,
                &sig,
            )?))
        }
        (NativeState::KeyPairGenerator { bits, .. }, "initialize") => {
            *bits = args
                .first()
                .ok_or_else(|| InterpError::new("initialize needs a key size"))?
                .as_int()?;
            Ok(Value::Null)
        }
        (NativeState::KeyPairGenerator { algorithm, bits }, "generateKeyPair") => {
            let algorithm = algorithm.clone();
            let bits = *bits;
            drop(state);
            let mut rng = interp.fresh_rng();
            let kp = interp
                .provider()
                .generate_key_pair(&algorithm, bits, &mut rng)?;
            Ok(Value::native(
                "java.security.KeyPair",
                NativeState::KeyPair(kp),
            ))
        }
        (NativeState::KeyPair(kp), "getPrivate") => Ok(Value::native(
            "java.security.PrivateKey",
            NativeState::Key(kp.private.clone()),
        )),
        (NativeState::KeyPair(kp), "getPublic") => Ok(Value::native(
            "java.security.PublicKey",
            NativeState::Key(kp.public.clone()),
        )),
        (NativeState::KeyAgreement { private, .. }, "init") => {
            *private = Some(key_material(args.first().ok_or_else(|| {
                InterpError::new("KeyAgreement.init needs a private key")
            })?)?);
            Ok(Value::Null)
        }
        (NativeState::KeyAgreement { peer, .. }, "doPhase") => {
            *peer = Some(key_material(args.first().ok_or_else(|| {
                InterpError::new("doPhase needs the peer public key")
            })?)?);
            Ok(Value::Null)
        }
        (
            NativeState::KeyAgreement {
                algorithm,
                private,
                peer,
            },
            "generateSecret",
        ) => {
            let algorithm = algorithm.clone();
            let private = private
                .clone()
                .ok_or_else(|| InterpError::new("KeyAgreement not initialized"))?;
            let peer = peer
                .clone()
                .ok_or_else(|| InterpError::new("KeyAgreement has no peer phase"))?;
            drop(state);
            Ok(Value::bytes(
                interp
                    .provider()
                    .key_agreement(&algorithm, &private, &peer)?,
            ))
        }
        (NativeState::Kdf { algorithm }, "deriveData") => {
            let ikm = args
                .first()
                .ok_or_else(|| InterpError::new("deriveData needs keying material"))?
                .as_bytes()?;
            let salt = args
                .get(1)
                .ok_or_else(|| InterpError::new("deriveData needs a salt"))?
                .as_bytes()?;
            let info = args
                .get(2)
                .ok_or_else(|| InterpError::new("deriveData needs context info"))?
                .as_bytes()?;
            let len = args
                .get(3)
                .ok_or_else(|| InterpError::new("deriveData needs an output length"))?
                .as_int()?;
            let algorithm = algorithm.clone();
            drop(state);
            Ok(Value::bytes(
                interp
                    .provider()
                    .hkdf(&algorithm, &ikm, &salt, &info, len)?,
            ))
        }
        (other, _) => Err(InterpError::new(format!(
            "no method `{name}` on {class} ({other:?})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javamodel::ast::CompilationUnit;

    fn interp_unit() -> CompilationUnit {
        CompilationUnit::new("p")
    }

    #[test]
    fn pbe_key_spec_lifecycle() {
        let unit = interp_unit();
        let mut i = Interpreter::new(&unit);
        let spec = construct(
            &mut i,
            "javax.crypto.spec.PBEKeySpec",
            vec![
                Value::chars("pw".chars().collect()),
                Value::bytes(vec![1; 32]),
                Value::Int(10000),
                Value::Int(128),
            ],
        )
        .unwrap();
        let skf = invoke_static(
            &mut i,
            "javax.crypto.SecretKeyFactory",
            "getInstance",
            vec![Value::Str("PBKDF2WithHmacSHA256".into())],
        )
        .unwrap();
        let key = invoke(&mut i, skf.clone(), "generateSecret", vec![spec.clone()]).unwrap();
        let encoded = invoke(&mut i, key, "getEncoded", vec![]).unwrap();
        assert_eq!(encoded.as_bytes().unwrap().len(), 16);

        // Clearing the password invalidates the spec.
        invoke(&mut i, spec.clone(), "clearPassword", vec![]).unwrap();
        let err = invoke(&mut i, skf, "generateSecret", vec![spec]).unwrap_err();
        assert!(err.message.contains("cleared"));
    }

    #[test]
    fn cipher_cbc_roundtrip_via_natives() {
        let unit = interp_unit();
        let mut i = Interpreter::new(&unit);
        let key = construct(
            &mut i,
            "javax.crypto.spec.SecretKeySpec",
            vec![Value::bytes(vec![7; 16]), Value::Str("AES".into())],
        )
        .unwrap();
        let ivspec = construct(
            &mut i,
            "javax.crypto.spec.IvParameterSpec",
            vec![Value::bytes(vec![9; 16])],
        )
        .unwrap();
        let enc = invoke_static(
            &mut i,
            "javax.crypto.Cipher",
            "getInstance",
            vec![Value::Str("AES/CBC/PKCS5Padding".into())],
        )
        .unwrap();
        invoke(
            &mut i,
            enc.clone(),
            "init",
            vec![Value::Int(1), key.clone(), ivspec.clone()],
        )
        .unwrap();
        let ct = invoke(
            &mut i,
            enc,
            "doFinal",
            vec![Value::bytes(b"attack at dawn".to_vec())],
        )
        .unwrap();

        let dec = invoke_static(
            &mut i,
            "javax.crypto.Cipher",
            "getInstance",
            vec![Value::Str("AES/CBC/PKCS5Padding".into())],
        )
        .unwrap();
        invoke(
            &mut i,
            dec.clone(),
            "init",
            vec![Value::Int(2), key, ivspec],
        )
        .unwrap();
        let pt = invoke(&mut i, dec, "doFinal", vec![ct]).unwrap();
        assert_eq!(pt.as_bytes().unwrap(), b"attack at dawn");
    }

    #[test]
    fn signature_sign_verify_via_natives() {
        let unit = interp_unit();
        let mut i = Interpreter::new(&unit);
        let kpg = invoke_static(
            &mut i,
            "java.security.KeyPairGenerator",
            "getInstance",
            vec![Value::Str("RSA".into())],
        )
        .unwrap();
        invoke(&mut i, kpg.clone(), "initialize", vec![Value::Int(2048)]).unwrap();
        let kp = invoke(&mut i, kpg, "generateKeyPair", vec![]).unwrap();
        let private = invoke(&mut i, kp.clone(), "getPrivate", vec![]).unwrap();
        let public = invoke(&mut i, kp, "getPublic", vec![]).unwrap();

        let signer = invoke_static(
            &mut i,
            "java.security.Signature",
            "getInstance",
            vec![Value::Str("SHA256withRSA".into())],
        )
        .unwrap();
        invoke(&mut i, signer.clone(), "initSign", vec![private]).unwrap();
        invoke(
            &mut i,
            signer.clone(),
            "update",
            vec![Value::bytes(b"msg".to_vec())],
        )
        .unwrap();
        let sig = invoke(&mut i, signer, "sign", vec![]).unwrap();

        let verifier = invoke_static(
            &mut i,
            "java.security.Signature",
            "getInstance",
            vec![Value::Str("SHA256withRSA".into())],
        )
        .unwrap();
        invoke(&mut i, verifier.clone(), "initVerify", vec![public]).unwrap();
        invoke(
            &mut i,
            verifier.clone(),
            "update",
            vec![Value::bytes(b"msg".to_vec())],
        )
        .unwrap();
        let ok = invoke(&mut i, verifier, "verify", vec![sig]).unwrap();
        assert!(ok.as_bool().unwrap());
    }

    #[test]
    fn key_agreement_and_hkdf_via_natives() {
        let unit = interp_unit();
        let mut i = Interpreter::new(&unit);
        for (family, agreement) in [("DH", "DH"), ("EC", "ECDH")] {
            let make_pair = |i: &mut Interpreter<'_>| {
                let kpg = invoke_static(
                    i,
                    "java.security.KeyPairGenerator",
                    "getInstance",
                    vec![Value::Str(family.into())],
                )
                .unwrap();
                invoke(i, kpg.clone(), "initialize", vec![Value::Int(2048)]).unwrap();
                invoke(i, kpg, "generateKeyPair", vec![]).unwrap()
            };
            let alice = make_pair(&mut i);
            let bob = make_pair(&mut i);
            let secret_between = |i: &mut Interpreter<'_>, own: &Value, other: &Value| {
                let ka = invoke_static(
                    i,
                    "javax.crypto.KeyAgreement",
                    "getInstance",
                    vec![Value::Str(agreement.into())],
                )
                .unwrap();
                let private = invoke(i, own.clone(), "getPrivate", vec![]).unwrap();
                let public = invoke(i, other.clone(), "getPublic", vec![]).unwrap();
                invoke(i, ka.clone(), "init", vec![private]).unwrap();
                invoke(i, ka.clone(), "doPhase", vec![public]).unwrap();
                invoke(i, ka, "generateSecret", vec![])
                    .unwrap()
                    .as_bytes()
                    .unwrap()
            };
            let s1 = secret_between(&mut i, &alice, &bob);
            let s2 = secret_between(&mut i, &bob, &alice);
            assert_eq!(s1, s2, "{agreement} shared secret must agree");

            let kdf = invoke_static(
                &mut i,
                "javax.crypto.KDF",
                "getInstance",
                vec![Value::Str("HKDF-SHA256".into())],
            )
            .unwrap();
            let okm = invoke(
                &mut i,
                kdf,
                "deriveData",
                vec![
                    Value::bytes(s1),
                    Value::bytes(vec![1; 16]),
                    Value::bytes(b"session".to_vec()),
                    Value::Int(32),
                ],
            )
            .unwrap();
            assert_eq!(okm.as_bytes().unwrap().len(), 32);
        }
        // Unknown agreements and KDFs are typed errors.
        assert!(invoke_static(
            &mut i,
            "javax.crypto.KeyAgreement",
            "getInstance",
            vec![Value::Str("X25519".into())],
        )
        .is_err());
        assert!(invoke_static(
            &mut i,
            "javax.crypto.KDF",
            "getInstance",
            vec![Value::Str("HKDF-SHA512".into())],
        )
        .is_err());
    }

    #[test]
    fn string_methods() {
        let unit = interp_unit();
        let mut i = Interpreter::new(&unit);
        let s = Value::Str("hello".into());
        assert_eq!(
            invoke(&mut i, s.clone(), "getBytes", vec![])
                .unwrap()
                .as_bytes()
                .unwrap(),
            b"hello"
        );
        assert_eq!(
            invoke(&mut i, s.clone(), "length", vec![])
                .unwrap()
                .as_int()
                .unwrap(),
            5
        );
        assert!(invoke(
            &mut i,
            s.clone(),
            "equals",
            vec![Value::Str("hello".into())]
        )
        .unwrap()
        .as_bool()
        .unwrap());
        let chars = invoke(&mut i, s, "toCharArray", vec![]).unwrap();
        assert_eq!(chars.as_chars().unwrap(), vec!['h', 'e', 'l', 'l', 'o']);
    }

    #[test]
    fn insecure_transformations_rejected_at_runtime() {
        let unit = interp_unit();
        let mut i = Interpreter::new(&unit);
        assert!(invoke_static(
            &mut i,
            "javax.crypto.Cipher",
            "getInstance",
            vec![Value::Str("AES/ECB/PKCS5Padding".into())],
        )
        .is_err());
        assert!(invoke_static(
            &mut i,
            "java.security.MessageDigest",
            "getInstance",
            vec![Value::Str("MD5".into())],
        )
        .is_err());
    }
}
