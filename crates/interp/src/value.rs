//! Runtime values and native object state.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use jcasim::provider::{KeyMaterial, KeyPairMaterial, Transformation};
use jcasim::rng::SecureRandom;
use jcasim::rsa;

use crate::error::InterpError;

/// A runtime value. Arrays and objects have reference semantics
/// (`Rc<RefCell<…>>`), matching Java.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `int` / `long`
    Int(i64),
    /// `boolean`
    Bool(bool),
    /// `java.lang.String`
    Str(String),
    /// `byte[]`
    Bytes(Rc<RefCell<Vec<u8>>>),
    /// `char[]`
    Chars(Rc<RefCell<Vec<char>>>),
    /// Any object of a modelled or unit-local class.
    Object(Rc<RefCell<JObject>>),
}

impl Value {
    /// Wraps a byte vector as a `byte[]` value.
    pub fn bytes(v: Vec<u8>) -> Value {
        Value::Bytes(Rc::new(RefCell::new(v)))
    }

    /// Wraps a char vector as a `char[]` value.
    pub fn chars(v: Vec<char>) -> Value {
        Value::Chars(Rc::new(RefCell::new(v)))
    }

    /// Creates an instance of a unit-local (template) class.
    pub fn user_object(class: &str) -> Value {
        Value::Object(Rc::new(RefCell::new(JObject {
            class: class.to_owned(),
            state: NativeState::UserObject,
        })))
    }

    /// Creates a native object.
    pub fn native(class: &str, state: NativeState) -> Value {
        Value::Object(Rc::new(RefCell::new(JObject {
            class: class.to_owned(),
            state,
        })))
    }

    /// Extracts an `int`.
    ///
    /// # Errors
    ///
    /// [`InterpError`] when the value is not an `Int`.
    pub fn as_int(&self) -> Result<i64, InterpError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(InterpError::new(format!("expected int, got {other:?}"))),
        }
    }

    /// Extracts a `boolean`.
    ///
    /// # Errors
    ///
    /// [`InterpError`] when the value is not a `Bool`.
    pub fn as_bool(&self) -> Result<bool, InterpError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(InterpError::new(format!("expected boolean, got {other:?}"))),
        }
    }

    /// Extracts a string.
    ///
    /// # Errors
    ///
    /// [`InterpError`] when the value is not a `Str`.
    pub fn as_str(&self) -> Result<String, InterpError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            other => Err(InterpError::new(format!("expected String, got {other:?}"))),
        }
    }

    /// Copies out a `byte[]`.
    ///
    /// # Errors
    ///
    /// [`InterpError`] when the value is not `Bytes`.
    pub fn as_bytes(&self) -> Result<Vec<u8>, InterpError> {
        match self {
            Value::Bytes(b) => Ok(b.borrow().clone()),
            other => Err(InterpError::new(format!("expected byte[], got {other:?}"))),
        }
    }

    /// Copies out a `char[]`.
    ///
    /// # Errors
    ///
    /// [`InterpError`] when the value is not `Chars`.
    pub fn as_chars(&self) -> Result<Vec<char>, InterpError> {
        match self {
            Value::Chars(c) => Ok(c.borrow().clone()),
            other => Err(InterpError::new(format!("expected char[], got {other:?}"))),
        }
    }

    /// Borrows the object payload.
    ///
    /// # Errors
    ///
    /// [`InterpError`] when the value is not an object.
    pub fn as_object(&self) -> Result<&Rc<RefCell<JObject>>, InterpError> {
        match self {
            Value::Object(o) => Ok(o),
            other => Err(InterpError::new(format!("expected object, got {other:?}"))),
        }
    }
}

/// A heap object: its class name and native state.
#[derive(Debug)]
pub struct JObject {
    /// Class (simple name for unit-local classes, fully qualified for
    /// modelled JCA classes).
    pub class: String,
    /// Behavioural state.
    pub state: NativeState,
}

/// Native state of the modelled JCA classes.
#[derive(Debug)]
pub enum NativeState {
    /// An instance of a unit-local (template) class.
    UserObject,
    /// `java.security.SecureRandom`
    SecureRandom(SecureRandom),
    /// `javax.crypto.spec.PBEKeySpec`
    PbeKeySpec {
        /// UTF-8 encoded password; `None` once cleared.
        password: Option<Vec<u8>>,
        /// Salt bytes (copied at construction, like the JCA).
        salt: Vec<u8>,
        /// Iteration count.
        iterations: i64,
        /// Requested key length in bits.
        key_length: i64,
    },
    /// `javax.crypto.SecretKeyFactory`
    SecretKeyFactory {
        /// KDF algorithm.
        algorithm: String,
    },
    /// Any `java.security.Key` (including `SecretKeySpec`).
    Key(KeyMaterial),
    /// `javax.crypto.KeyGenerator`
    KeyGenerator {
        /// Key algorithm.
        algorithm: String,
        /// Requested size in bits.
        bits: i64,
    },
    /// `javax.crypto.Cipher`
    Cipher {
        /// Parsed transformation.
        transformation: Transformation,
        /// 1 = encrypt, 2 = decrypt (`Cipher.ENCRYPT_MODE`/`DECRYPT_MODE`).
        mode: Option<i64>,
        /// The key set by `init`.
        key: Option<KeyMaterial>,
        /// IV/nonce from the parameter spec.
        iv: Option<Vec<u8>>,
    },
    /// `javax.crypto.spec.IvParameterSpec`
    IvParameterSpec(Vec<u8>),
    /// `javax.crypto.spec.GCMParameterSpec`
    GcmParameterSpec {
        /// Tag length in bits.
        tag_bits: i64,
        /// Nonce bytes.
        iv: Vec<u8>,
    },
    /// `java.security.MessageDigest`
    MessageDigest {
        /// Digest algorithm.
        algorithm: String,
        /// Buffered input from `update` calls.
        buffer: Vec<u8>,
    },
    /// `javax.crypto.Mac`
    Mac {
        /// MAC algorithm.
        algorithm: String,
        /// Key set by `init`.
        key: Option<KeyMaterial>,
    },
    /// `java.security.Signature`
    Signature {
        /// Signature algorithm.
        algorithm: String,
        /// Private key for signing.
        sign_key: Option<rsa::PrivateKey>,
        /// Public key for verification.
        verify_key: Option<rsa::PublicKey>,
        /// Buffered input from `update` calls.
        buffer: Vec<u8>,
    },
    /// `java.security.KeyPairGenerator`
    KeyPairGenerator {
        /// Key-pair algorithm.
        algorithm: String,
        /// Requested size in bits.
        bits: i64,
    },
    /// `java.security.KeyPair`
    KeyPair(KeyPairMaterial),
    /// `javax.crypto.KeyAgreement`
    KeyAgreement {
        /// Agreement algorithm (`"DH"` / `"ECDH"`).
        algorithm: String,
        /// Own private key set by `init`.
        private: Option<KeyMaterial>,
        /// Peer public key set by `doPhase`.
        peer: Option<KeyMaterial>,
    },
    /// `javax.crypto.KDF` (HKDF)
    Kdf {
        /// KDF algorithm.
        algorithm: String,
    },
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bytes(b) => write!(f, "byte[{}]", b.borrow().len()),
            Value::Chars(c) => write!(f, "char[{}]", c.borrow().len()),
            Value::Object(o) => write!(f, "{}@obj", o.borrow().class),
        }
    }
}
