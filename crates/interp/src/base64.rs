//! Minimal Base64 (RFC 4648, standard alphabet with padding), used by the
//! password-storage use case to serialize salt and hash.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes to Base64 text.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes Base64 text. Returns `None` for malformed input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let bytes: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let mut vals = [0u32; 4];
        let mut pad = 0;
        for (i, &c) in chunk.iter().enumerate() {
            if c == b'=' {
                if i < 2 {
                    return None; // padding may only occupy the tail
                }
                pad += 1;
                vals[i] = 0;
            } else {
                if pad > 0 {
                    return None; // data after padding
                }
                vals[i] = ALPHABET.iter().position(|&a| a == c)? as u32;
            }
        }
        let n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..64 {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode("a").is_none()); // bad length
        assert!(decode("====").is_none()); // padding first
        assert!(decode("Zg=a").is_none()); // data after padding
        assert!(decode("Z!==").is_none()); // bad character
    }
}
