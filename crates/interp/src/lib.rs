//! An interpreter for the Java-subset AST, wired to the simulated JCA
//! provider.
//!
//! The paper validates generated code by running it inside Eclipse against
//! the JDK. This crate is the substitute: it executes
//! [`javamodel::ast::CompilationUnit`] programs, dispatching calls on the
//! modelled JCA classes to [`jcasim`]. That lets the test suite drive
//! generated use cases end-to-end — derive a key, encrypt, decrypt, and
//! check the round trip.
//!
//! Faithfulness notes:
//!
//! * `PBEKeySpec.clearPassword()` invalidates the spec: deriving a key
//!   from a cleared spec raises an error, like the JCA's
//!   `IllegalStateException`. This makes the generator's statement
//!   deferral observable at runtime.
//! * `java.nio.file.Files` reads and writes an in-memory file system
//!   ([`Interpreter::put_file`] / [`Interpreter::file`]).
//!
//! # Example
//!
//! ```
//! use interp::{Interpreter, Value};
//! use javamodel::ast::*;
//!
//! let m = MethodDecl::new("hash", JavaType::byte_array())
//!     .param(JavaType::byte_array(), "data")
//!     .statement(Stmt::decl_init(
//!         JavaType::class("java.security.MessageDigest"),
//!         "md",
//!         Expr::static_call("java.security.MessageDigest", "getInstance",
//!                           vec![Expr::str("SHA-256")]),
//!     ))
//!     .statement(Stmt::Return(Some(Expr::call(
//!         Expr::var("md"), "digest", vec![Expr::var("data")]))));
//! let unit = CompilationUnit::new("p").class(ClassDecl::new("H").method(m));
//! let mut interp = Interpreter::new(&unit);
//! let out = interp.call_static_style("H", "hash", vec![Value::bytes(b"abc".to_vec())])?;
//! assert_eq!(out.as_bytes().unwrap()[0], 0xba);
//! # Ok::<(), interp::InterpError>(())
//! ```

pub mod base64;
mod error;
mod native;
mod value;

pub use error::InterpError;
pub use value::{NativeState, Value};

use std::collections::HashMap;
use std::rc::Rc;

use javamodel::ast::*;

/// The interpreter: owns the in-memory file system and a deterministic
/// RNG pool, and executes methods of one compilation unit.
pub struct Interpreter<'u> {
    unit: &'u CompilationUnit,
    files: HashMap<String, Vec<u8>>,
    provider: jcasim::Provider,
    rng_seed: u64,
}

impl<'u> Interpreter<'u> {
    /// Creates an interpreter over `unit`.
    pub fn new(unit: &'u CompilationUnit) -> Self {
        Interpreter {
            unit,
            files: HashMap::new(),
            provider: jcasim::Provider::new(),
            rng_seed: 0x5eed,
        }
    }

    /// Stores a file in the in-memory file system.
    pub fn put_file(&mut self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.insert(path.into(), contents);
    }

    /// Reads a file back from the in-memory file system.
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Instantiates `class` (unit-local, default constructor) and invokes
    /// `method` on it — the common way tests drive template classes.
    ///
    /// # Errors
    ///
    /// [`InterpError`] for unknown classes/methods, crypto failures, or
    /// dynamic type errors.
    pub fn call_static_style(
        &mut self,
        class: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, InterpError> {
        let receiver = Value::user_object(class);
        self.invoke_local(class, method, Some(receiver), args)
    }

    /// Invokes a method of a unit-local class on `receiver`.
    pub(crate) fn invoke_local(
        &mut self,
        class: &str,
        method: &str,
        receiver: Option<Value>,
        args: Vec<Value>,
    ) -> Result<Value, InterpError> {
        let class_decl = self
            .unit
            .find_class(class)
            .ok_or_else(|| InterpError::new(format!("unknown class `{class}`")))?;
        let m = class_decl
            .find_method(method)
            .ok_or_else(|| InterpError::new(format!("unknown method `{class}.{method}`")))?;
        if m.params.len() != args.len() {
            return Err(InterpError::new(format!(
                "`{class}.{method}` expects {} arguments, got {}",
                m.params.len(),
                args.len()
            )));
        }
        let mut env: HashMap<String, Value> = HashMap::new();
        for (p, a) in m.params.iter().zip(args) {
            env.insert(p.name.clone(), a);
        }
        if let Some(r) = receiver {
            env.insert("this".to_owned(), r);
        }
        // Clone the body so `self` stays free for native dispatch.
        let body = m.body.clone();
        match self.exec_block(&body, &mut env)? {
            Flow::Return(v) => Ok(v),
            Flow::Continue => Ok(Value::Null),
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, InterpError> {
        for s in stmts {
            match self.exec_stmt(s, env)? {
                Flow::Return(v) => return Ok(Flow::Return(v)),
                Flow::Continue => {}
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, InterpError> {
        match s {
            Stmt::Decl { name, init, .. } => {
                let v = match init {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Null,
                };
                env.insert(name.clone(), v);
                Ok(Flow::Continue)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value, env)?;
                if !env.contains_key(target) {
                    return Err(InterpError::new(format!("assign to undeclared `{target}`")));
                }
                env.insert(target.clone(), v);
                Ok(Flow::Continue)
            }
            Stmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Continue)
            }
            Stmt::Return(None) => Ok(Flow::Return(Value::Null)),
            Stmt::Return(Some(e)) => Ok(Flow::Return(self.eval(e, env)?)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, env)?;
                let branch = if c.as_bool()? { then_body } else { else_body };
                // Branch scope: locals leak in Java only within blocks; we
                // clone to keep outer bindings intact on exit.
                let mut inner = env.clone();
                let flow = self.exec_block(branch, &mut inner)?;
                // Propagate mutations to pre-existing variables.
                for (k, v) in inner {
                    if env.contains_key(&k) {
                        env.insert(k, v);
                    }
                }
                Ok(flow)
            }
            Stmt::Comment(_) => Ok(Flow::Continue),
        }
    }

    pub(crate) fn eval(
        &mut self,
        e: &Expr,
        env: &mut HashMap<String, Value>,
    ) -> Result<Value, InterpError> {
        match e {
            Expr::Lit(Lit::Int(i)) => Ok(Value::Int(*i)),
            Expr::Lit(Lit::Str(s)) => Ok(Value::Str(s.clone())),
            Expr::Lit(Lit::Bool(b)) => Ok(Value::Bool(*b)),
            Expr::Lit(Lit::Null) => Ok(Value::Null),
            Expr::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| InterpError::new(format!("undefined variable `{v}`"))),
            Expr::New { class, args } => {
                let argv = self.eval_args(args, env)?;
                if self.unit.find_class(class_simple(class)).is_some() {
                    return Ok(Value::user_object(class_simple(class)));
                }
                native::construct(self, class, argv)
            }
            Expr::Call { recv, name, args } => {
                let receiver = self.eval(recv, env)?;
                let argv = self.eval_args(args, env)?;
                if let Value::Object(obj) = &receiver {
                    let is_user = matches!(&obj.borrow().state, NativeState::UserObject);
                    if is_user {
                        let class = obj.borrow().class.clone();
                        return self.invoke_local(&class, name, Some(receiver.clone()), argv);
                    }
                }
                native::invoke(self, receiver, name, argv)
            }
            Expr::StaticCall { class, name, args } => {
                let argv = self.eval_args(args, env)?;
                native::invoke_static(self, class, name, argv)
            }
            Expr::StaticField { class, field } => native::static_field(class, field),
            Expr::NewArray { elem, len } => {
                let n = self.eval(len, env)?.as_int()?;
                if n < 0 {
                    return Err(InterpError::new("negative array size"));
                }
                match elem {
                    JavaType::Byte => Ok(Value::bytes(vec![0u8; n as usize])),
                    JavaType::Char => Ok(Value::chars(vec!['\0'; n as usize])),
                    other => Err(InterpError::new(format!(
                        "array element type `{other}` not supported"
                    ))),
                }
            }
            Expr::ArrayLit { elem, elems } => {
                let vals: Result<Vec<Value>, _> = elems.iter().map(|e| self.eval(e, env)).collect();
                let vals = vals?;
                match elem {
                    JavaType::Byte => {
                        let bytes: Result<Vec<u8>, _> =
                            vals.iter().map(|v| v.as_int().map(|i| i as u8)).collect();
                        Ok(Value::bytes(bytes?))
                    }
                    JavaType::Char => {
                        let chars: Result<Vec<char>, _> = vals
                            .iter()
                            .map(|v| v.as_int().map(|i| (i as u8) as char))
                            .collect();
                        Ok(Value::chars(chars?))
                    }
                    other => Err(InterpError::new(format!(
                        "array literal type `{other}` not supported"
                    ))),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                match op {
                    BinOp::Add => match (&l, &r) {
                        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
                        (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
                        _ => Err(InterpError::new("`+` needs ints or strings")),
                    },
                    BinOp::Lt => Ok(Value::Bool(l.as_int()? < r.as_int()?)),
                    BinOp::Eq => Ok(Value::Bool(value_eq(&l, &r))),
                    BinOp::Ne => Ok(Value::Bool(!value_eq(&l, &r))),
                }
            }
            Expr::Cast { expr, .. } => self.eval(expr, env),
        }
    }

    fn eval_args(
        &mut self,
        args: &[Expr],
        env: &mut HashMap<String, Value>,
    ) -> Result<Vec<Value>, InterpError> {
        args.iter().map(|a| self.eval(a, env)).collect()
    }

    pub(crate) fn provider(&self) -> jcasim::Provider {
        self.provider
    }

    pub(crate) fn fresh_rng(&mut self) -> jcasim::rng::SecureRandom {
        self.rng_seed = self
            .rng_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        jcasim::rng::SecureRandom::from_seed(self.rng_seed)
    }

    pub(crate) fn read_file(&self, path: &str) -> Result<Vec<u8>, InterpError> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| InterpError::new(format!("no such file `{path}`")))
    }

    pub(crate) fn write_file(&mut self, path: String, data: Vec<u8>) {
        self.files.insert(path, data);
    }
}

fn class_simple(fqn: &str) -> &str {
    fqn.rsplit('.').next().unwrap_or(fqn)
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bytes(x), Value::Bytes(y)) => Rc::ptr_eq(x, y),
        (Value::Chars(x), Value::Chars(y)) => Rc::ptr_eq(x, y),
        (Value::Object(x), Value::Object(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

enum Flow {
    Continue,
    Return(Value),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_with(m: MethodDecl) -> CompilationUnit {
        CompilationUnit::new("p").class(ClassDecl::new("T").method(m))
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let m = MethodDecl::new("f", JavaType::Int)
            .param(JavaType::Int, "x")
            .statement(Stmt::If {
                cond: Expr::Bin {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::var("x")),
                    rhs: Box::new(Expr::int(10)),
                },
                then_body: vec![Stmt::Return(Some(Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::var("x")),
                    rhs: Box::new(Expr::int(1)),
                }))],
                else_body: vec![Stmt::Return(Some(Expr::int(0)))],
            });
        let unit = unit_with(m);
        let mut i = Interpreter::new(&unit);
        assert_eq!(
            i.call_static_style("T", "f", vec![Value::Int(5)])
                .unwrap()
                .as_int()
                .unwrap(),
            6
        );
        assert_eq!(
            i.call_static_style("T", "f", vec![Value::Int(50)])
                .unwrap()
                .as_int()
                .unwrap(),
            0
        );
    }

    #[test]
    fn byte_arrays_alias() {
        // byte[] b = new byte[4]; r.nextBytes(b); return b;  — mutation
        // through the alias must be visible.
        let m = MethodDecl::new("f", JavaType::byte_array())
            .statement(Stmt::decl_init(
                JavaType::byte_array(),
                "b",
                Expr::new_array(JavaType::Byte, Expr::int(4)),
            ))
            .statement(Stmt::decl_init(
                JavaType::class("java.security.SecureRandom"),
                "r",
                Expr::static_call(
                    "java.security.SecureRandom",
                    "getInstance",
                    vec![Expr::str("SHA1PRNG")],
                ),
            ))
            .statement(Stmt::Expr(Expr::call(
                Expr::var("r"),
                "nextBytes",
                vec![Expr::var("b")],
            )))
            .statement(Stmt::Return(Some(Expr::var("b"))));
        let unit = unit_with(m);
        let mut i = Interpreter::new(&unit);
        let out = i.call_static_style("T", "f", vec![]).unwrap();
        let bytes = out.as_bytes().unwrap();
        assert_eq!(bytes.len(), 4);
        assert_ne!(bytes, vec![0u8; 4]); // was filled
    }

    #[test]
    fn unknown_method_is_an_error() {
        let unit = unit_with(MethodDecl::new("f", JavaType::Void));
        let mut i = Interpreter::new(&unit);
        assert!(i.call_static_style("T", "nope", vec![]).is_err());
        assert!(i.call_static_style("U", "f", vec![]).is_err());
    }

    #[test]
    fn files_roundtrip() {
        let unit = unit_with(MethodDecl::new("f", JavaType::Void));
        let mut i = Interpreter::new(&unit);
        i.put_file("in.txt", b"hello".to_vec());
        assert_eq!(i.file("in.txt").unwrap(), b"hello");
        assert!(i.file("missing").is_none());
    }

    #[test]
    fn string_concat() {
        let m = MethodDecl::new("f", JavaType::string()).statement(Stmt::Return(Some(Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::str("a")),
            rhs: Box::new(Expr::str("b")),
        })));
        let unit = unit_with(m);
        let mut i = Interpreter::new(&unit);
        match i.call_static_style("T", "f", vec![]).unwrap() {
            Value::Str(s) => assert_eq!(s, "ab"),
            other => panic!("expected string, got {other:?}"),
        }
    }
}
