//! Regenerates the paper's **Table 2** (RQ4): the lines of code a crypto
//! expert must write to implement each use case — XSL + Clafer artefacts
//! for the old generator vs. the Java code template for CogniCryptGEN.
//!
//! The numbers come from the *actual artefacts in this repository*: the
//! eight XSL/Clafer files in `crates/oldgen` and the eleven templates in
//! `crates/usecases` (rendered to the Java the expert would write). The
//! shape to compare against the paper: the new generator's templates are
//! a fraction of the old artefacts, and need no extra languages.
//!
//! Run with: `cargo run --release -p cognicrypt-bench --bin table2`

use cognicrypt_bench::loc;
use cognicrypt_core::template::render_java;
use oldgen::old_gen_use_cases;
use usecases::all_use_cases;

fn main() {
    let old = old_gen_use_cases();
    let new = all_use_cases();

    println!("Table 2 — Artefact LoC: CogniCrypt_old-gen vs CogniCryptGEN (reproduction)");
    println!(
        "{:<3} {:<32} {:>6} {:>8} {:>12} {:>8}",
        "#", "Use Case", "XSL", "Clafer", "old total", "Java"
    );
    let mut sum_old = 0usize;
    let mut sum_new = 0usize;
    let mut rows = 0usize;
    for o in &old {
        let n = new
            .iter()
            .find(|u| u.id == o.id)
            .expect("old-gen use cases are a subset of the new ones");
        let xsl = loc(o.xsl_source);
        let clafer = loc(o.clafer_source);
        let java = loc(&render_java(&n.template));
        println!(
            "{:<3} {:<32} {:>6} {:>8} {:>12} {:>8}",
            o.id,
            o.name,
            xsl,
            clafer,
            xsl + clafer,
            java
        );
        sum_old += xsl + clafer;
        sum_new += java;
        rows += 1;
    }
    println!(
        "{:<3} {:<32} {:>6} {:>8} {:>12} {:>8}",
        "",
        "mean",
        "",
        "",
        sum_old / rows,
        sum_new / rows
    );
    println!();
    println!(
        "Old artefacts require {} LoC total across two extra languages (XSL, Clafer);",
        sum_old
    );
    println!(
        "CogniCryptGEN templates require {} LoC of plain Java — {:.0}% of the old effort.",
        sum_new,
        100.0 * sum_new as f64 / sum_old as f64
    );
    println!("Paper reference: old-gen averages 136 LoC XSL + 91 LoC Clafer per use case,");
    println!("new-gen averages 60 LoC Java (~25% of the lines to maintain).");
}
