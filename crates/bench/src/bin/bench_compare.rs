//! Bench-regression gate: compares a freshly produced `BENCH_<suite>.json`
//! against a committed baseline and fails only on large, reproducible
//! slowdowns.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [tolerance]
//! ```
//!
//! A benchmark regresses when its current median exceeds `tolerance ×`
//! the baseline median (default 2.0 — CI runners vary, so the gate is
//! deliberately generous and flags order-of-magnitude mistakes, not
//! noise). Benchmarks whose baseline or current median sits below a
//! 10 µs floor are skipped outright: at that scale timer jitter and
//! scheduling dominate. Benchmarks present on only one side are
//! reported but never fail the gate, so adding or retiring a benchmark
//! does not require touching the baseline in the same change.
//!
//! Exit codes: 0 clean, 1 regression found, 2 usage/parse error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use devharness::bench::BenchReport;

/// Medians below this are timer noise, not signal.
const FLOOR_NS: u64 = 10_000;

const DEFAULT_TOLERANCE: f64 = 2.0;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_compare <baseline.json> <current.json> [tolerance]");
            return ExitCode::from(2);
        }
    };
    let tolerance = match args.get(2) {
        None => DEFAULT_TOLERANCE,
        Some(t) => match t.parse::<f64>() {
            Ok(v) if v >= 1.0 => v,
            _ => {
                eprintln!("invalid tolerance `{t}` (must be a number >= 1.0)");
                return ExitCode::from(2);
            }
        },
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let base: BTreeMap<&str, u64> = baseline
        .results
        .iter()
        .map(|r| (r.name.as_str(), r.median_ns))
        .collect();
    let mut regressions = 0usize;
    let mut compared = 0usize;

    for r in &current.results {
        let Some(&base_median) = base.get(r.name.as_str()) else {
            println!(
                "  new      {:<40} {:>10} ns (no baseline)",
                r.name, r.median_ns
            );
            continue;
        };
        if base_median < FLOOR_NS || r.median_ns < FLOOR_NS {
            println!(
                "  skipped  {:<40} below the {FLOOR_NS} ns noise floor",
                r.name
            );
            continue;
        }
        compared += 1;
        let ratio = r.median_ns as f64 / base_median as f64;
        if ratio > tolerance {
            regressions += 1;
            println!(
                "  REGRESSED {:<39} {:>10} ns -> {:>10} ns ({ratio:.2}x > {tolerance:.2}x)",
                r.name, base_median, r.median_ns
            );
        } else {
            println!(
                "  ok       {:<40} {:>10} ns -> {:>10} ns ({ratio:.2}x)",
                r.name, base_median, r.median_ns
            );
        }
    }
    for name in base.keys() {
        if !current.results.iter().any(|r| r.name == *name) {
            println!("  retired  {name:<40} (in baseline only)");
        }
    }

    println!(
        "bench_compare: suite `{}`: {compared} compared, {regressions} regressed (tolerance {tolerance:.2}x)",
        current.suite
    );
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
