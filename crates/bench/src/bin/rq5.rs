//! Regenerates the paper's **RQ5** numbers: the user-study comparison of
//! CogniCryptGEN against the XSL-based old generator.
//!
//! Human subjects cannot be re-run; the replayed dataset is synthesized
//! to match the paper's reported aggregates (see `stats::study`), and the
//! full analysis pipeline — SUS/NPS scoring, latin-square assignment,
//! Wilcoxon signed-rank tests — re-derives every reported number.
//!
//! Run with: `cargo run --release -p cognicrypt-bench --bin rq5`

use stats::study::{evaluate, replayed_study};

fn main() {
    let data = replayed_study();
    let report = evaluate(&data);

    println!("RQ5 — Usability study (replayed, 16 participants)");
    println!();
    println!("{:<34} {:>12} {:>12}", "Metric", "measured", "paper");
    println!(
        "{:<34} {:>12.1} {:>12}",
        "SUS, CogniCryptGEN", report.sus_gen_mean, "76.3"
    );
    println!(
        "{:<34} {:>12.1} {:>12}",
        "SUS, CogniCrypt_old-gen", report.sus_old_mean, "50.8"
    );
    println!(
        "{:<34} {:>12.1} {:>12}",
        "NPS, CogniCryptGEN", report.nps_gen, "56.3"
    );
    println!(
        "{:<34} {:>12.1} {:>12}",
        "NPS, CogniCrypt_old-gen", report.nps_old, "-43.7"
    );
    println!(
        "{:<34} {:>12.4} {:>12}",
        "Wilcoxon p (SUS)", report.p_sus, "0.005"
    );
    println!(
        "{:<34} {:>12.4} {:>12}",
        "Wilcoxon p (NPS)", report.p_nps, "0.005"
    );
    println!(
        "{:<34} {:>12.4} {:>12}",
        "Wilcoxon p (completion times)", report.p_times, "> 0.05"
    );
    println!(
        "{:<34} {:>11.1}% {:>12}",
        "Encryption task slowdown (GEN)", report.encryption_slowdown_pct, "38%"
    );
    println!(
        "{:<34} {:>11.1}% {:>12}",
        "Hashing task speedup (GEN)", report.hashing_speedup_pct, "63.2%"
    );
    println!();
    println!("Conclusions hold: usability differences significant (p < 0.01), completion-time");
    println!("differences mixed and not significant (p > 0.05), SUS above the 68 'usable' bar");
    println!("for CogniCryptGEN only.");
}
