//! Regenerates the paper's **Table 1** (RQ1–RQ3): for each of the eleven
//! common cryptographic use cases, whether generation succeeds, the mean
//! generation runtime over ten runs, and the peak memory consumed by a
//! generation run.
//!
//! Absolute numbers differ from the paper (their measurements include a
//! full Eclipse/JDT stack on a 2013-era laptop; ours is a native library).
//! The shape to compare: runtime is flat across use cases, and memory
//! overhead is small and roughly tracks artefact complexity.
//!
//! Run with: `cargo run --release -p cognicrypt-bench --bin table1`

use cognicrypt_bench::{mean_runtime_ms, CountingAllocator};
use cognicrypt_core::generate;
use javamodel::jca::jca_type_table;
use rules::{open, PackSource};
use sast::{analyze_unit, AnalyzerOptions};
use usecases::all_use_cases;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let rules = open(PackSource::Embedded).expect("parses").rules;
    let table = jca_type_table();

    println!("Table 1 — Common Cryptographic Use Cases (reproduction)");
    println!(
        "{:<3} {:<32} {:<12} {:>14} {:>16}  SAST",
        "#", "Use Case", "Sources", "Runtime (ms)", "Peak Mem (KB)"
    );
    for uc in all_use_cases() {
        // RQ2: mean of ten runs, as in the paper.
        let runtime_ms = mean_runtime_ms(10, || {
            let g = generate(&uc.template, &rules, &table).expect("generation succeeds");
            std::hint::black_box(g);
        });
        // RQ3: peak allocation during one generation run.
        let before = ALLOC.reset_peak();
        let generated = generate(&uc.template, &rules, &table).expect("generation succeeds");
        let peak_kb = (ALLOC.peak().saturating_sub(before)) as f64 / 1024.0;
        // RQ1 validity: the generated code is misuse-free.
        let misuses = analyze_unit(&generated.unit, &rules, &table, AnalyzerOptions::default());
        let verdict = if misuses.is_empty() {
            "clean"
        } else {
            "MISUSES!"
        };
        println!(
            "{:<3} {:<32} {:<12} {:>14.3} {:>16.1}  {}",
            uc.id, uc.name, uc.sources, runtime_ms, peak_kb, verdict
        );
    }
    println!();
    println!("Paper reference: runtimes 6.6–8.1 s (Eclipse stack), memory 2.5–66.6 MB;");
    println!("expected shape: flat runtime across use cases, small memory overhead.");
}
