//! Shared infrastructure for the benchmark harness: a byte-counting
//! global allocator (for the Table 1 memory column) and measurement
//! helpers used by the `table1`, `table2` and `rq5` binaries.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A global allocator wrapper that tracks current and peak live bytes.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAllocator = CountingAllocator::new();
/// ```
pub struct CountingAllocator {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAllocator {
    /// Creates the allocator (const, for statics).
    pub const fn new() -> Self {
        CountingAllocator {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Resets the peak to the current level; returns the current level.
    pub fn reset_peak(&self) -> usize {
        let cur = self.current.load(Ordering::Relaxed);
        self.peak.store(cur, Ordering::Relaxed);
        cur
    }

    /// Peak live bytes since the last [`CountingAllocator::reset_peak`].
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Currently live bytes.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    fn add(&self, bytes: usize) {
        let cur = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(cur, Ordering::Relaxed);
    }

    fn sub(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates to the system allocator; the counters are only
// bookkeeping and never affect the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            self.sub(layout.size());
            self.add(new_size);
        }
        p
    }
}

/// Times `f` over `runs` executions and returns the mean in milliseconds —
/// the measurement protocol of RQ2 (the paper averages ten runs).
pub fn mean_runtime_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    assert!(runs > 0);
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / runs as f64
}

/// Counts non-blank lines — the LoC measure used by Table 2.
pub fn loc(text: &str) -> usize {
    text.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_helper_returns_positive_mean() {
        let ms = mean_runtime_ms(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ms >= 0.0);
    }

    #[test]
    fn loc_counts() {
        assert_eq!(loc("a\n\nb\n  \nc"), 3);
    }
}
