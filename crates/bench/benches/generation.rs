//! Benches for every table/figure and the design-choice ablations called
//! out in DESIGN.md, on the in-repo `devharness` bench harness (hermetic,
//! no registry access). The run writes `BENCH_generation.json` — the
//! machine-readable trajectory data behind Table 1 / RQ5.
//!
//! * `table1/*` — generation runtime per use case (RQ2),
//! * `oldgen/*` — the XSL/Clafer baseline's generation runtime,
//! * `pipeline/*` — per-stage costs (rule parsing, FSM construction,
//!   path enumeration, SAST),
//! * `ablation/*` — path filters off, longest-path tie-break, fallback
//!   hoisting behaviour,
//! * `substrate/*`, `execution/*` — the simulated JCA and interpreter.
//!
//! Run with: `cargo bench -p cognicrypt-bench` (tune with
//! `DEVHARNESS_BENCH_SAMPLES` / `DEVHARNESS_BENCH_WARMUP`; output
//! directory with `DEVHARNESS_BENCH_DIR`).

use std::collections::BTreeMap;
use std::hint::black_box;

use devharness::bench::Harness;

use cognicrypt_core::pathsel::SelectionOptions;
use cognicrypt_core::{generate, Generator, GeneratorOptions};
use crysl::parse_rule;
use javamodel::jca::jca_type_table;
use rules::{open, open_uncached, PackSource, RULE_SOURCES};
use sast::{analyze_unit, AnalyzerOptions};
use statemachine::paths::{enumerate, PathLimit};
use statemachine::{Dfa, Nfa};
use usecases::all_use_cases;

fn bench_table1(h: &mut Harness) {
    let rules = open(PackSource::Embedded).expect("parses").rules;
    let table = jca_type_table();
    h.group("table1");
    for uc in all_use_cases() {
        h.bench(&format!("uc{:02}_{}", uc.id, slug(uc.name)), || {
            let g = generate(black_box(&uc.template), &rules, &table).expect("generates");
            black_box(g);
        });
    }
}

fn bench_oldgen(h: &mut Harness) {
    h.group("oldgen");
    for uc in oldgen::old_gen_use_cases() {
        h.bench(&format!("uc{:02}_{}", uc.id, slug(uc.name)), || {
            let out =
                oldgen::generate_use_case(black_box(&uc), &BTreeMap::new()).expect("generates");
            black_box(out);
        });
    }
}

fn bench_pipeline_stages(h: &mut Harness) {
    h.group("pipeline");
    // `open_uncached` is the always-reparse path; `open` would just
    // clone the process-wide parsed set and measure nothing.
    h.bench("parse_jca_ruleset", || {
        black_box(open_uncached(PackSource::Embedded).expect("parses").rules);
    });
    let src = RULE_SOURCES
        .iter()
        .find(|(n, _)| *n == "Cipher")
        .expect("Cipher rule shipped")
        .1;
    h.bench("parse_single_rule", || {
        black_box(parse_rule(black_box(src)).expect("parses"));
    });
    let rules = open(PackSource::Embedded).expect("parses").rules;
    h.bench("fsm_construction_all_rules", || {
        for r in rules.iter() {
            let dfa = Dfa::from_nfa(&Nfa::from_rule(r).expect("builds"));
            black_box(dfa);
        }
    });
    h.bench("path_enumeration_all_rules", || {
        for r in rules.iter() {
            black_box(enumerate(r, PathLimit::default()).expect("enumerates"));
        }
    });
    let table = jca_type_table();
    let generated = generate(&all_use_cases()[0].template, &rules, &table).expect("generates");
    h.bench("sast_analysis_pbe_files", || {
        black_box(analyze_unit(
            black_box(&generated.unit),
            &rules,
            &table,
            AnalyzerOptions::default(),
        ));
    });
}

fn bench_ablations(h: &mut Harness) {
    let rules = open(PackSource::Embedded).expect("parses").rules;
    let table = jca_type_table();
    // Hashing has the richest path structure of the configurations that
    // stay correct under every ablation: filters cannot be turned off
    // *correctness-free* for every use case; hashing works under all.
    let hash = all_use_cases()
        .into_iter()
        .find(|u| u.id == 11)
        .expect("hashing present");
    h.group("ablation");
    let configs: [(&str, SelectionOptions); 4] = [
        ("paper_defaults", SelectionOptions::default()),
        (
            "no_binding_filter",
            SelectionOptions {
                filter_template_bindings: false,
                ..SelectionOptions::default()
            },
        ),
        (
            "no_predicate_filter",
            SelectionOptions {
                filter_predicates: false,
                ..SelectionOptions::default()
            },
        ),
        (
            "longest_path",
            SelectionOptions {
                prefer_shortest: false,
                ..SelectionOptions::default()
            },
        ),
    ];
    for (name, selection) in configs {
        let generator = Generator::with_options(GeneratorOptions {
            selection,
            ..GeneratorOptions::default()
        });
        h.bench(name, || {
            let g = generator
                .generate(black_box(&hash.template), &rules, &table)
                .expect("generates");
            black_box(g);
        });
    }
}

fn bench_crypto_substrate(h: &mut Harness) {
    h.group("substrate");
    let data = vec![0xa5u8; 4096];
    h.bench("sha256_4k", || {
        black_box(jcasim::sha256::digest(black_box(&data)));
    });
    let aes = jcasim::aes::Aes128::new(&[7u8; 16]);
    let iv = [9u8; 16];
    h.bench("aes_cbc_4k", || {
        black_box(jcasim::modes::cbc_encrypt(&aes, &iv, black_box(&data)).expect("encrypts"));
    });
    h.bench("pbkdf2_1000_iters", || {
        black_box(jcasim::pbkdf2::pbkdf2_hmac_sha256(
            b"pwd", b"salt", 1000, 16,
        ));
    });
}

fn bench_execution(h: &mut Harness) {
    // Running the generated code end-to-end on the simulated provider —
    // the part of the paper's validation that was manual in Eclipse.
    let rules = open(PackSource::Embedded).expect("parses").rules;
    let table = jca_type_table();
    h.group("execution");
    let hashing = all_use_cases()
        .into_iter()
        .find(|u| u.id == 11)
        .expect("hashing present");
    let generated = generate(&hashing.template, &rules, &table).expect("generates");
    h.bench("interpret_hashing", || {
        let mut interp = interp::Interpreter::new(&generated.unit);
        let out = interp
            .call_static_style(
                "SecureHasher",
                "hash",
                vec![interp::Value::Str("benchmark input".into())],
            )
            .expect("runs");
        black_box(out);
    });
    let symmetric = all_use_cases()
        .into_iter()
        .find(|u| u.id == 4)
        .expect("symmetric present");
    let sym_gen = generate(&symmetric.template, &rules, &table).expect("generates");
    h.bench("interpret_symmetric_roundtrip", || {
        let mut interp = interp::Interpreter::new(&sym_gen.unit);
        let key = interp
            .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
            .expect("keygen runs");
        let ct = interp
            .call_static_style(
                "SecureSymmetricEncryptor",
                "encrypt",
                vec![interp::Value::bytes(vec![7u8; 256]), key.clone()],
            )
            .expect("encrypt runs");
        let pt = interp
            .call_static_style("SecureSymmetricEncryptor", "decrypt", vec![ct, key])
            .expect("decrypt runs");
        black_box(pt);
    });
}

fn slug(name: &str) -> String {
    name.to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn main() {
    let mut h = Harness::new("generation");
    bench_table1(&mut h);
    bench_oldgen(&mut h);
    bench_pipeline_stages(&mut h);
    bench_ablations(&mut h);
    bench_crypto_substrate(&mut h);
    bench_execution(&mut h);
    match h.finish() {
        Ok(path) => println!("\nreport written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write bench report: {e}");
            std::process::exit(1);
        }
    }
}
