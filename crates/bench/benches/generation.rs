//! Criterion benches for every table/figure and the design-choice
//! ablations called out in DESIGN.md.
//!
//! * `table1/*` — generation runtime per use case (RQ2),
//! * `oldgen/*` — the XSL/Clafer baseline's generation runtime,
//! * `pipeline/*` — per-stage costs (rule parsing, FSM construction,
//!   path enumeration, SAST),
//! * `ablation/*` — path filters off, longest-path tie-break, fallback
//!   hoisting behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use cognicrypt_core::pathsel::SelectionOptions;
use cognicrypt_core::{generate, Generator, GeneratorOptions};
use crysl::parse_rule;
use javamodel::jca::jca_type_table;
use rules::{jca_rules, RULE_SOURCES};
use sast::{analyze_unit, AnalyzerOptions};
use statemachine::paths::{enumerate, PathLimit};
use statemachine::{Dfa, Nfa};
use usecases::all_use_cases;

fn bench_table1(c: &mut Criterion) {
    let rules = jca_rules();
    let table = jca_type_table();
    let mut group = c.benchmark_group("table1");
    for uc in all_use_cases() {
        group.bench_function(format!("uc{:02}_{}", uc.id, slug(uc.name)), |b| {
            b.iter(|| {
                let g = generate(black_box(&uc.template), &rules, &table).expect("generates");
                black_box(g);
            })
        });
    }
    group.finish();
}

fn bench_oldgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("oldgen");
    for uc in oldgen::old_gen_use_cases() {
        group.bench_function(format!("uc{:02}_{}", uc.id, slug(uc.name)), |b| {
            b.iter(|| {
                let out =
                    oldgen::generate_use_case(black_box(&uc), &BTreeMap::new()).expect("generates");
                black_box(out);
            })
        });
    }
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("parse_jca_ruleset", |b| {
        b.iter(|| black_box(jca_rules()))
    });
    group.bench_function("parse_single_rule", |b| {
        let src = RULE_SOURCES
            .iter()
            .find(|(n, _)| *n == "Cipher")
            .expect("Cipher rule shipped")
            .1;
        b.iter(|| black_box(parse_rule(black_box(src)).expect("parses")))
    });
    let rules = jca_rules();
    group.bench_function("fsm_construction_all_rules", |b| {
        b.iter(|| {
            for r in rules.iter() {
                let dfa = Dfa::from_nfa(&Nfa::from_rule(r).expect("builds"));
                black_box(dfa);
            }
        })
    });
    group.bench_function("path_enumeration_all_rules", |b| {
        b.iter(|| {
            for r in rules.iter() {
                black_box(enumerate(r, PathLimit::default()).expect("enumerates"));
            }
        })
    });
    let table = jca_type_table();
    let generated = generate(&all_use_cases()[0].template, &rules, &table).expect("generates");
    group.bench_function("sast_analysis_pbe_files", |b| {
        b.iter(|| {
            black_box(analyze_unit(
                black_box(&generated.unit),
                &rules,
                &table,
                AnalyzerOptions::default(),
            ))
        })
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let rules = jca_rules();
    let table = jca_type_table();
    // Hybrid has the richest path structure — the interesting ablation
    // subject. Filters cannot be turned off *correctness-free* for every
    // use case; hashing works under all configurations.
    let hash = all_use_cases()
        .into_iter()
        .find(|u| u.id == 11)
        .expect("hashing present");
    let mut group = c.benchmark_group("ablation");
    let configs: [(&str, SelectionOptions); 4] = [
        ("paper_defaults", SelectionOptions::default()),
        (
            "no_binding_filter",
            SelectionOptions {
                filter_template_bindings: false,
                ..SelectionOptions::default()
            },
        ),
        (
            "no_predicate_filter",
            SelectionOptions {
                filter_predicates: false,
                ..SelectionOptions::default()
            },
        ),
        (
            "longest_path",
            SelectionOptions {
                prefer_shortest: false,
                ..SelectionOptions::default()
            },
        ),
    ];
    for (name, selection) in configs {
        let generator = Generator::with_options(GeneratorOptions {
            selection,
            ..GeneratorOptions::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| {
                let g = generator
                    .generate(black_box(&hash.template), &rules, &table)
                    .expect("generates");
                black_box(g);
            })
        });
    }
    group.finish();
}

fn bench_crypto_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    let data = vec![0xa5u8; 4096];
    group.bench_function("sha256_4k", |b| {
        b.iter(|| black_box(jcasim::sha256::digest(black_box(&data))))
    });
    let aes = jcasim::aes::Aes128::new(&[7u8; 16]);
    let iv = [9u8; 16];
    group.bench_function("aes_cbc_4k", |b| {
        b.iter(|| black_box(jcasim::modes::cbc_encrypt(&aes, &iv, black_box(&data)).expect("encrypts")))
    });
    group.bench_function("pbkdf2_1000_iters", |b| {
        b.iter(|| black_box(jcasim::pbkdf2::pbkdf2_hmac_sha256(b"pwd", b"salt", 1000, 16)))
    });
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    // Running the generated code end-to-end on the simulated provider —
    // the part of the paper's validation that was manual in Eclipse.
    let rules = jca_rules();
    let table = jca_type_table();
    let mut group = c.benchmark_group("execution");
    let hashing = all_use_cases()
        .into_iter()
        .find(|u| u.id == 11)
        .expect("hashing present");
    let generated = generate(&hashing.template, &rules, &table).expect("generates");
    group.bench_function("interpret_hashing", |b| {
        b.iter(|| {
            let mut interp = interp::Interpreter::new(&generated.unit);
            let out = interp
                .call_static_style(
                    "SecureHasher",
                    "hash",
                    vec![interp::Value::Str("benchmark input".into())],
                )
                .expect("runs");
            black_box(out);
        })
    });
    let symmetric = all_use_cases()
        .into_iter()
        .find(|u| u.id == 4)
        .expect("symmetric present");
    let sym_gen = generate(&symmetric.template, &rules, &table).expect("generates");
    group.bench_function("interpret_symmetric_roundtrip", |b| {
        b.iter(|| {
            let mut interp = interp::Interpreter::new(&sym_gen.unit);
            let key = interp
                .call_static_style("SecureSymmetricEncryptor", "generateKey", vec![])
                .expect("keygen runs");
            let ct = interp
                .call_static_style(
                    "SecureSymmetricEncryptor",
                    "encrypt",
                    vec![interp::Value::bytes(vec![7u8; 256]), key.clone()],
                )
                .expect("encrypt runs");
            let pt = interp
                .call_static_style("SecureSymmetricEncryptor", "decrypt", vec![ct, key])
                .expect("decrypt runs");
            black_box(pt);
        })
    });
    group.finish();
}

fn slug(name: &str) -> String {
    name.to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_oldgen, bench_pipeline_stages, bench_ablations, bench_crypto_substrate, bench_execution
}
criterion_main!(benches);
