//! Observer-overhead benches for the telemetry layer, on the in-repo
//! `devharness` harness. The run writes `BENCH_telemetry.json`.
//!
//! This binary installs `memtrack::TrackingAlloc` as its global
//! allocator — the configuration the CLI ships — so every number here
//! already includes the allocation-counting overhead the paper's memory
//! column costs.
//!
//! * `observer/*` — the full catalogued-use-case warm batch under each observer
//!   tier: `NoopObserver` (baseline), `MetricsCollector`,
//!   `PhaseTimings`, and `TraceRecorder` (reset between iterations so
//!   the event vector cannot grow without bound);
//! * `memtrack/*` — microbenches of the raw accounting primitives: an
//!   `AllocScope` open/close pair, and one counted heap round trip;
//! * `serve/*` — the daemon's per-request hot path
//!   (`ServerState::handle` on a warm `generate`) with the
//!   observability layer at its default ring capacity versus capacity 0
//!   (recording disabled).
//!
//! The run *asserts* two overhead ceilings: the median of every
//! observed configuration must stay within `MAX_OVERHEAD`× the noop
//! median, the observed serve hot path within `SERVE_MAX_OVERHEAD`× of
//! the recording-disabled one, and the process exits non-zero on
//! violation so a telemetry regression fails loudly in CI rather than
//! drifting.
//!
//! Run with: `cargo bench -p cognicrypt-bench --bench telemetry`.

use std::hint::black_box;
use std::sync::Arc;

use devharness::bench::Harness;

use cognicrypt_core::memtrack::{AllocScope, TrackingAlloc};
use cognicrypt_core::telemetry::{MetricsCollector, PhaseTimings, TraceRecorder};
use cognicrypt_core::{GenEngine, NoopObserver, Template};
use javamodel::jca::jca_type_table;
use rules::{open, PackSource};
use usecases::all_use_cases;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

/// Highest tolerated ratio of any observed configuration's median over
/// the noop baseline median for the same warm full-catalogue batch. The
/// observers do strictly bounded work per hook (a few counter bumps, or
/// one Vec push under a mutex), so 10× is generous headroom over the
/// ~1–2× measured; crossing it means a hook started doing real work.
const MAX_OVERHEAD: f64 = 10.0;

/// Highest tolerated ratio of the daemon hot path with request
/// observability on (access ring + latency histogram + trace-id
/// assignment at the default capacity) over the same path with
/// recording disabled (`obs_capacity: 0`). Per request the layer does
/// one atomic increment, one histogram record and one ring push — all
/// constant-time against a generation that parses nothing but still
/// renders Java source.
const SERVE_MAX_OVERHEAD: f64 = 1.3;

fn warm_engine(observer: Option<Arc<dyn cognicrypt_core::GenObserver>>) -> GenEngine {
    let mut builder = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table());
    if let Some(obs) = observer {
        builder = builder.observer(obs);
    }
    let engine = builder.build().expect("rules supplied");
    engine.warm().expect("warms");
    engine
}

fn run_batch(engine: &GenEngine, templates: &[Template]) {
    let results = engine.generate_batch(black_box(templates), 1);
    for r in &results {
        assert!(r.is_ok());
    }
    black_box(results);
}

fn bench_observers(h: &mut Harness) -> Vec<(String, u64)> {
    h.group("observer");
    let templates: Vec<Template> = all_use_cases().into_iter().map(|uc| uc.template).collect();
    let mut medians = Vec::new();

    let noop = warm_engine(Some(Arc::new(NoopObserver)));
    h.bench("noop_all", || run_batch(&noop, &templates));

    let metrics = warm_engine(Some(Arc::new(MetricsCollector::fresh())));
    h.bench("metrics_all", || run_batch(&metrics, &templates));

    let timings = warm_engine(Some(Arc::new(PhaseTimings::new())));
    h.bench("phase_timings_all", || run_batch(&timings, &templates));

    let recorder = Arc::new(TraceRecorder::new());
    let traced = warm_engine(Some(recorder.clone()));
    h.bench("trace_recorder_all", || {
        recorder.reset();
        run_batch(&traced, &templates);
    });

    for r in &h.report().results {
        medians.push((r.name.clone(), r.median_ns));
    }
    medians
}

fn bench_memtrack_primitives(h: &mut Harness) {
    h.group("memtrack");
    h.bench("alloc_scope_roundtrip", || {
        let scope = AllocScope::enter();
        black_box(scope.finish());
    });
    h.bench("counted_heap_roundtrip", || {
        let v: Vec<u8> = Vec::with_capacity(black_box(4096));
        black_box(&v);
        drop(v);
    });
}

fn bench_serve_hot_path(h: &mut Harness) -> (u64, u64) {
    use cognicryptgen::serve::{Request, ServeConfig, ServerState};
    h.group("serve");
    let request = Request::Generate("1".to_owned());

    // `ServerState::new` builds the full daemon state without binding
    // sockets, so `handle` here is exactly the per-request work a
    // transport worker does, minus I/O.
    let observed = ServerState::new(&ServeConfig::http("127.0.0.1:0")).expect("state builds");
    assert_eq!(observed.handle(&request).code, 200);
    h.bench("handle_generate_observed", || {
        black_box(observed.handle(black_box(&request)));
    });

    let blind = ServerState::new(&ServeConfig {
        obs_capacity: 0,
        ..ServeConfig::http("127.0.0.1:0")
    })
    .expect("state builds");
    assert_eq!(blind.handle(&request).code, 200);
    h.bench("handle_generate_unobserved", || {
        black_box(blind.handle(black_box(&request)));
    });

    let median = |name: &str| {
        h.report()
            .results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .expect("serve medians measured")
    };
    (
        median("serve/handle_generate_observed"),
        median("serve/handle_generate_unobserved"),
    )
}

fn assert_serve_overhead_bound(observed_ns: u64, unobserved_ns: u64) -> bool {
    let ratio = observed_ns as f64 / unobserved_ns as f64;
    let ok = ratio <= SERVE_MAX_OVERHEAD;
    println!(
        "\nserve hot-path observability overhead: {observed_ns} ns / {unobserved_ns} ns = {ratio:.3}x (limit {SERVE_MAX_OVERHEAD}x)   {}",
        if ok { "ok" } else { "FAIL" }
    );
    if !ok {
        eprintln!(
            "error: observed serve hot path is {ratio:.3}x the recording-disabled path (limit {SERVE_MAX_OVERHEAD}x)"
        );
    }
    ok
}

fn assert_overhead_bound(medians: &[(String, u64)]) -> bool {
    let noop = medians
        .iter()
        .find(|(n, _)| n == "observer/noop_all")
        .map(|&(_, ns)| ns)
        .expect("noop baseline measured");
    let mut ok = true;
    println!("\noverhead vs noop baseline ({noop} ns median):");
    for (name, ns) in medians {
        if name == "observer/noop_all" || !name.starts_with("observer/") {
            continue;
        }
        let ratio = *ns as f64 / noop as f64;
        let verdict = if ratio <= MAX_OVERHEAD { "ok" } else { "FAIL" };
        println!("  {name:<32} {ratio:>6.2}x   {verdict}");
        if ratio > MAX_OVERHEAD {
            eprintln!(
                "error: {name} median {ns} ns is {ratio:.2}x the noop baseline (limit {MAX_OVERHEAD}x)"
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let mut h = Harness::new("telemetry");
    let medians = bench_observers(&mut h);
    bench_memtrack_primitives(&mut h);
    let (observed_ns, unobserved_ns) = bench_serve_hot_path(&mut h);
    let within_bound =
        assert_overhead_bound(&medians) & assert_serve_overhead_bound(observed_ns, unobserved_ns);
    match h.finish() {
        Ok(path) => println!("\nreport written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write bench report: {e}");
            std::process::exit(1);
        }
    }
    if !within_bound {
        std::process::exit(1);
    }
}
