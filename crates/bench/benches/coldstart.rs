//! Cold-start benches: time-to-first-generation from CrySL sources
//! versus a precompiled `.crpack`, on the in-repo `devharness` harness.
//! The run writes `BENCH_coldstart.json`.
//!
//! * `cli-boot/*` — what a one-shot `generate` invocation pays before
//!   its first output on the shipped JCA rules: load rules, build an
//!   engine, generate use case 1. The source variant parses every
//!   shipped CrySL rule; the pack variant decodes a checksummed binary
//!   image and pre-seeds the compiled-ORDER cache.
//! * `daemon-boot/*` — what `serve` pays before its first request on
//!   the shipped rules. Source boot compiles every ORDER automaton
//!   during warm-up; pack boot seeds the cache from the file's
//!   artefacts and skips the warm-up walk entirely, exactly as the
//!   daemon does.
//! * `scaled-boot/*` — the same daemon boot over a 150-rule source
//!   tree, the regime packs exist for. The shipped JCA set is small
//!   enough that per-boot fixed costs blur the comparison; at rule-pack
//!   scale, loading dominates and the binary format's advantage is
//!   architectural: one file read + length-checked decode versus
//!   per-file I/O + lex/parse/validate + NFA→DFA→minimize→enumerate
//!   per rule.
//!
//! The binary asserts the format's headline claim after measuring:
//! scaled pack boot must be at least 5× faster than scaled source
//! boot. Both variants do real filesystem reads, so the comparison is
//! honest about I/O.
//!
//! Run with: `cargo bench -p cognicrypt-bench --bench coldstart` (tune
//! with `DEVHARNESS_BENCH_SAMPLES` / `DEVHARNESS_BENCH_WARMUP`; output
//! directory with `DEVHARNESS_BENCH_DIR`).

use std::hint::black_box;
use std::path::{Path, PathBuf};

use devharness::bench::Harness;

use cognicrypt_core::GenEngine;
use javamodel::jca::jca_type_table;
use rules::{open, open_uncached, PackSource, RulePack};
use statemachine::OrderCache;
use usecases::all_use_cases;

/// Rules in the scaled source tree. Sized so rule loading dominates
/// boot, as it would for a production pack aggregating many crypto
/// providers, while keeping the bench itself fast.
const SCALED_RULES: usize = 150;

/// A small init-update-finish rule — the shape of most real CrySL
/// specifications (digests, RNGs, key specs). Event labels embed `i`,
/// so every rule has a distinct `order_fingerprint` and the source
/// boot compiles one ORDER automaton per rule — no accidental artefact
/// sharing.
fn simple_rule(i: usize) -> String {
    format!(
        "SPEC bench.scale{i}.Widget\n\
         OBJECTS\n    int x;\n    byte[] buf;\n\
         EVENTS\n    i{i}: init(x);\n    a{i}: update(buf);\n    b{i}: reset();\n    f{i}: finish(buf);\n\
         ORDER\n    i{i}, (a{i} | b{i})+, f{i}?\n\
         CONSTRAINTS\n    x >= 1;\n"
    )
}

/// A stateful protocol-style rule: a long mandatory call sequence
/// (handshake/key-agreement APIs look like this) followed by a small
/// exchange loop. These are where precompilation pays most — subset
/// construction and minimization grow superlinearly with the chain,
/// while the serialized automaton still decodes in linear time.
fn protocol_rule(i: usize) -> String {
    let mut events = String::new();
    let mut order = String::new();
    for k in 0..16 {
        events.push_str(&format!("    s{k}_{i}: step{k}(buf);\n"));
        if k > 0 {
            order.push_str(", ");
        }
        order.push_str(&format!("s{k}_{i}"));
    }
    format!(
        "SPEC bench.scale{i}.Session\n\
         OBJECTS\n    int x;\n    byte[] buf;\n\
         EVENTS\n{events}    u{i}: send(buf);\n    v{i}: recv(buf);\n    f{i}: close();\n\
         ORDER\n    {order}, (u{i} | v{i})+, f{i}?\n\
         CONSTRAINTS\n    x >= 1;\n"
    )
}

/// The scaled population: two thirds small rules, one third protocol
/// chains — roughly the spread a multi-provider rule set shows.
fn synthetic_rule(i: usize) -> String {
    if i.is_multiple_of(3) {
        protocol_rule(i)
    } else {
        simple_rule(i)
    }
}

/// Writes the scaled source tree and its compiled pack; returns
/// `(source_dir, pack_file)`.
fn scaled_fixture() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("cgen-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src = dir.join("rules");
    std::fs::create_dir_all(&src).expect("scratch dir");
    for i in 0..SCALED_RULES {
        std::fs::write(src.join(format!("w{i:03}.crysl")), synthetic_rule(i)).expect("write rule");
    }
    let pack_file = dir.join("scaled.crpack");
    let bytes = open_uncached(PackSource::SourceDir(src.clone()))
        .expect("scaled rules parse")
        .to_bytes()
        .expect("scaled rules pack");
    std::fs::write(&pack_file, bytes).expect("write pack");
    (src, pack_file)
}

/// Writes the shipped rules as a `.crpack` scratch file; every pack-boot
/// iteration re-reads and re-decodes it like a real boot.
fn jca_pack(dir: &Path) -> PathBuf {
    let path = dir.join("jca.crpack");
    let bytes = open(PackSource::Embedded)
        .expect("shipped rules parse")
        .to_bytes()
        .expect("shipped rules pack");
    std::fs::write(&path, bytes).expect("write scratch pack");
    path
}

/// One full boot: load from `source`, seed a fresh cache, build an
/// engine. First generation (or warm-up) happens at the caller.
fn boot(source: PackSource) -> GenEngine {
    let pack: RulePack = open_uncached(source).expect("loads");
    let cache = std::sync::Arc::new(OrderCache::new());
    pack.seed(&cache);
    GenEngine::builder()
        .rules(pack.rules)
        .type_table(jca_type_table())
        .order_cache(cache)
        .build()
        .expect("rules supplied")
}

/// A daemon-style boot mirroring `serve`: load, seed, build, then warm
/// every ORDER — except a precompiled pack, whose seeding already
/// guarantees every lookup hits, so the daemon skips the warm-up walk.
fn daemon_boot(source: PackSource) -> GenEngine {
    let pack: RulePack = open_uncached(source).expect("loads");
    let cache = std::sync::Arc::new(OrderCache::new());
    let precompiled = pack.is_precompiled();
    pack.seed(&cache);
    let engine = GenEngine::builder()
        .rules(pack.rules)
        .type_table(jca_type_table())
        .order_cache(cache)
        .build()
        .expect("rules supplied");
    if !precompiled {
        engine.warm().expect("warms");
    }
    engine
}

fn bench_cli_boot(h: &mut Harness, pack_path: &Path) {
    h.group("cli-boot");
    let uc = all_use_cases()
        .into_iter()
        .find(|u| u.id == 1)
        .expect("use case 1 shipped");

    h.bench("source_first_gen_uc01", || {
        let engine = boot(PackSource::Embedded);
        let g = engine.generate(black_box(&uc.template)).expect("generates");
        black_box(g);
    });

    h.bench("pack_first_gen_uc01", || {
        let engine = boot(PackSource::Compiled(pack_path.to_path_buf()));
        let g = engine.generate(black_box(&uc.template)).expect("generates");
        black_box(g);
    });
}

fn bench_daemon_boot(h: &mut Harness, pack_path: &Path) {
    h.group("daemon-boot");

    h.bench("source_boot_warm_all", || {
        black_box(daemon_boot(PackSource::Embedded));
    });

    h.bench("pack_boot_warm_all", || {
        black_box(daemon_boot(PackSource::Compiled(pack_path.to_path_buf())));
    });
}

fn bench_scaled_boot(h: &mut Harness, src: &Path, pack_path: &Path) {
    h.group("scaled-boot");

    h.bench("source_boot_warm_150", || {
        black_box(daemon_boot(PackSource::SourceDir(src.to_path_buf())));
    });

    h.bench("pack_boot_warm_150", || {
        black_box(daemon_boot(PackSource::Compiled(pack_path.to_path_buf())));
    });
}

fn main() {
    let mut h = Harness::new("coldstart");
    let (scaled_src, scaled_pack) = scaled_fixture();
    let jca = jca_pack(scaled_src.parent().expect("fixture parent"));

    bench_cli_boot(&mut h, &jca);
    bench_daemon_boot(&mut h, &jca);
    bench_scaled_boot(&mut h, &scaled_src, &scaled_pack);

    // The format's headline claim, checked where it is measured.
    let report = h.report();
    let median = |name: &str| {
        report
            .results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .expect("bench ran")
    };
    let source = median("scaled-boot/source_boot_warm_150");
    let pack = median("scaled-boot/pack_boot_warm_150").max(1);
    let speedup = source as f64 / pack as f64;
    println!("\nscaled pack boot speedup: {speedup:.1}x (source {source} ns vs pack {pack} ns)");

    let _ = std::fs::remove_dir_all(scaled_src.parent().expect("fixture parent"));
    match h.finish() {
        Ok(path) => println!("report written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write bench report: {e}");
            std::process::exit(1);
        }
    }
    if speedup < 5.0 {
        eprintln!("scaled pack boot is only {speedup:.1}x faster than source boot (claim: >= 5x)");
        std::process::exit(1);
    }
}
