//! Benches for the cached, parallel generation engine (`GenEngine`), on
//! the in-repo `devharness` harness. The run writes `BENCH_engine.json`.
//!
//! * `cold-vs-warm/*` — one use-case generation on the legacy cold path
//!   (rules re-parsed from source, every ORDER pattern recompiled) versus
//!   a warmed engine whose compiled artefacts are all cache hits;
//! * `serial-vs-parallel/*` — every catalogued use case as one batch:
//!   the legacy serial loop (cold per iteration, as N separate CLI
//!   invocations behaved), then an engine batch at 1, 2 and 8 worker
//!   threads.
//!
//! On a single-core host the thread-count series measures scheduling
//! overhead rather than speedup; the caching wins (`warm` vs `cold`,
//! `engine_batch_*` vs `legacy_cold_serial`) are hardware-independent.
//!
//! Run with: `cargo bench -p cognicrypt-bench --bench engine` (tune with
//! `DEVHARNESS_BENCH_SAMPLES` / `DEVHARNESS_BENCH_WARMUP`; output
//! directory with `DEVHARNESS_BENCH_DIR`).

use std::hint::black_box;

use devharness::bench::Harness;

use cognicrypt_core::{GenEngine, Generator};
use javamodel::jca::jca_type_table;
use rules::{open, open_uncached, PackSource};
use usecases::all_use_cases;

fn bench_cold_vs_warm(h: &mut Harness) {
    h.group("cold-vs-warm");
    let uc = all_use_cases()
        .into_iter()
        .find(|u| u.id == 1)
        .expect("use case 1 shipped");
    let table = jca_type_table();

    // Cold: what every pre-engine invocation paid — parse the rule set
    // from source, then compile each ORDER pattern from scratch.
    h.bench("cold_generate_uc01", || {
        let rules = open_uncached(PackSource::Embedded).expect("parses").rules;
        let g = Generator::new()
            .generate_uncached(black_box(&uc.template), &rules, &table)
            .expect("generates");
        black_box(g);
    });

    // Warm: a long-lived engine whose rule set is parsed once and whose
    // compiled-ORDER cache is fully populated.
    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied");
    engine.warm().expect("warms");
    h.bench("warm_generate_uc01", || {
        let g = engine.generate(black_box(&uc.template)).expect("generates");
        black_box(g);
    });
}

fn bench_serial_vs_parallel(h: &mut Harness) {
    h.group("serial-vs-parallel");
    let templates: Vec<_> = all_use_cases().into_iter().map(|uc| uc.template).collect();
    let table = jca_type_table();

    // The pre-engine behaviour for "generate everything": one cold run
    // per use case (each CLI invocation re-parsed the rules and
    // recompiled every ORDER pattern it touched).
    h.bench("legacy_cold_serial_all", || {
        for t in &templates {
            let rules = open_uncached(PackSource::Embedded).expect("parses").rules;
            let g = Generator::new()
                .generate_uncached(black_box(t), &rules, &table)
                .expect("generates");
            black_box(g);
        }
    });

    let engine = GenEngine::builder()
        .rules(open(PackSource::Embedded).expect("parses").rules)
        .type_table(jca_type_table())
        .build()
        .expect("rules supplied");
    engine.warm().expect("warms");
    for threads in [1usize, 2, 8] {
        h.bench(&format!("engine_batch_all_t{threads}"), || {
            let results = engine.generate_batch(black_box(&templates), threads);
            for r in &results {
                assert!(r.is_ok());
            }
            black_box(results);
        });
    }
}

fn main() {
    let mut h = Harness::new("engine");
    bench_cold_vs_warm(&mut h);
    bench_serial_vs_parallel(&mut h);
    match h.finish() {
        Ok(path) => println!("\nreport written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write bench report: {e}");
            std::process::exit(1);
        }
    }
}
