//! Open- and closed-loop pacing for load generation.
//!
//! A closed-loop client issues its next request the moment the previous
//! one returns: throughput adapts to the system under test, and a slow
//! response slows the *offered* load down — which systematically hides
//! latency spikes (coordinated omission). An open-loop client issues
//! requests on a fixed schedule regardless of completions, the way a
//! million independent users would, and measures each latency from the
//! request's *scheduled* start, so time spent queueing behind a stall
//! is charged to the stalled request.
//!
//! [`Pacer`] packages both disciplines behind one call: the runner asks
//! for the start instant of operation `i` and measures from what it
//! gets back.

use std::time::{Duration, Instant};

/// The pacing discipline for one client's operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Back-to-back: operation `i+1` starts when `i` finishes.
    Closed,
    /// Fixed schedule: operation `i` is due at `start + i · interval`.
    Open {
        /// Gap between consecutive scheduled starts.
        interval: Duration,
    },
}

/// Hands out operation start instants under a [`LoopMode`].
#[derive(Debug, Clone)]
pub struct Pacer {
    mode: LoopMode,
    start: Instant,
}

impl Pacer {
    /// A closed-loop pacer: no waiting, latency measured from the call.
    pub fn closed() -> Self {
        Pacer {
            mode: LoopMode::Closed,
            start: Instant::now(),
        }
    }

    /// An open-loop pacer issuing at fixed `interval`s from now.
    pub fn open(interval: Duration) -> Self {
        Pacer {
            mode: LoopMode::Open { interval },
            start: Instant::now(),
        }
    }

    /// An open-loop pacer targeting `rate` operations per second.
    /// A rate of zero or below falls back to closed-loop.
    pub fn per_second(rate: f64) -> Self {
        if rate <= 0.0 {
            return Pacer::closed();
        }
        Pacer::open(Duration::from_nanos((1e9 / rate) as u64))
    }

    /// The discipline this pacer runs.
    pub fn mode(&self) -> LoopMode {
        self.mode
    }

    /// Blocks until operation `i` is due and returns the instant its
    /// latency must be measured from.
    ///
    /// Closed loop: returns immediately with now. Open loop: sleeps
    /// until the scheduled start when it is still ahead; when the
    /// client is already behind schedule it returns at once — but
    /// still returns the *scheduled* instant, so the queueing delay the
    /// backlog caused is part of the measured latency rather than
    /// silently omitted.
    pub fn due(&self, i: u64) -> Instant {
        match self.mode {
            LoopMode::Closed => Instant::now(),
            LoopMode::Open { interval } => {
                let scheduled = self.start + interval * u32::try_from(i).unwrap_or(u32::MAX);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                scheduled
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_never_waits() {
        let p = Pacer::closed();
        let before = Instant::now();
        let t = p.due(1_000);
        assert!(t >= before);
        assert!(before.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn open_loop_spaces_scheduled_starts_by_the_interval() {
        let interval = Duration::from_millis(2);
        let p = Pacer::open(interval);
        let t0 = p.due(0);
        let t3 = p.due(3);
        assert_eq!(t3.duration_since(t0), interval * 3);
    }

    #[test]
    fn open_loop_charges_backlog_to_the_scheduled_start() {
        // Ask for op 0 late: the returned instant is the *scheduled*
        // one, in the past, so a latency measured from it includes the
        // time the op spent overdue.
        let p = Pacer::open(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        let scheduled = p.due(0);
        let measured = scheduled.elapsed();
        assert!(
            measured >= Duration::from_millis(9),
            "backlog was omitted: measured {measured:?}"
        );
    }

    #[test]
    fn per_second_rate_maps_to_interval() {
        let p = Pacer::per_second(1000.0);
        match p.mode() {
            LoopMode::Open { interval } => {
                assert_eq!(interval, Duration::from_millis(1));
            }
            LoopMode::Closed => panic!("expected open loop"),
        }
        assert_eq!(Pacer::per_second(0.0).mode(), LoopMode::Closed);
    }
}
