//! A minimal JSON value type with a writer and a recursive-descent
//! parser — just enough for the bench reports to be machine-readable and
//! round-trippable without an external serialization crate.
//!
//! Numbers are stored as `f64` (like JavaScript); object member order is
//! preserved so that write → parse → write is byte-identical for the
//! documents this workspace produces.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document, requiring the entire input to be consumed.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing data after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(JsonError::at(
            *pos,
            format!("unexpected byte '{}'", c as char),
        )),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number bytes"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("invalid number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed for our reports;
                        // map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn nested_document_roundtrips() {
        let src = r#"{"name":"t1","runs":[1,2,3],"meta":{"ok":true,"p95":12.5,"note":null}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("name").and_then(Json::as_str), Some("t1"));
        assert_eq!(
            v.get("meta")
                .and_then(|m| m.get("p95"))
                .and_then(Json::as_f64),
            Some(12.5)
        );
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_owned());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn large_u64_accessor() {
        assert_eq!(Json::parse("1234567").unwrap().as_u64(), Some(1234567));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }
}
