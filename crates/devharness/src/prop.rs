//! A property-testing harness with composable generators and seeded,
//! replayable shrinking.
//!
//! The design is "internal shrinking" (in the Hypothesis tradition):
//! generators draw `u64`s from a [`Tape`], the tape records every draw,
//! and shrinking operates on the recorded draw sequence — deleting,
//! truncating and minimizing entries — then re-runs the generator on the
//! shrunk tape. Because shrinking happens below the generators, every
//! combinator (`map`, `filter`, `vec`, tuples, user closures) shrinks for
//! free and invariants baked into generators can never be violated by a
//! shrink step.
//!
//! ```no_run
//! use devharness::prop::{check, gens, Config};
//!
//! let g = gens::vec(gens::u8_any(), 0, 64);
//! check("sum_fits", &Config::default(), &g, |bytes| {
//!     let total: u64 = bytes.iter().map(|&b| b as u64).sum();
//!     assert!(total <= 255 * 64);
//! });
//! ```
//!
//! Environment knobs:
//! * `DEVHARNESS_CASES` — override the number of cases per property;
//! * `DEVHARNESS_SEED` — override the base seed (printed on failure, so
//!   a failing run can be replayed exactly).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use crate::rng::{splitmix64, RandomSource, Xoshiro256};

/// The draw source generators consume. Records every draw so a failing
/// case can be shrunk and replayed.
pub struct Tape {
    replay: Vec<u64>,
    pos: usize,
    rng: Option<Xoshiro256>,
    log: Vec<u64>,
}

impl Tape {
    /// A live tape: draws come from a seeded PRNG and are recorded.
    pub fn live(seed: u64) -> Self {
        Tape {
            replay: Vec::new(),
            pos: 0,
            rng: Some(Xoshiro256::seed_from_u64(seed)),
            log: Vec::new(),
        }
    }

    /// A frozen replay tape: draws come from `data`; once exhausted,
    /// further draws yield zero (the minimal value) deterministically.
    pub fn frozen(data: Vec<u64>) -> Self {
        Tape {
            replay: data,
            pos: 0,
            rng: None,
            log: Vec::new(),
        }
    }

    /// The next raw 64-bit draw.
    pub fn draw_u64(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            let v = self.replay[self.pos];
            self.pos += 1;
            v
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.log.push(v);
        v
    }

    /// A draw reduced to `[0, bound)`. Uses a simple modulo so that a
    /// smaller raw draw never maps to a larger value-class — the property
    /// that makes tape-level shrinking converge.
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.draw_u64() % bound
    }

    fn into_log(self) -> Vec<u64> {
        self.log
    }
}

/// Payload used to abort a generation attempt (e.g. an exhausted
/// filter). The runner treats it as "discard this case", not a failure.
struct Rejection(String);

fn reject(why: &str) -> ! {
    std::panic::panic_any(Rejection(why.to_owned()))
}

/// A composable generator: a function from the tape to a value.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Tape) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: self.f.clone() }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a draw function as a generator. This is the escape hatch for
    /// bespoke shapes: call `.run(tape)` on other generators inside it.
    pub fn new(f: impl Fn(&mut Tape) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Produces one value from the tape.
    pub fn run(&self, tape: &mut Tape) -> T {
        (self.f)(tape)
    }

    /// Applies a pure function to the generated value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |tape| f(self.run(tape)))
    }

    /// Keeps only values satisfying `pred`, retrying with fresh draws.
    /// After 100 rejected attempts the case is discarded (mirroring a
    /// too-restrictive filter, which the runner reports).
    pub fn filter(self, what: &str, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        let what = what.to_owned();
        Gen::new(move |tape| {
            for _ in 0..100 {
                let v = self.run(tape);
                if pred(&v) {
                    return v;
                }
            }
            reject(&what)
        })
    }
}

/// The stock generators.
pub mod gens {
    use super::{Gen, Tape};

    /// Any `u64`.
    pub fn u64_any() -> Gen<u64> {
        Gen::new(Tape::draw_u64)
    }

    /// Any `u32`.
    pub fn u32_any() -> Gen<u32> {
        Gen::new(|t| t.draw_u64() as u32)
    }

    /// Any byte.
    pub fn u8_any() -> Gen<u8> {
        Gen::new(|t| t.draw_u64() as u8)
    }

    /// Any `i32`.
    pub fn i32_any() -> Gen<i32> {
        Gen::new(|t| t.draw_u64() as i32)
    }

    /// Any `bool`.
    pub fn bool_any() -> Gen<bool> {
        Gen::new(|t| t.draw_u64() & 1 == 1)
    }

    /// A `usize` in the half-open range `[lo, hi)`.
    pub fn usize_range(lo: usize, hi: usize) -> Gen<usize> {
        assert!(lo < hi, "empty range {lo}..{hi}");
        Gen::new(move |t| lo + t.draw_below((hi - lo) as u64) as usize)
    }

    /// An `i64` in the half-open range `[lo, hi)`.
    pub fn i64_range(lo: i64, hi: i64) -> Gen<i64> {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        Gen::new(move |t| lo.wrapping_add(t.draw_below(span) as i64))
    }

    /// A vector of `lo..hi` (half-open) elements.
    pub fn vec<T: 'static>(elem: Gen<T>, lo: usize, hi: usize) -> Gen<Vec<T>> {
        let len = usize_range(lo, hi);
        Gen::new(move |t| {
            let n = len.run(t);
            (0..n).map(|_| elem.run(t)).collect()
        })
    }

    /// A byte vector of `lo..hi` (half-open) length.
    pub fn bytes(lo: usize, hi: usize) -> Gen<Vec<u8>> {
        vec(u8_any(), lo, hi)
    }

    /// A fixed-size byte array.
    pub fn byte_array<const N: usize>() -> Gen<[u8; N]> {
        Gen::new(|t| {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = t.draw_u64() as u8;
            }
            out
        })
    }

    /// `None` or `Some` of the inner generator (about half each).
    pub fn option<T: 'static>(inner: Gen<T>) -> Gen<Option<T>> {
        Gen::new(move |t| {
            // Draw 0 means None, so shrinking converges on None.
            if t.draw_below(2) == 0 {
                None
            } else {
                Some(inner.run(t))
            }
        })
    }

    /// One of the listed literal values, uniformly. Earlier entries are
    /// what shrinking converges toward, so put the "simplest" first.
    pub fn one_of<T: Clone + 'static>(choices: Vec<T>) -> Gen<T> {
        assert!(!choices.is_empty(), "one_of requires at least one choice");
        Gen::new(move |t| choices[t.draw_below(choices.len() as u64) as usize].clone())
    }

    /// Delegates to one of the listed sub-generators, uniformly.
    pub fn pick<T: 'static>(arms: Vec<Gen<T>>) -> Gen<T> {
        assert!(!arms.is_empty(), "pick requires at least one arm");
        Gen::new(move |t| arms[t.draw_below(arms.len() as u64) as usize].run(t))
    }

    /// A string of `lo..hi` (half-open) characters drawn from `charset`.
    pub fn string_of(charset: &str, lo: usize, hi: usize) -> Gen<String> {
        let chars: Vec<char> = charset.chars().collect();
        assert!(!chars.is_empty(), "empty charset");
        let len = usize_range(lo, hi);
        Gen::new(move |t| {
            let n = len.run(t);
            (0..n)
                .map(|_| chars[t.draw_below(chars.len() as u64) as usize])
                .collect()
        })
    }

    /// A pair.
    pub fn tuple2<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
        Gen::new(move |t| (a.run(t), b.run(t)))
    }

    /// A triple.
    pub fn tuple3<A: 'static, B: 'static, C: 'static>(
        a: Gen<A>,
        b: Gen<B>,
        c: Gen<C>,
    ) -> Gen<(A, B, C)> {
        Gen::new(move |t| (a.run(t), b.run(t), c.run(t)))
    }

    /// A quadruple.
    pub fn tuple4<A: 'static, B: 'static, C: 'static, D: 'static>(
        a: Gen<A>,
        b: Gen<B>,
        c: Gen<C>,
        d: Gen<D>,
    ) -> Gen<(A, B, C, D)> {
        Gen::new(move |t| (a.run(t), b.run(t), c.run(t), d.run(t)))
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run per property (`DEVHARNESS_CASES` overrides).
    pub cases: u32,
    /// Base seed (`DEVHARNESS_SEED` overrides). The default is fixed so
    /// that CI runs are reproducible; vary the seed to explore.
    pub seed: u64,
    /// Maximum shrink candidates to evaluate after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let mut cfg = Config {
            cases: 64,
            seed: 0x0c09_71c9_0000_2020,
            max_shrink_iters: 4096,
        };
        if let Ok(v) = std::env::var("DEVHARNESS_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("DEVHARNESS_SEED") {
            if let Ok(s) = v.trim().parse::<u64>() {
                cfg.seed = s;
            }
        }
        cfg
    }
}

impl Config {
    /// The default configuration with a different case count.
    pub fn with_cases(cases: u32) -> Self {
        let base = Config::default();
        // An explicit DEVHARNESS_CASES wins over the per-test count.
        if std::env::var("DEVHARNESS_CASES").is_ok() {
            base
        } else {
            Config { cases, ..base }
        }
    }
}

enum CaseOutcome<T> {
    Pass,
    Rejected,
    GenPanic(String),
    Fail {
        value: T,
        log: Vec<u64>,
        message: String,
    },
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Result<String, String> {
    // Ok(msg) = ordinary panic; Err(why) = generation rejection.
    if let Some(r) = payload.downcast_ref::<Rejection>() {
        return Err(r.0.clone());
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Ok((*s).to_owned());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Ok(s.clone());
    }
    Ok("<non-string panic payload>".to_owned())
}

fn run_case<T: 'static>(gen: &Gen<T>, prop: &impl Fn(&T), tape: Tape) -> CaseOutcome<T> {
    let mut tape = tape;
    let generated = catch_unwind(AssertUnwindSafe(|| gen.run(&mut tape)));
    let value = match generated {
        Ok(v) => v,
        Err(payload) => {
            return match panic_message(payload) {
                Err(_why) => CaseOutcome::Rejected,
                Ok(msg) => CaseOutcome::GenPanic(msg),
            }
        }
    };
    let log = tape.into_log();
    match catch_unwind(AssertUnwindSafe(|| prop(&value))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => match panic_message(payload) {
            // A rejection raised *inside the property* is a bug in the
            // property; surface it as a failure message.
            Err(why) => CaseOutcome::Fail {
                value,
                log,
                message: format!("generator rejection escaped into property: {why}"),
            },
            Ok(message) => CaseOutcome::Fail {
                value,
                log,
                message,
            },
        },
    }
}

/// Candidate shrink transformations of a draw log, in decreasing order of
/// aggressiveness.
fn shrink_candidates(log: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let n = log.len();
    if n == 0 {
        return out;
    }
    // Truncations first: they cut whole suffixes of structure at once.
    for keep in [n / 2, (n * 3) / 4, n - 1] {
        if keep < n {
            out.push(log[..keep].to_vec());
        }
    }
    // Block deletions shrink collections in the middle of the tape.
    for width in [8usize, 4, 2, 1] {
        if width >= n {
            continue;
        }
        let mut start = 0;
        while start + width <= n {
            let mut cand = Vec::with_capacity(n - width);
            cand.extend_from_slice(&log[..start]);
            cand.extend_from_slice(&log[start + width..]);
            out.push(cand);
            start += width.max(1);
        }
    }
    // Pointwise minimizations: zero, halve, decrement.
    for i in 0..n {
        if log[i] != 0 {
            let mut z = log.to_vec();
            z[i] = 0;
            out.push(z);
            if log[i] > 1 {
                let mut h = log.to_vec();
                h[i] = log[i] / 2;
                out.push(h);
            }
            let mut d = log.to_vec();
            d[i] = log[i] - 1;
            out.push(d);
        }
    }
    out
}

/// Checks `prop` against `cases` generated values, shrinking and
/// reporting the minimal counterexample on failure.
///
/// Failure panics with the base seed, the failing case index, and the
/// shrunk value, so `DEVHARNESS_SEED=<seed> cargo test <name>` replays
/// the run exactly.
pub fn check<T: std::fmt::Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T),
) {
    let mut stream = cfg.seed ^ fnv1a(name.as_bytes());
    let mut rejected = 0u32;
    let mut case = 0u32;
    while case < cfg.cases {
        let case_seed = splitmix64(&mut stream);
        match run_case(gen, &prop, Tape::live(case_seed)) {
            CaseOutcome::Pass => case += 1,
            CaseOutcome::Rejected => {
                // A rejected attempt does not consume the case budget,
                // but a filter that discards most of the space starves
                // the property; fail loudly instead of silently testing
                // nothing.
                rejected += 1;
                assert!(
                    rejected <= cfg.cases.saturating_mul(4).max(16),
                    "property '{name}': generator rejected {rejected} candidate cases \
                     (only {case} accepted); filter is too restrictive"
                );
            }
            CaseOutcome::GenPanic(msg) => {
                panic!("property '{name}': generator itself panicked on case {case}: {msg}")
            }
            CaseOutcome::Fail {
                value,
                log,
                message,
            } => {
                let (value, message) = shrink(gen, &prop, value, log, message, cfg);
                panic!(
                    "property '{name}' failed (case {case}, base seed {seed}).\n\
                     replay: DEVHARNESS_SEED={seed} cargo test\n\
                     minimal counterexample: {value:?}\n\
                     failure: {message}",
                    seed = cfg.seed,
                )
            }
        }
    }
}

fn shrink<T: 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(&T),
    value: T,
    log: Vec<u64>,
    message: String,
    cfg: &Config,
) -> (T, String) {
    let mut best_value = value;
    let mut best_log = log;
    let mut best_message = message;
    let mut budget = cfg.max_shrink_iters;
    'outer: loop {
        for cand in shrink_candidates(&best_log) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let CaseOutcome::Fail {
                value,
                log,
                message,
            } = run_case(gen, prop, Tape::frozen(cand))
            {
                // Only adopt strictly simpler tapes, so the loop cannot
                // cycle between equivalent-weight candidates.
                if tape_weight(&log) < tape_weight(&best_log) {
                    best_value = value;
                    best_log = log;
                    best_message = message;
                    continue 'outer;
                }
            }
        }
        break;
    }
    (best_value, best_message)
}

/// Lexicographic (length, sum) measure that every productive shrink step
/// decreases.
fn tape_weight(log: &[u64]) -> (usize, u128) {
    (log.len(), log.iter().map(|&v| v as u128).sum())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg(cases: u32) -> Config {
        Config {
            cases,
            seed: 99,
            max_shrink_iters: 4096,
        }
    }

    #[test]
    fn passing_property_passes() {
        let g = gens::bytes(0, 64);
        check("len_bound", &quiet_cfg(128), &g, |v| assert!(v.len() < 64));
    }

    #[test]
    fn determinism_same_seed_same_cases() {
        // Record the generated values for two identical runs via a
        // property that never fails but logs what it sees.
        use std::cell::RefCell;
        let collect = |seed: u64| {
            let seen = std::rc::Rc::new(RefCell::new(Vec::new()));
            let seen2 = seen.clone();
            let g = gens::vec(gens::u64_any(), 0, 8);
            let cfg = Config {
                cases: 32,
                seed,
                max_shrink_iters: 0,
            };
            check("collect", &cfg, &g, move |v| {
                seen2.borrow_mut().push(v.clone());
            });
            std::rc::Rc::try_unwrap(seen).unwrap().into_inner()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn failure_reports_minimal_scalar_counterexample() {
        let g = gens::usize_range(0, 1000);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check("ge_ten_fails", &quiet_cfg(256), &g, |&v| assert!(v < 10));
        }));
        let msg = match result {
            Err(p) => *p.downcast::<String>().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        // The minimal value violating `v < 10` is exactly 10.
        assert!(
            msg.contains("minimal counterexample: 10"),
            "unexpected report: {msg}"
        );
        assert!(msg.contains("DEVHARNESS_SEED=99"), "no replay line: {msg}");
    }

    #[test]
    fn failure_shrinks_collections_to_minimal_shape() {
        let g = gens::bytes(0, 100);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check("len_three_fails", &quiet_cfg(64), &g, |v| {
                assert!(v.len() < 3)
            });
        }));
        let msg = match result {
            Err(p) => *p.downcast::<String>().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        // Minimal counterexample: exactly three zero bytes.
        assert!(
            msg.contains("minimal counterexample: [0, 0, 0]"),
            "unexpected report: {msg}"
        );
    }

    #[test]
    fn filter_discards_do_not_fail_reasonable_properties() {
        let g = gens::usize_range(0, 100).filter("even", |v| v % 2 == 0);
        check("filtered_even", &quiet_cfg(64), &g, |&v| {
            assert_eq!(v % 2, 0);
        });
    }

    #[test]
    fn overtight_filter_is_reported() {
        let g = gens::usize_range(0, 1_000_000).filter("impossible", |_| false);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check("starved", &quiet_cfg(16), &g, |_| {});
        }));
        let msg = match result {
            Err(p) => *p.downcast::<String>().unwrap(),
            Ok(()) => panic!("should have reported a starved generator"),
        };
        assert!(msg.contains("too restrictive"), "unexpected report: {msg}");
    }

    #[test]
    fn mapped_and_composed_generators_shrink() {
        // A composed generator (tuple of mapped parts) still shrinks to
        // the joint minimum.
        let g = gens::tuple2(gens::usize_range(0, 50).map(|v| v * 2), gens::bytes(0, 20));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check("tuple_fails", &quiet_cfg(64), &g, |(a, b)| {
                assert!(*a < 20 || b.len() < 2);
            });
        }));
        let msg = match result {
            Err(p) => *p.downcast::<String>().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(
            msg.contains("minimal counterexample: (20, [0, 0])"),
            "unexpected report: {msg}"
        );
    }

    #[test]
    fn frozen_tape_replays_exactly_and_pads_with_zero() {
        let mut t = Tape::frozen(vec![5, 6]);
        assert_eq!(t.draw_u64(), 5);
        assert_eq!(t.draw_u64(), 6);
        assert_eq!(t.draw_u64(), 0);
        assert_eq!(t.into_log(), vec![5, 6, 0]);
    }
}
