//! Zero-external-dependency development harness for the workspace.
//!
//! The build environment is hermetic: no network, no crates.io registry.
//! This crate replaces the three external dev dependencies the workspace
//! used to pull in, with deterministic in-repo implementations:
//!
//! * [`rng`] — a seedable xoshiro256**-class PRNG behind a small
//!   `RngCore`-like trait ([`rng::RandomSource`]), used by `jcasim`'s
//!   `SecureRandom` simulation and by the property harness;
//! * [`prop`] — a property-testing harness with composable generators,
//!   seeded shrinking, configurable case counts and failure-seed replay;
//! * [`bench`] — a benchmark harness (warmup, N iterations, min / median /
//!   p95, peak-RSS sampling where available) with machine-readable JSON
//!   output for the Table 1 / RQ5 trajectory data;
//! * [`json`] — the minimal JSON reader/writer backing the bench output,
//!   so reports round-trip through a parser in tests;
//! * [`histogram`] — an HDR-style log-linear latency histogram
//!   (O(1) record, bounded-error quantiles, order-insensitive merge)
//!   for workloads with millions of samples, where [`bench`]'s
//!   sample-vector statistics would not scale;
//! * [`pacing`] — open- and closed-loop pacing primitives for load
//!   generation, with coordinated-omission-aware scheduling.
//!
//! Everything here is `std`-only by design; adding an external dependency
//! to this crate defeats its purpose.

pub mod bench;
pub mod histogram;
pub mod json;
pub mod pacing;
pub mod prop;
pub mod rng;
