//! The benchmark harness: warmup, N timed samples, min / mean / median /
//! p95 / max, peak-RSS sampling where the platform exposes it, and a
//! machine-readable `BENCH_<suite>.json` report.
//!
//! Unlike a statistical benchmarking framework, this harness optimizes
//! for *hermetic reproducibility*: no external dependencies, simple
//! robust statistics, and a JSON trajectory file that the evaluation
//! scripts (Table 1 runtime/memory, RQ5 performance) can parse offline.
//!
//! ```no_run
//! let mut h = devharness::bench::Harness::new("example");
//! h.group("table1");
//! h.bench("uc01_pbe", || { /* workload */ });
//! let path = h.finish().unwrap();
//! println!("report at {}", path.display());
//! ```

use std::hint::black_box;
use std::time::Instant;

use crate::json::{Json, JsonError};

/// Re-export so bench binaries don't need a direct `std::hint` import.
pub use std::hint::black_box as opaque;

/// Tuning knobs for a bench run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Untimed iterations before sampling begins.
    pub warmup_iters: u32,
    /// Number of timed samples per benchmark.
    pub samples: u32,
    /// Target wall-clock time per sample; the inner iteration count is
    /// calibrated so one sample takes at least this long.
    pub min_sample_nanos: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            samples: 20,
            min_sample_nanos: 1_000_000, // 1 ms
        }
    }
}

impl BenchConfig {
    /// The default config with `DEVHARNESS_BENCH_SAMPLES` and
    /// `DEVHARNESS_BENCH_WARMUP` environment overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = BenchConfig::default();
        if let Some(n) = env_u32("DEVHARNESS_BENCH_SAMPLES") {
            cfg.samples = n.max(1);
        }
        if let Some(n) = env_u32("DEVHARNESS_BENCH_WARMUP") {
            cfg.warmup_iters = n;
        }
        cfg
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The measured statistics for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub name: String,
    /// Number of timed samples taken.
    pub samples: u32,
    /// Inner iterations per sample (calibrated).
    pub iters_per_sample: u32,
    /// Fastest per-iteration time, nanoseconds.
    pub min_ns: u64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: u64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: u64,
    /// Slowest per-iteration time, nanoseconds.
    pub max_ns: u64,
    /// Process peak resident set size after the run, kilobytes, where the
    /// platform exposes it (see [`peak_rss`]).
    pub peak_rss_kb: Option<u64>,
    /// Which platform facility supplied `peak_rss_kb` (the
    /// [`RssSource`] name), absent when no source was available.
    pub peak_rss_source: Option<String>,
}

impl BenchResult {
    /// Serializes to the JSON object stored in the report file.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("samples".to_owned(), Json::Num(self.samples as f64)),
            (
                "iters_per_sample".to_owned(),
                Json::Num(self.iters_per_sample as f64),
            ),
            ("min_ns".to_owned(), Json::Num(self.min_ns as f64)),
            ("mean_ns".to_owned(), Json::Num(self.mean_ns as f64)),
            ("median_ns".to_owned(), Json::Num(self.median_ns as f64)),
            ("p95_ns".to_owned(), Json::Num(self.p95_ns as f64)),
            ("max_ns".to_owned(), Json::Num(self.max_ns as f64)),
        ];
        members.push((
            "peak_rss_kb".to_owned(),
            match self.peak_rss_kb {
                Some(kb) => Json::Num(kb as f64),
                None => Json::Null,
            },
        ));
        members.push((
            "peak_rss_source".to_owned(),
            match &self.peak_rss_source {
                Some(source) => Json::Str(source.clone()),
                None => Json::Null,
            },
        ));
        Json::Obj(members)
    }

    /// Parses a result back out of its JSON form.
    pub fn from_json(v: &Json) -> Result<BenchResult, String> {
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{k}'"))
        };
        Ok(BenchResult {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing field 'name'")?
                .to_owned(),
            samples: field("samples")? as u32,
            iters_per_sample: field("iters_per_sample")? as u32,
            min_ns: field("min_ns")?,
            mean_ns: field("mean_ns")?,
            median_ns: field("median_ns")?,
            p95_ns: field("p95_ns")?,
            max_ns: field("max_ns")?,
            peak_rss_kb: v.get("peak_rss_kb").and_then(Json::as_u64),
            peak_rss_source: v
                .get("peak_rss_source")
                .and_then(Json::as_str)
                .map(str::to_owned),
        })
    }
}

/// A whole-suite report: what `BENCH_<suite>.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub suite: String,
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// Serializes the report document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".to_owned(), Json::Str(self.suite.clone())),
            (
                "results".to_owned(),
                Json::Arr(self.results.iter().map(BenchResult::to_json).collect()),
            ),
        ])
    }

    /// Parses a report document from its JSON text.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let suite = doc
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing field 'suite'")?
            .to_owned();
        let results = doc
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("missing field 'results'")?
            .iter()
            .map(BenchResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport { suite, results })
    }
}

/// Which platform facility supplied a peak-RSS reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RssSource {
    /// `getrusage(RUSAGE_SELF)` — the primary source: one syscall, no
    /// procfs dependency, reported directly in kilobytes on Linux.
    Getrusage,
    /// The `VmHWM` line of `/proc/self/status` — the fallback when
    /// `getrusage` is unavailable or reports nothing.
    ProcStatus,
}

impl RssSource {
    /// Stable lowercase name recorded in `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            RssSource::Getrusage => "getrusage",
            RssSource::ProcStatus => "proc_status",
        }
    }
}

/// A peak-RSS reading together with the facility that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeakRss {
    /// Peak resident set size, kilobytes.
    pub kb: u64,
    /// Where the reading came from.
    pub source: RssSource,
}

/// `getrusage(RUSAGE_SELF).ru_maxrss`, in kilobytes, declared directly
/// against the C library std already links — no external crate. The
/// layout is the 64-bit Linux `struct rusage`: two `timeval`s followed
/// by `ru_maxrss` and thirteen more longs.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn getrusage_maxrss_kb() -> Option<u64> {
    #[repr(C)]
    struct Rusage {
        ru_utime: [i64; 2],
        ru_stime: [i64; 2],
        ru_maxrss: i64,
        _rest: [i64; 13],
    }
    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }
    const RUSAGE_SELF: i32 = 0;
    let mut usage = Rusage {
        ru_utime: [0; 2],
        ru_stime: [0; 2],
        ru_maxrss: 0,
        _rest: [0; 13],
    };
    let rc = unsafe { getrusage(RUSAGE_SELF, &mut usage) };
    if rc == 0 && usage.ru_maxrss > 0 {
        Some(usage.ru_maxrss as u64)
    } else {
        None
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
fn getrusage_maxrss_kb() -> Option<u64> {
    None
}

fn proc_status_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Reads the process peak RSS: `getrusage` first, the `VmHWM` line of
/// `/proc/self/status` as the fallback; `None` where neither exists.
pub fn peak_rss() -> Option<PeakRss> {
    if let Some(kb) = getrusage_maxrss_kb() {
        return Some(PeakRss {
            kb,
            source: RssSource::Getrusage,
        });
    }
    proc_status_hwm_kb().map(|kb| PeakRss {
        kb,
        source: RssSource::ProcStatus,
    })
}

/// Reads the process peak RSS in kilobytes, if the platform exposes it.
/// See [`peak_rss`] for the reading plus its source.
pub fn peak_rss_kb() -> Option<u64> {
    peak_rss().map(|p| p.kb)
}

/// Runs one benchmark under `cfg` and returns its statistics.
pub fn run<F: FnMut()>(name: &str, cfg: &BenchConfig, mut f: F) -> BenchResult {
    for _ in 0..cfg.warmup_iters {
        f();
    }
    // Calibrate the inner iteration count so a sample meets the floor.
    let probe_start = Instant::now();
    f();
    let probe_ns = probe_start.elapsed().as_nanos().max(1) as u64;
    let iters_per_sample = if probe_ns >= cfg.min_sample_nanos {
        1
    } else {
        (cfg.min_sample_nanos / probe_ns).clamp(1, 1_000_000) as u32
    };
    let mut per_iter_ns: Vec<u64> = Vec::with_capacity(cfg.samples as usize);
    for _ in 0..cfg.samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(&mut f)();
        }
        let total = start.elapsed().as_nanos() as u64;
        per_iter_ns.push(total / iters_per_sample as u64);
    }
    per_iter_ns.sort_unstable();
    let n = per_iter_ns.len();
    let mean = per_iter_ns.iter().sum::<u64>() / n as u64;
    let rss = peak_rss();
    BenchResult {
        name: name.to_owned(),
        samples: cfg.samples,
        iters_per_sample,
        min_ns: per_iter_ns[0],
        mean_ns: mean,
        median_ns: per_iter_ns[n / 2],
        p95_ns: per_iter_ns[percentile_index(n, 95)],
        max_ns: per_iter_ns[n - 1],
        peak_rss_kb: rss.map(|p| p.kb),
        peak_rss_source: rss.map(|p| p.source.name().to_owned()),
    }
}

fn percentile_index(n: usize, pct: usize) -> usize {
    ((n * pct).div_ceil(100)).saturating_sub(1).min(n - 1)
}

/// Collects [`BenchResult`]s across groups and writes the suite report.
pub struct Harness {
    suite: String,
    config: BenchConfig,
    group: Option<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness for the given suite, configured from the environment.
    pub fn new(suite: &str) -> Self {
        Self::with_config(suite, BenchConfig::from_env())
    }

    /// A harness with an explicit configuration.
    pub fn with_config(suite: &str, config: BenchConfig) -> Self {
        Harness {
            suite: suite.to_owned(),
            config,
            group: None,
            results: Vec::new(),
        }
    }

    /// Starts a named group; subsequent benchmarks get a `group/` prefix.
    pub fn group(&mut self, name: &str) {
        self.group = Some(name.to_owned());
    }

    /// Runs one benchmark and records (and prints) its statistics.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        let full = match &self.group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_owned(),
        };
        let result = run(&full, &self.config, f);
        println!(
            "{:<44} min {:>12} ns   median {:>12} ns   p95 {:>12} ns",
            result.name, result.min_ns, result.median_ns, result.p95_ns
        );
        self.results.push(result);
    }

    /// The accumulated report.
    pub fn report(&self) -> BenchReport {
        BenchReport {
            suite: self.suite.clone(),
            results: self.results.clone(),
        }
    }

    /// Writes `BENCH_<suite>.json` (honouring `DEVHARNESS_BENCH_DIR`) and
    /// returns its path.
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var("DEVHARNESS_BENCH_DIR").unwrap_or_else(|_| ".".to_owned());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.report().to_json().to_string())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BenchConfig {
        BenchConfig {
            warmup_iters: 1,
            samples: 5,
            min_sample_nanos: 1_000,
        }
    }

    #[test]
    fn run_produces_ordered_stats() {
        let r = run("t", &quick_config(), || {
            black_box((0..100).sum::<u64>());
        });
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let report = BenchReport {
            suite: "unit".to_owned(),
            results: vec![
                BenchResult {
                    name: "g/a".to_owned(),
                    samples: 20,
                    iters_per_sample: 8,
                    min_ns: 100,
                    mean_ns: 120,
                    median_ns: 115,
                    p95_ns: 190,
                    max_ns: 200,
                    peak_rss_kb: Some(4096),
                    peak_rss_source: Some("getrusage".to_owned()),
                },
                BenchResult {
                    name: "g/b".to_owned(),
                    samples: 20,
                    iters_per_sample: 1,
                    min_ns: 1,
                    mean_ns: 2,
                    median_ns: 2,
                    p95_ns: 3,
                    max_ns: 3,
                    peak_rss_kb: None,
                    peak_rss_source: None,
                },
            ],
        };
        let text = report.to_json().to_string();
        assert_eq!(BenchReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn harness_groups_and_collects() {
        let mut h = Harness::with_config("unit", quick_config());
        h.group("g1");
        h.bench("a", || {
            black_box(1 + 1);
        });
        h.group("g2");
        h.bench("b", || {
            black_box(2 + 2);
        });
        let report = h.report();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].name, "g1/a");
        assert_eq!(report.results[1].name, "g2/b");
    }

    #[test]
    fn percentile_index_bounds() {
        assert_eq!(percentile_index(1, 95), 0);
        assert_eq!(percentile_index(20, 95), 18);
        assert_eq!(percentile_index(100, 95), 94);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_available_on_linux() {
        let p = peak_rss().expect("linux exposes peak RSS");
        assert!(p.kb > 0);
        // 64-bit Linux should serve the reading via the getrusage
        // syscall, not the procfs fallback.
        if cfg!(target_pointer_width = "64") {
            assert_eq!(p.source, RssSource::Getrusage);
        }
        assert_eq!(peak_rss_kb(), Some(p.kb));
        // Both facilities yield a positive reading when present. (They
        // need not agree — sandboxed kernels account procfs VmHWM and
        // getrusage differently — which is exactly why the JSON records
        // the source used.)
        if let Some(g) = getrusage_maxrss_kb() {
            assert!(g > 0);
        }
        if let Some(v) = proc_status_hwm_kb() {
            assert!(v > 0);
        }
    }
}
