//! Deterministic, seedable pseudo-random number generation.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 so that any 64-bit seed — including zero — expands to a
//! well-mixed 256-bit state. Both algorithms are public-domain reference
//! constructions reimplemented here from their specifications.
//!
//! [`RandomSource`] is the `RngCore`-like trait the rest of the workspace
//! programs against; [`Xoshiro256`] is the one concrete implementation.

/// The `RngCore`-like trait: a source of uniform pseudo-random bits.
///
/// All provided methods derive from [`RandomSource::next_u64`], so an
/// implementation only has to supply that.
pub trait RandomSource {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (upper half of a 64-bit draw, which for
    /// xoshiro-family generators is the better-mixed half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `out` with uniform bytes.
    fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift
    /// reduction (with the rare rejection step for exact uniformity).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire 2019: debiased multiply-shift.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn next_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.next_below(span) as i64)
    }

    /// A uniform boolean.
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 step — used for seed expansion and for deriving per-case
/// seeds in the property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256**: a small, fast, high-quality PRNG (period 2^256 − 1).
///
/// Not cryptographically secure — it backs the *simulated* JCA
/// `SecureRandom` and the test/bench harnesses, where determinism and
/// statistical quality are what matter.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Seeds from operating-system entropy (`/dev/urandom`), falling back
    /// to a time-and-address-derived seed on platforms without it.
    pub fn from_entropy() -> Self {
        Self::seed_from_u64(os_entropy_seed())
    }
}

impl RandomSource for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives a 64-bit seed from OS entropy, best effort and non-panicking.
fn os_entropy_seed() -> u64 {
    use std::io::Read;
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        let mut buf = [0u8; 8];
        if f.read_exact(&mut buf).is_ok() {
            return u64::from_le_bytes(buf);
        }
    }
    // Fallback: mix wall-clock time with an ASLR-influenced address.
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let marker = 0u8;
    let addr = &marker as *const u8 as u64;
    let mut sm = t ^ addr.rotate_left(32);
    splitmix64(&mut sm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        // Raw xoshiro breaks on an all-zero state; SplitMix64 expansion
        // must prevent that.
        let mut r = Xoshiro256::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Xoshiro256::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        let mut r2 = Xoshiro256::seed_from_u64(7);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn next_below_is_in_range_and_hits_all_residues() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_range_handles_negative_bounds() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for _ in 0..200 {
            let v = r.next_range_i64(-1000, 1000);
            assert!((-1000..1000).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(11);
        for _ in 0..100 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn entropy_seeding_does_not_panic() {
        let mut r = Xoshiro256::from_entropy();
        let _ = r.next_u64();
    }
}
