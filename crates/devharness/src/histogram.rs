//! An HDR-style log-linear latency histogram.
//!
//! The bench harness's summary statistics ([`crate::bench`]) are built
//! from a full in-memory sample vector, which is fine for twenty timed
//! samples but not for a load harness recording millions of requests.
//! This histogram records a `u64` sample (nanoseconds, bytes, …) in
//! O(1) into a fixed 1920-bucket table and answers quantile queries
//! with a bounded relative error, like HdrHistogram but with none of
//! its configurability — one precision, zero dependencies.
//!
//! Bucketing is log-linear: values below 64 get exact unit buckets;
//! above that, each power of two is split into 32 linear sub-buckets,
//! so the reported value of any sample is at most [`RELATIVE_ERROR`]
//! (3.125 %) above the true one. The whole `u64` range is covered.
//!
//! Determinism: a histogram is a pure function of the multiset of
//! recorded samples. [`Histogram::merge`] is commutative and
//! associative, so per-client histograms folded in any order give the
//! identical aggregate — the property the load harness's report
//! depends on when client threads race.

use crate::json::Json;

/// log2 of the linear sub-buckets per power of two.
const LOG2_SUB: u32 = 5;
/// Linear sub-buckets per power of two (32).
const SUB: u64 = 1 << LOG2_SUB;
/// Total buckets needed to cover the full `u64` range: 2·SUB exact
/// unit buckets, then 32 sub-buckets for each of the remaining 58
/// doublings.
const BUCKETS: usize = ((64 - LOG2_SUB as usize) + 1) * SUB as usize;

/// Upper bound on the relative error of any reported quantile value:
/// a bucket spans at most `1/SUB` of its value range.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// Maps a sample to its bucket index. Monotonic: `v <= w` implies
/// `index(v) <= index(w)`.
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let exp = 63 - u64::leading_zeros(v) as u64; // >= LOG2_SUB + 1
    let shift = exp - LOG2_SUB as u64;
    let mantissa = (v >> shift) - SUB;
    ((shift + 1) * SUB + mantissa) as usize
}

/// The largest value that maps into bucket `index` — what quantile
/// queries report, so the answer is always an upper bound on the true
/// sample at that rank.
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB {
        return index;
    }
    let shift = index / SUB - 1;
    let mantissa = index % SUB;
    ((mantissa + SUB) << shift) + ((1u64 << shift) - 1)
}

/// A fixed-precision log-linear histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={}, min={}, p50={}, p99={}, max={})",
            self.count,
            self.min(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max()
        )
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.record_n(sample, 1);
    }

    /// Records `n` occurrences of `sample`.
    pub fn record_n(&mut self, sample: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(sample)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(sample.saturating_mul(n));
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, exact. 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, exact. 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound within
    /// [`RELATIVE_ERROR`] of the sample at rank `ceil(q · count)`,
    /// clamped into `[min, max]` so `quantile(0.0) == min()` and
    /// `quantile(1.0) == max()` exactly. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The interval the true sample at quantile `q` lies in: the value
    /// range of the bucket holding rank `ceil(q · count)`, intersected
    /// with `[min, max]`. The upper bound equals [`Histogram::quantile`];
    /// the interval width is at most [`RELATIVE_ERROR`] of the value
    /// (plus one for the half-open bucket edge), which is the bound two
    /// independent histograms over related samples can be compared
    /// under: if the same requests were timed on both sides, the lower
    /// bound of the larger side can never exceed the upper bound of the
    /// smaller side. `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let hi = bucket_upper_bound(i).clamp(self.min, self.max);
                let lo = match i {
                    0 => 0,
                    _ => (bucket_upper_bound(i - 1) + 1).clamp(self.min, self.max),
                };
                return (lo.min(hi), hi);
            }
        }
        (self.max, self.max)
    }

    /// Folds `other` in. Commutative and associative: merging
    /// per-worker histograms in any order yields the same result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the summary plus the sparse bucket table. The
    /// rendering is a pure function of the recorded multiset, so two
    /// histograms over the same samples serialize byte-identically.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
            .collect();
        Json::Obj(vec![
            ("count".to_owned(), Json::Num(self.count as f64)),
            ("sum".to_owned(), Json::Num(self.sum as f64)),
            ("min".to_owned(), Json::Num(self.min() as f64)),
            ("max".to_owned(), Json::Num(self.max as f64)),
            ("p50".to_owned(), Json::Num(self.quantile(0.50) as f64)),
            ("p95".to_owned(), Json::Num(self.quantile(0.95) as f64)),
            ("p99".to_owned(), Json::Num(self.quantile(0.99) as f64)),
            ("buckets".to_owned(), Json::Arr(buckets)),
        ])
    }

    /// Rebuilds a histogram from its [`Histogram::to_json`] form.
    ///
    /// # Errors
    ///
    /// A missing member, an out-of-range bucket index, or a summary
    /// that disagrees with the bucket table.
    pub fn from_json(doc: &Json) -> Result<Histogram, String> {
        let field = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram: missing or non-integer `{k}`"))
        };
        let mut h = Histogram::new();
        let buckets = doc
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram: missing `buckets`")?;
        for entry in buckets {
            let pair = entry.as_arr().ok_or("histogram: bucket is not a pair")?;
            let (i, c) = match (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) {
                (Some(i), Some(c)) if (i as usize) < BUCKETS => (i as usize, c),
                _ => return Err("histogram: malformed bucket pair".to_owned()),
            };
            h.counts[i] += c;
            h.count += c;
        }
        if h.count != field("count")? {
            return Err("histogram: count disagrees with the bucket table".to_owned());
        }
        h.sum = field("sum")?;
        h.max = field("max")?;
        h.min = if h.count == 0 {
            u64::MAX
        } else {
            field("min")?
        };
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, Xoshiro256};

    /// Error allowed on a reported quantile: the bucketing bound plus
    /// one bucket of slack for the rank landing on a bucket edge.
    fn close(reported: u64, expected: u64) -> bool {
        let bound = (expected as f64 * RELATIVE_ERROR).max(1.0) as u64 + 1;
        reported >= expected.saturating_sub(bound) && reported <= expected + bound
    }

    #[test]
    fn bucket_index_is_monotonic_and_bounded() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 32,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotonic at {v}");
            assert!(i < BUCKETS, "index {i} out of range at {v}");
            assert!(
                bucket_upper_bound(i) >= v,
                "upper bound below the value at {v}"
            );
            last = i;
        }
        // Exact unit buckets for small values.
        for v in 0..128u64 {
            assert!(bucket_upper_bound(bucket_index(v)) >= v);
            if v < 64 {
                assert_eq!(bucket_upper_bound(bucket_index(v)), v);
            }
        }
    }

    #[test]
    fn quantiles_are_exact_on_small_values() {
        // Values below 2·SUB live in unit buckets: quantiles are exact.
        let mut h = Histogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 25);
        assert_eq!(h.quantile(0.02), 1);
        assert_eq!(h.quantile(1.0), 50);
        assert_eq!(h.count(), 50);
        assert_eq!(h.sum(), 50 * 51 / 2);
        assert_eq!(h.mean(), h.sum() / 50);
    }

    #[test]
    fn quantiles_match_known_uniform_distribution_within_bound() {
        // 1..=100_000 once each: the q-quantile is q·100_000.
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expected) in [
            (0.50, 50_000u64),
            (0.90, 90_000),
            (0.95, 95_000),
            (0.99, 99_000),
            (0.999, 99_900),
        ] {
            let got = h.quantile(q);
            assert!(close(got, expected), "q{q}: got {got}, want ~{expected}");
            // The reported value is never below the true rank value by
            // more than one bucket — it is an upper-bound scheme.
            assert!(got + 1 >= expected || close(got, expected));
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn quantiles_match_known_bimodal_distribution() {
        // 90% fast (~1000), 10% slow (~1_000_000): p50/p90 sit in the
        // fast mode, p95/p99 in the slow one — the exact shape a
        // latency histogram exists to expose.
        let mut h = Histogram::new();
        h.record_n(1_000, 9_000);
        h.record_n(1_000_000, 1_000);
        assert!(close(h.quantile(0.50), 1_000));
        assert!(close(h.quantile(0.90), 1_000));
        assert!(close(h.quantile(0.95), 1_000_000));
        assert!(close(h.quantile(0.99), 1_000_000));
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1_000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let parts: Vec<Histogram> = (0..4)
            .map(|_| {
                let mut h = Histogram::new();
                for _ in 0..500 {
                    h.record(rng.next_below(1 << 30));
                }
                h
            })
            .collect();

        // (((a+b)+c)+d)
        let mut left = Histogram::new();
        for p in &parts {
            left.merge(p);
        }
        // (a+(b+(c+d)))
        let mut right = Histogram::new();
        for p in parts.iter().rev() {
            right.merge(p);
        }
        // ((a+c)+(d+b))
        let mut shuffled = Histogram::new();
        for i in [0usize, 2, 3, 1] {
            shuffled.merge(&parts[i]);
        }
        for other in [&right, &shuffled] {
            assert_eq!(left.count(), other.count());
            assert_eq!(left.sum(), other.sum());
            assert_eq!(left.min(), other.min());
            assert_eq!(left.max(), other.max());
            assert_eq!(
                left.to_json().to_string(),
                other.to_json().to_string(),
                "merge order changed the serialized histogram"
            );
        }
    }

    #[test]
    fn seeded_replay_is_deterministic() {
        // Recording the same seeded sample stream twice — even split
        // across a different number of per-thread sub-histograms —
        // serializes byte-identically.
        let samples: Vec<u64> = {
            let mut rng = Xoshiro256::seed_from_u64(42);
            (0..2_000).map(|_| rng.next_below(10_000_000)).collect()
        };
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut merged = Histogram::new();
        for chunk in samples.chunks(123) {
            let mut part = Histogram::new();
            for &s in chunk {
                part.record(s);
            }
            merged.merge(&part);
        }
        assert_eq!(whole.to_json().to_string(), merged.to_json().to_string());
    }

    #[test]
    fn json_roundtrip_preserves_quantiles() {
        let mut h = Histogram::new();
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..1_000 {
            h.record(rng.next_below(1 << 40));
        }
        let doc = h.to_json();
        let back = Histogram::from_json(&doc).expect("roundtrips");
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
        assert_eq!(doc.to_string(), back.to_json().to_string());
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.99), 0);
        let back = Histogram::from_json(&h.to_json()).expect("empty roundtrips");
        assert_eq!(back.count(), 0);
    }

    #[test]
    fn quantile_bounds_bracket_the_true_rank_value() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expected) in [(0.50, 50_000u64), (0.95, 95_000), (0.99, 99_000)] {
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                lo <= expected && expected <= hi,
                "q{q}: {expected} outside [{lo}, {hi}]"
            );
            assert_eq!(hi, h.quantile(q), "upper bound must equal quantile()");
            // The interval is at most one bucket wide: RELATIVE_ERROR
            // of the value, plus one for the half-open edge.
            assert!(
                (hi - lo) as f64 <= hi as f64 * RELATIVE_ERROR + 1.0,
                "q{q}: interval [{lo}, {hi}] wider than the error bound"
            );
        }
    }

    #[test]
    fn quantile_bounds_are_exact_on_unit_buckets_and_empty() {
        let mut h = Histogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_bounds(0.5), (25, 25));
        assert_eq!(h.quantile_bounds(1.0), (50, 50));
        assert_eq!(Histogram::new().quantile_bounds(0.99), (0, 0));
    }

    #[test]
    fn quantile_bounds_of_componentwise_smaller_samples_stay_consistent() {
        // Server-side wall time is a component of what a client times:
        // per sample, server <= client. The comparison the load harness
        // makes — server lower bound <= client upper bound at the same
        // quantile — must hold for any such pair of streams.
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut server = Histogram::new();
        let mut client = Histogram::new();
        for _ in 0..5_000 {
            let s = rng.next_below(40_000_000);
            let overhead = rng.next_below(3_000_000);
            server.record(s);
            client.record(s + overhead);
        }
        for q in [0.5, 0.9, 0.99] {
            let (s_lo, _) = server.quantile_bounds(q);
            let (_, c_hi) = client.quantile_bounds(q);
            assert!(
                s_lo <= c_hi,
                "q{q}: server lower bound {s_lo} exceeds client upper bound {c_hi}"
            );
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) == u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturated
    }
}
