//! Allocator-level memory accounting: the missing half of Table 1.
//!
//! The paper reports *runtime and memory* per use case; the telemetry
//! layer measures wall time with [`crate::telemetry::SpanTimer`], but a
//! whole-process peak RSS cannot attribute memory to a use case, let
//! alone to a pipeline phase. This module closes that gap with a
//! zero-dependency `#[global_allocator]` wrapper:
//!
//! * [`TrackingAlloc`] — forwards every allocation to
//!   [`std::alloc::System`] and maintains **thread-local** counters:
//!   bytes allocated / freed, allocation count, live bytes and a
//!   running peak of live bytes. Thread-locality keeps the hot path a
//!   handful of `Cell` operations — no atomics, no locks, no contention
//!   — and is exactly the right scope because one template generation
//!   runs on one thread.
//! * [`AllocScope`] — an RAII measurement window over the current
//!   thread's counters. [`AllocScope::finish`] yields the
//!   [`AllocDelta`] of everything allocated inside the scope, with a
//!   *scope-relative* peak of live bytes. Scopes nest; a scope dropped
//!   on an error path restores the enclosing scope's peak tracking
//!   exactly as a finished one does.
//!
//! Determinism: every [`AllocDelta`] field depends only on the
//! allocation/free sequence executed *inside* the scope on its own
//! thread — not on which worker ran the job before, nor on absolute
//! heap state — so per-phase deltas of a warmed engine are identical
//! across thread counts and input orders (the `memtrack_trace` suite
//! proves it).
//!
//! Installing the allocator is the binary's choice, not the library's:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cognicrypt_core::memtrack::TrackingAlloc =
//!     cognicrypt_core::memtrack::TrackingAlloc::new();
//! ```
//!
//! Without it every counter stays zero and the telemetry layer reports
//! zero deltas — observability degrades, behaviour never changes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Set by the first tracked allocation; lets reports distinguish "no
/// allocations measured" from "the tracking allocator is not installed".
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Process-wide accounting is opt-in: a long-lived daemon needs a
/// *daemon-lifetime* peak that spans every worker thread, but the
/// cross-thread atomics that requires would tax the allocation hot path
/// of every short-lived CLI run that never asks for them.
static PROCESS_ENABLED: AtomicBool = AtomicBool::new(false);
/// Bytes allocated process-wide since [`enable_process_stats`].
static PROCESS_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Net live bytes process-wide since [`enable_process_stats`] (signed:
/// memory allocated before enablement may be freed after it).
static PROCESS_LIVE: AtomicI64 = AtomicI64::new(0);
/// Running maximum of [`PROCESS_LIVE`].
static PROCESS_PEAK: AtomicI64 = AtomicI64::new(0);

/// The per-thread counters behind the allocator and [`AllocScope`].
struct Tls {
    /// Total bytes allocated on this thread.
    allocated: Cell<u64>,
    /// Total bytes freed on this thread.
    freed: Cell<u64>,
    /// Number of allocations (incl. the allocating half of a realloc).
    allocations: Cell<u64>,
    /// Number of frees (incl. the freeing half of a realloc).
    frees: Cell<u64>,
    /// Net live bytes from this thread's perspective. Signed: memory
    /// allocated here may be freed on another thread and vice versa.
    live: Cell<i64>,
    /// Running maximum of `live` since the innermost open scope began
    /// (or since thread start outside any scope).
    peak: Cell<i64>,
    /// Currently open [`AllocScope`]s on this thread.
    scope_depth: Cell<usize>,
}

thread_local! {
    static TLS: Tls = const {
        Tls {
            allocated: Cell::new(0),
            freed: Cell::new(0),
            allocations: Cell::new(0),
            frees: Cell::new(0),
            live: Cell::new(0),
            peak: Cell::new(0),
            scope_depth: Cell::new(0),
        }
    };
}

#[inline]
fn record_alloc(size: usize) {
    if !ACTIVE.load(Ordering::Relaxed) {
        ACTIVE.store(true, Ordering::Relaxed);
    }
    if PROCESS_ENABLED.load(Ordering::Relaxed) {
        PROCESS_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
        let live = PROCESS_LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PROCESS_PEAK.fetch_max(live, Ordering::Relaxed);
    }
    // try_with: allocations during TLS teardown must not abort.
    let _ = TLS.try_with(|t| {
        let n = size as u64;
        t.allocated.set(t.allocated.get().wrapping_add(n));
        t.allocations.set(t.allocations.get() + 1);
        let live = t.live.get() + size as i64;
        t.live.set(live);
        if live > t.peak.get() {
            t.peak.set(live);
        }
    });
}

#[inline]
fn record_free(size: usize) {
    if PROCESS_ENABLED.load(Ordering::Relaxed) {
        PROCESS_LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    }
    let _ = TLS.try_with(|t| {
        t.freed.set(t.freed.get().wrapping_add(size as u64));
        t.frees.set(t.frees.get() + 1);
        t.live.set(t.live.get() - size as i64);
    });
}

/// A counting wrapper over the system allocator. Install it with
/// `#[global_allocator]` in a binary to activate memory accounting;
/// see the module docs.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// `const` constructor for `static` allocator declarations.
    pub const fn new() -> Self {
        TrackingAlloc
    }
}

// SAFETY: every method forwards to `System` verbatim; the bookkeeping
// around the forwarded call never allocates (plain `Cell` arithmetic)
// and never observes the returned pointer beyond a null check.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            record_free(layout.size());
            record_alloc(new_size);
        }
        new_ptr
    }
}

/// Whether any allocation has been routed through [`TrackingAlloc`] in
/// this process — i.e. whether the binary installed it.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Turns on process-wide accounting (see [`process_stats`]). Counters
/// start from zero *at the moment of the call*, so everything they
/// report is relative to enablement — exactly the daemon-lifetime
/// window a resident process wants. Enabling is idempotent and cannot
/// be undone; without [`TrackingAlloc`] installed the counters simply
/// stay zero.
pub fn enable_process_stats() {
    PROCESS_ENABLED.store(true, Ordering::Relaxed);
}

/// A snapshot of the process-wide counters accumulated since
/// [`enable_process_stats`] — the cross-thread aggregate a daemon
/// reports as its lifetime memory figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessStats {
    /// Bytes allocated on any thread since enablement.
    pub allocated_bytes: u64,
    /// Net live bytes since enablement (signed: frees of pre-enablement
    /// memory count against it).
    pub live_bytes: i64,
    /// Running maximum of `live_bytes` — the daemon-lifetime peak.
    pub peak_live_bytes: i64,
}

/// Reads the process-wide counters, or `None` when
/// [`enable_process_stats`] was never called.
pub fn process_stats() -> Option<ProcessStats> {
    PROCESS_ENABLED
        .load(Ordering::Relaxed)
        .then(|| ProcessStats {
            allocated_bytes: PROCESS_ALLOCATED.load(Ordering::Relaxed),
            live_bytes: PROCESS_LIVE.load(Ordering::Relaxed),
            peak_live_bytes: PROCESS_PEAK.load(Ordering::Relaxed),
        })
}

/// A snapshot of the current thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadStats {
    /// Total bytes allocated on this thread.
    pub allocated_bytes: u64,
    /// Total bytes freed on this thread.
    pub freed_bytes: u64,
    /// Number of allocations on this thread.
    pub allocations: u64,
    /// Number of frees on this thread.
    pub frees: u64,
    /// Net live bytes from this thread's perspective (may be negative
    /// when this thread frees memory allocated elsewhere).
    pub live_bytes: i64,
    /// Running peak of `live_bytes` since the innermost open scope
    /// began.
    pub peak_live_bytes: i64,
    /// Currently open [`AllocScope`]s on this thread.
    pub scope_depth: usize,
}

/// Reads the current thread's counters.
pub fn thread_stats() -> ThreadStats {
    TLS.with(|t| ThreadStats {
        allocated_bytes: t.allocated.get(),
        freed_bytes: t.freed.get(),
        allocations: t.allocations.get(),
        frees: t.frees.get(),
        live_bytes: t.live.get(),
        peak_live_bytes: t.peak.get(),
        scope_depth: t.scope_depth.get(),
    })
}

/// What one [`AllocScope`] measured: the allocation activity of the
/// current thread between [`AllocScope::enter`] and
/// [`AllocScope::finish`] (or drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Bytes allocated inside the scope.
    pub allocated_bytes: u64,
    /// Bytes freed inside the scope.
    pub freed_bytes: u64,
    /// Allocations inside the scope.
    pub allocations: u64,
    /// Peak of live bytes *relative to the scope's start*: the largest
    /// net growth the scope ever reached. Depends only on the in-scope
    /// allocation/free sequence, never on prior heap state — the
    /// determinism anchor.
    pub peak_live_bytes: u64,
}

impl AllocDelta {
    /// Folds another delta in: bytes and counts add, peaks take the
    /// maximum (the same merge discipline as the metrics registry, so
    /// folding per-worker deltas is order-insensitive).
    pub fn merge(&mut self, other: &AllocDelta) {
        self.allocated_bytes += other.allocated_bytes;
        self.freed_bytes += other.freed_bytes;
        self.allocations += other.allocations;
        self.peak_live_bytes = self.peak_live_bytes.max(other.peak_live_bytes);
    }
}

/// RAII measurement window over the current thread's allocation
/// counters.
///
/// On `enter` the scope snapshots the counters and resets the running
/// peak to the current live level; `finish` returns the [`AllocDelta`]
/// and restores the enclosing scope's peak tracking (the enclosing peak
/// becomes the max of its own and everything seen inside). A scope
/// dropped without `finish` — e.g. on an error path unwinding through
/// `?` — performs the same restoration, so nesting always balances.
///
/// Not `Send`: the scope is meaningful only on the thread that opened
/// it.
#[derive(Debug)]
pub struct AllocScope {
    start_allocated: u64,
    start_freed: u64,
    start_allocations: u64,
    start_live: i64,
    saved_peak: i64,
    closed: bool,
    _not_send: PhantomData<*const ()>,
}

impl AllocScope {
    /// Opens a measurement window on the current thread.
    pub fn enter() -> AllocScope {
        TLS.with(|t| {
            let live = t.live.get();
            let saved_peak = t.peak.get();
            t.peak.set(live);
            t.scope_depth.set(t.scope_depth.get() + 1);
            AllocScope {
                start_allocated: t.allocated.get(),
                start_freed: t.freed.get(),
                start_allocations: t.allocations.get(),
                start_live: live,
                saved_peak,
                closed: false,
                _not_send: PhantomData,
            }
        })
    }

    /// Closes the window and returns what it measured.
    pub fn finish(mut self) -> AllocDelta {
        self.close()
    }

    fn close(&mut self) -> AllocDelta {
        if self.closed {
            return AllocDelta::default();
        }
        self.closed = true;
        TLS.with(|t| {
            let delta = AllocDelta {
                allocated_bytes: t.allocated.get().wrapping_sub(self.start_allocated),
                freed_bytes: t.freed.get().wrapping_sub(self.start_freed),
                allocations: t.allocations.get() - self.start_allocations,
                // The running peak is >= live at scope start by
                // construction; clamp anyway so a cross-thread free
                // inside the scope can never underflow.
                peak_live_bytes: (t.peak.get() - self.start_live).max(0) as u64,
            };
            t.peak.set(t.peak.get().max(self.saved_peak));
            t.scope_depth.set(t.scope_depth.get().saturating_sub(1));
            delta
        })
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The core unit tests run without the tracking allocator installed
    // (installing one in a library would impose it on every dependent
    // binary), so they exercise the scope mechanics over manually
    // driven counters. The `memtrack_trace` integration suite installs
    // the allocator and tests the full stack.

    fn simulate_alloc(n: usize) {
        record_alloc(n);
    }

    fn simulate_free(n: usize) {
        record_free(n);
    }

    #[test]
    fn scope_measures_the_delta_and_relative_peak() {
        let scope = AllocScope::enter();
        simulate_alloc(100);
        simulate_alloc(50);
        simulate_free(120);
        simulate_alloc(10);
        let d = scope.finish();
        assert_eq!(d.allocated_bytes, 160);
        assert_eq!(d.freed_bytes, 120);
        assert_eq!(d.allocations, 3);
        // live peaked at +150 relative to scope start.
        assert_eq!(d.peak_live_bytes, 150);
    }

    #[test]
    fn nested_scopes_restore_the_outer_peak() {
        let outer = AllocScope::enter();
        simulate_alloc(1000);
        simulate_free(1000);
        {
            let inner = AllocScope::enter();
            simulate_alloc(10);
            let d = inner.finish();
            // The inner scope sees only its own growth, not the outer
            // thousand-byte spike.
            assert_eq!(d.peak_live_bytes, 10);
            simulate_free(10);
        }
        let d = outer.finish();
        // The outer peak still reflects the pre-inner spike.
        assert_eq!(d.peak_live_bytes, 1000);
        assert_eq!(d.allocated_bytes, 1010);
    }

    #[test]
    fn dropped_scope_balances_like_a_finished_one() {
        let depth = thread_stats().scope_depth;
        let outer = AllocScope::enter();
        simulate_alloc(500);
        simulate_free(500);
        let run = || -> Result<(), ()> {
            let _scope = AllocScope::enter();
            simulate_alloc(5);
            simulate_free(5);
            Err(())
        };
        run().unwrap_err();
        assert_eq!(thread_stats().scope_depth, depth + 1, "inner scope closed");
        let d = outer.finish();
        assert_eq!(d.peak_live_bytes, 500, "outer peak survives the error path");
        assert_eq!(thread_stats().scope_depth, depth);
    }

    #[test]
    fn process_stats_gate_on_enablement_and_track_a_global_peak() {
        // Disabled by default — and this test may race with others in
        // the binary, so only relative/monotonic properties are
        // asserted after enabling.
        if process_stats().is_none() {
            enable_process_stats();
        }
        let before = process_stats().unwrap();
        simulate_alloc(10_000);
        let during = process_stats().unwrap();
        assert!(during.allocated_bytes >= before.allocated_bytes + 10_000);
        assert!(during.peak_live_bytes >= during.live_bytes);
        simulate_free(10_000);
        let after = process_stats().unwrap();
        assert!(after.peak_live_bytes >= during.peak_live_bytes.min(after.live_bytes));
        assert!(after.live_bytes <= during.live_bytes);
    }

    #[test]
    fn delta_merge_adds_totals_and_maxes_peaks() {
        let mut a = AllocDelta {
            allocated_bytes: 10,
            freed_bytes: 4,
            allocations: 2,
            peak_live_bytes: 8,
        };
        a.merge(&AllocDelta {
            allocated_bytes: 1,
            freed_bytes: 1,
            allocations: 1,
            peak_live_bytes: 20,
        });
        assert_eq!(a.allocated_bytes, 11);
        assert_eq!(a.freed_bytes, 5);
        assert_eq!(a.allocations, 3);
        assert_eq!(a.peak_live_bytes, 20);
    }
}
