//! Step 2 of the pipeline: link rules through predicates (paper Fig. 6,
//! step 2).
//!
//! For every pair of considered rules where an earlier rule ENSURES a
//! predicate a later rule REQUIRES, a [`Link`] is recorded. The links form
//! the path the generator uses to select method sequences and to route
//! generated objects into parameter positions. A rule that REQUIRES a
//! predicate on `this` receives its *instance* from the ensurer (e.g. the
//! `SecretKey` rule operates on the key produced by `SecretKeyFactory`).

use crysl::ast::PredArg;

use crate::collect::CollectedRule;

/// The variable on which a predicate is ensured or required.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Carrier {
    /// The rule's own instance (`this`).
    This,
    /// A declared OBJECTS variable.
    Var(String),
}

impl Carrier {
    fn from_arg(arg: &PredArg) -> Option<Carrier> {
        match arg {
            PredArg::This => Some(Carrier::This),
            PredArg::Var(v) => Some(Carrier::Var(v.clone())),
            _ => None,
        }
    }
}

/// A predicate connection between two considered rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Predicate name.
    pub predicate: String,
    /// Index (into the collected-rule list) of the ensuring rule.
    pub from_rule: usize,
    /// Carrier of the ensured predicate in the ensuring rule.
    pub from_carrier: Carrier,
    /// Event label after which the predicate holds, if restricted.
    pub from_after: Option<String>,
    /// Index of the requiring rule.
    pub to_rule: usize,
    /// Carrier of the required predicate in the requiring rule.
    pub to_carrier: Carrier,
}

/// Computes all predicate links between the collected rules.
///
/// Only *forward* links (ensurer strictly before requirer in chain order)
/// are created — the chain order is the generation order, so a later rule
/// cannot supply objects to an earlier one. When several earlier rules
/// ensure the same predicate, each candidate becomes a link; resolution
/// picks the latest producer (closest match, mirroring the paper's
/// "objects in the generated code that have received a matching
/// predicate").
pub fn link(rules: &[CollectedRule<'_>]) -> Vec<Link> {
    let mut links = Vec::new();
    for (to_idx, to) in rules.iter().enumerate() {
        for req in &to.rule.requires {
            let Some(to_carrier) = req.args.first().and_then(Carrier::from_arg) else {
                continue;
            };
            for (from_idx, from) in rules.iter().enumerate().take(to_idx) {
                for ens in &from.rule.ensures {
                    if ens.predicate.name != req.name {
                        continue;
                    }
                    let Some(from_carrier) = ens.predicate.args.first().and_then(Carrier::from_arg)
                    else {
                        continue;
                    };
                    links.push(Link {
                        predicate: req.name.clone(),
                        from_rule: from_idx,
                        from_carrier,
                        from_after: ens.after.clone(),
                        to_rule: to_idx,
                        to_carrier: to_carrier.clone(),
                    });
                }
            }
        }
    }
    links
}

/// Queries over the link set used by path selection and resolution.
pub trait LinkSetExt {
    /// Links that flow *into* rule `idx` (predicates it requires).
    fn incoming(&self, idx: usize) -> Vec<&Link>;
    /// Links that flow *out of* rule `idx` (predicates others consume).
    fn outgoing(&self, idx: usize) -> Vec<&Link>;
    /// The producing link for a variable of rule `idx`, if its value
    /// arrives via a predicate. Picks the link with the largest
    /// `from_rule` (the most recently generated producer).
    fn producer_for(&self, idx: usize, carrier: &Carrier) -> Option<&Link>;
}

impl LinkSetExt for [Link] {
    fn incoming(&self, idx: usize) -> Vec<&Link> {
        self.iter().filter(|l| l.to_rule == idx).collect()
    }

    fn outgoing(&self, idx: usize) -> Vec<&Link> {
        self.iter().filter(|l| l.from_rule == idx).collect()
    }

    fn producer_for(&self, idx: usize, carrier: &Carrier) -> Option<&Link> {
        self.iter()
            .filter(|l| l.to_rule == idx && l.to_carrier == *carrier)
            .max_by_key(|l| l.from_rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect;
    use crate::template::{CrySlCodeGenerator, TemplateMethod};
    use crysl::RuleSet;
    use javamodel::ast::JavaType;

    fn pbe_like_ruleset() -> RuleSet {
        let mut set = RuleSet::new();
        set.add_source(
            "SPEC a.Random\nOBJECTS byte[] out;\nEVENTS n: nextBytes(out);\nENSURES randomized[out];",
        )
        .unwrap();
        set.add_source(
            "SPEC a.Spec\nOBJECTS byte[] salt;\nEVENTS c: Spec(salt);\nORDER c\nREQUIRES randomized[salt];\nENSURES specced[this] after c;",
        )
        .unwrap();
        set.add_source(
            "SPEC a.Factory\nOBJECTS a.Spec spec; a.Key key;\nEVENTS g: key = make(spec);\nORDER g\nREQUIRES specced[spec];\nENSURES made[key];",
        )
        .unwrap();
        set.add_source(
            "SPEC a.Key\nOBJECTS byte[] raw;\nEVENTS e: raw = encoded();\nORDER e\nREQUIRES made[this];\nENSURES rawKey[raw] after e;",
        )
        .unwrap();
        set
    }

    fn collected(set: &RuleSet) -> Vec<CollectedRule<'_>> {
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("a.Random")
            .consider_crysl_rule("a.Spec")
            .consider_crysl_rule("a.Factory")
            .consider_crysl_rule("a.Key")
            .build();
        let method = TemplateMethod::new("go", JavaType::Void);
        collect(&chain, &method, set).unwrap()
    }

    #[test]
    fn links_form_the_pbe_chain() {
        let set = pbe_like_ruleset();
        let rules = collected(&set);
        let links = link(&rules);
        assert_eq!(links.len(), 3);
        // Random.out --randomized--> Spec.salt
        assert_eq!(links[0].predicate, "randomized");
        assert_eq!(links[0].from_rule, 0);
        assert_eq!(links[0].from_carrier, Carrier::Var("out".into()));
        assert_eq!(links[0].to_carrier, Carrier::Var("salt".into()));
        // Spec.this --specced--> Factory.spec (with `after c`)
        assert_eq!(links[1].from_carrier, Carrier::This);
        assert_eq!(links[1].from_after.as_deref(), Some("c"));
        // Factory.key --made--> Key.this
        assert_eq!(links[2].to_carrier, Carrier::This);
    }

    #[test]
    fn no_backward_links() {
        let mut set = RuleSet::new();
        // B requires what A ensures, but A is listed after B.
        set.add_source("SPEC a.B\nOBJECTS byte[] x;\nEVENTS e: f(x);\nREQUIRES p[x];")
            .unwrap();
        set.add_source("SPEC a.A\nOBJECTS byte[] y;\nEVENTS e: g(y);\nENSURES p[y];")
            .unwrap();
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("a.B")
            .consider_crysl_rule("a.A")
            .build();
        let method = TemplateMethod::new("go", JavaType::Void);
        let rules = collect(&chain, &method, &set).unwrap();
        assert!(link(&rules).is_empty());
    }

    #[test]
    fn producer_picks_latest() {
        let mut set = RuleSet::new();
        set.add_source("SPEC a.P1\nOBJECTS byte[] a;\nEVENTS e: f(a);\nENSURES p[a];")
            .unwrap();
        set.add_source("SPEC a.P2\nOBJECTS byte[] b;\nEVENTS e: f(b);\nENSURES p[b];")
            .unwrap();
        set.add_source("SPEC a.C\nOBJECTS byte[] x;\nEVENTS e: g(x);\nREQUIRES p[x];")
            .unwrap();
        let chain = CrySlCodeGenerator::get_instance()
            .consider_crysl_rule("a.P1")
            .consider_crysl_rule("a.P2")
            .consider_crysl_rule("a.C")
            .build();
        let method = TemplateMethod::new("go", JavaType::Void);
        let rules = collect(&chain, &method, &set).unwrap();
        let links = link(&rules);
        assert_eq!(links.len(), 2);
        let producer = links.producer_for(2, &Carrier::Var("x".into())).unwrap();
        assert_eq!(producer.from_rule, 1);
    }
}
