//! Error type for the generation pipeline.

use std::error::Error;
use std::fmt;

/// An error produced by the CogniCryptGEN pipeline.
///
/// Every variant names the rule, variable or template construct at fault so
/// rule authors can fix their artefacts — the paper stresses that during
/// template development the generator's feedback drives debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// `considerCrySLRule` named a class with no rule in the rule set.
    UnknownRule(String),
    /// `considerCrySLRule` named the same class twice in one chain. Found
    /// by fuzzing: a duplicated entry re-emitted the rule's call sequence
    /// on the same object, which the rule's own usage pattern then
    /// flagged as a typestate misuse.
    DuplicateRule(String),
    /// `addParameter` referenced a variable the rule's OBJECTS section does
    /// not declare.
    UnknownRuleVariable {
        /// Rule class name.
        rule: String,
        /// Offending variable.
        variable: String,
    },
    /// `addParameter`/`addReturnObject` referenced a template variable that
    /// is neither a method parameter nor declared in the glue code.
    UnknownTemplateVariable(String),
    /// No accepting call sequence of the rule survived filtering.
    NoViablePath {
        /// Rule class name.
        rule: String,
        /// Why the last candidates were discarded.
        reason: String,
    },
    /// A rule's usage-pattern could not be compiled or enumerated.
    StateMachine(String),
    /// A method parameter could not be resolved and fallback hoisting was
    /// disabled.
    UnresolvedParameter {
        /// Rule class name.
        rule: String,
        /// The unresolved CrySL variable.
        variable: String,
    },
    /// The rule's instance object could not be connected to any producer.
    UnresolvedInstance {
        /// Rule class name.
        rule: String,
    },
    /// The generated code failed the Java type checker — a generator bug
    /// or a rule/type-table mismatch.
    TypeCheck(String),
    /// The modelled class library knows nothing about a class referenced
    /// by a rule.
    UnknownClass(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::UnknownRule(r) => write!(f, "no CrySL rule for `{r}`"),
            GenError::DuplicateRule(r) => {
                write!(f, "rule `{r}` appears more than once in the chain")
            }
            GenError::UnknownRuleVariable { rule, variable } => {
                write!(f, "rule `{rule}` declares no object `{variable}`")
            }
            GenError::UnknownTemplateVariable(v) => {
                write!(f, "template declares no variable `{v}`")
            }
            GenError::NoViablePath { rule, reason } => {
                write!(f, "no viable call sequence for `{rule}`: {reason}")
            }
            GenError::StateMachine(m) => write!(f, "usage pattern error: {m}"),
            GenError::UnresolvedParameter { rule, variable } => {
                write!(f, "cannot resolve parameter `{variable}` of `{rule}`")
            }
            GenError::UnresolvedInstance { rule } => {
                write!(f, "cannot resolve the instance object of `{rule}`")
            }
            GenError::TypeCheck(m) => write!(f, "generated code fails type check: {m}"),
            GenError::UnknownClass(c) => write!(f, "class `{c}` is not modelled"),
        }
    }
}

impl Error for GenError {}

impl From<statemachine::StateMachineError> for GenError {
    fn from(e: statemachine::StateMachineError) -> Self {
        GenError::StateMachine(e.to_string())
    }
}
